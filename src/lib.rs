//! # lbmv — A Load Balancing Mechanism with Verification
//!
//! Facade crate for the reproduction of Grosu & Chronopoulos, *A Load
//! Balancing Mechanism with Verification* (IPPS 2003). Re-exports the
//! workspace crates under one roof:
//!
//! * [`core`] — problem model, PR allocation algorithm, convex solver.
//! * [`mechanism`] — the compensation-and-bonus mechanism with verification
//!   plus baselines and property checkers.
//! * [`sim`] — discrete-event simulator and the execution-rate estimator.
//! * [`proto`] — centralized O(n)-message protocol engine.
//! * [`agents`] — strategic bidding/execution models and best-response
//!   dynamics.
//! * [`stats`] — RNG streams, distributions and output analysis.
//! * [`telemetry`] — structured tracing and metrics: span/event collectors,
//!   a ring-buffer recorder, and JSONL / Chrome-trace / timeline exporters.
//! * [`audit`] — verification observability: a streaming economic-invariant
//!   monitor, a tamper-evident round ledger, and live `/invariants` +
//!   `/health` documents.
//! * [`prof`] — performance observability: mergeable cross-shard latency
//!   sketches, a critical-path round profiler, and a perf-regression
//!   sentinel against the checked-in `BENCH_*.json` baselines.
//!
//! See `examples/quickstart.rs` for a five-minute tour.
//!
//! ```
//! use lbmv::prelude::*;
//! use lbmv::mechanism::run_mechanism;
//!
//! // Four machines; t is the inverse processing rate (machine 0 is fastest).
//! let system = System::from_true_values(&[1.0, 2.0, 4.0, 8.0])?;
//! let mechanism = CompensationBonusMechanism::paper();
//!
//! // Machine 0 over-bids 3x and runs 2x slower than its capability.
//! let strategic = Profile::with_deviation(&system, 10.0, 0, 3.0, 2.0)?;
//! let honest = Profile::truthful(&system, 10.0)?;
//!
//! let u_strategic = run_mechanism(&mechanism, &strategic)?.utilities[0];
//! let u_honest = run_mechanism(&mechanism, &honest)?.utilities[0];
//! assert!(u_strategic < u_honest, "lying does not pay (Theorem 3.1)");
//! # Ok::<(), lbmv::mechanism::MechanismError>(())
//! ```

pub use lb_agents as agents;
pub use lb_audit as audit;
pub use lb_core as core;
pub use lb_mechanism as mechanism;
pub use lb_prof as prof;
pub use lb_proto as proto;
pub use lb_sim as sim;
pub use lb_stats as stats;
pub use lb_telemetry as telemetry;

/// Commonly used items, importable with `use lbmv::prelude::*`.
pub mod prelude {
    pub use lb_audit::{verify_ledger, InvariantMonitor, MonitorConfig};
    pub use lb_core::{
        pr_allocate, pr_allocate_capped, solve_convex, total_latency_linear, Allocation,
        LatencyFunction, Linear, Machine, MachineId, Mm1, System,
    };
    pub use lb_mechanism::{
        run_mechanism, CompensationBonusMechanism, FeeAdjusted, GeneralizedCompensationBonus,
        MechanismError, MechanismOutcome, Mm1Family, Profile, VerifiedMechanism,
    };
    pub use lb_proto::{run_protocol_round, NodeSpec, ProtocolConfig};
    pub use lb_sim::driver::{verified_round, SimulationConfig};
    pub use lb_stats::{OnlineStats, Rng, Xoshiro256StarStar};
    pub use lb_telemetry::{Collector, MetricsRegistry, RingCollector};
}
