//! Observability tour: record a chaotic multi-round session with a
//! [`RingCollector`], render the protocol timeline, derive metrics from the
//! recording, and export it as JSONL and a Chrome `trace_event` file
//! (load the latter in `chrome://tracing` or Perfetto).
//!
//! ```text
//! cargo run --example telemetry_timeline
//! ```

use lbmv::mechanism::CompensationBonusMechanism;
use lbmv::proto::chaos::ChaosConfig;
use lbmv::proto::session::{run_chaos_session_observed, ChaosSessionConfig};
use lbmv::proto::{NodeSpec, ProtocolConfig};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;
use lbmv::telemetry::{
    from_jsonl, render_timeline, replay_spans, to_chrome_trace, to_jsonl, MetricsRegistry,
    RingCollector,
};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small system keeps the timeline readable; the rate is feasible for
    // every >= 2-machine subset, so chaotic exclusions never starve it.
    let trues = [1.0, 1.0, 2.0, 2.0];
    let config = ProtocolConfig {
        total_rate: 0.8,
        link_latency: 0.001,
        simulation: SimulationConfig {
            horizon: 300.0,
            seed: 9,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: Default::default(),
        },
    };
    let session = ChaosSessionConfig::new(3, ChaosConfig::heavy(11));

    // One ring records the whole session: round/phase spans, frame fates,
    // retransmissions, and the session's quarantine decisions.
    let ring = Arc::new(RingCollector::new(65_536));
    let report = run_chaos_session_observed(
        &CompensationBonusMechanism::paper(),
        &config,
        &session,
        |_, _| trues.iter().map(|&t| NodeSpec::truthful(t)).collect(),
        ring.clone(),
    )?;

    let events = ring.snapshot();
    assert_eq!(ring.overwritten(), 0, "ring too small: recording truncated");
    println!("{}", render_timeline(&events));

    let mut registry = MetricsRegistry::new();
    registry.ingest(&events);
    println!("{}", registry.snapshot().to_text());
    println!(
        "session: {} rounds settled, {} aborted, {} retries, {} anomalies absorbed",
        report.rounds.len() - report.aborted_rounds as usize,
        report.aborted_rounds,
        report.total_retries,
        report.anomalies.total()
    );

    // Export: JSONL (lossless, round-trips) and Chrome trace_event JSON.
    let out_dir = std::path::Path::new("target");
    std::fs::create_dir_all(out_dir)?;
    let jsonl = to_jsonl(&events);
    let reloaded = from_jsonl(&jsonl)?;
    assert_eq!(reloaded, events, "JSONL round-trip must be lossless");
    let spans = replay_spans(&reloaded)?;
    let jsonl_path = out_dir.join("telemetry_timeline.jsonl");
    std::fs::write(&jsonl_path, jsonl)?;

    let trace_path = out_dir.join("telemetry_timeline.trace.json");
    std::fs::write(&trace_path, to_chrome_trace(&events)?)?;
    println!(
        "\nwrote {} events ({} completed spans) to {} and {}",
        events.len(),
        spans.len(),
        jsonl_path.display(),
        trace_path.display()
    );
    Ok(())
}
