//! Reproduces the paper's eight Table 2 experiments on the 16-computer
//! Table 1 system and prints the Figure 1 / Figure 2 series.
//!
//! ```text
//! cargo run --example paper_experiments
//! ```

use lbmv::core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
use lbmv::mechanism::{run_mechanism, CompensationBonusMechanism, Profile};

/// (name, bid factor, execution factor) for C1 — everyone else truthful.
const EXPERIMENTS: [(&str, f64, f64); 8] = [
    ("True1", 1.0, 1.0),
    ("True2", 1.0, 2.0),
    ("High1", 3.0, 3.0),
    ("High2", 3.0, 1.0),
    ("High3", 3.0, 2.0),
    ("High4", 3.0, 6.0),
    ("Low1", 0.5, 1.0),
    ("Low2", 0.5, 2.0),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = paper_system();
    let mechanism = CompensationBonusMechanism::paper();

    let optimum = lbmv::core::optimal_latency_linear(&system.true_values(), PAPER_ARRIVAL_RATE)?;
    println!("Table 1 system: 16 computers, t in {{1, 2, 5, 10}}, R = {PAPER_ARRIVAL_RATE} jobs/s");
    println!("theoretical optimum L* = {optimum:.2}\n");

    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>12}",
        "Exp", "latency L", "vs True1", "C1 payment", "C1 utility"
    );
    for (name, bid_factor, exec_factor) in EXPERIMENTS {
        let profile =
            Profile::with_deviation(&system, PAPER_ARRIVAL_RATE, 0, bid_factor, exec_factor)?;
        let out = run_mechanism(&mechanism, &profile)?;
        println!(
            "{:<8} {:>12.2} {:>9.1}% {:>12.2} {:>12.2}",
            name,
            out.total_latency,
            100.0 * (out.total_latency - optimum) / optimum,
            out.payments[0],
            out.utilities[0],
        );
    }
    println!("\nC1's utility is maximised by True1; Low2 even fines it (negative payment).");
    Ok(())
}
