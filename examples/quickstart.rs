//! Quickstart: allocate, verify, pay — the whole mechanism in 40 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lbmv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A heterogeneous system: four machines, true latency parameters t_i
    // (inversely proportional to speed — machine 0 is the fastest).
    let system = System::from_true_values(&[1.0, 2.0, 4.0, 8.0])?;
    let total_rate = 10.0; // jobs per second arriving at the system

    // Classical setting: everyone obeys. The PR algorithm allocates jobs in
    // proportion to processing rates (Theorem 2.1) and minimises the total
    // latency L = Σ t_i x_i².
    let allocation = pr_allocate(&system.true_values(), total_rate)?;
    let optimal = total_latency_linear(&allocation, &system.true_values())?;
    println!("optimal allocation: {:?}", allocation.rates());
    println!("optimal total latency: {optimal:.3}");

    // Strategic setting: machines are self-interested. The mechanism with
    // verification pays compensation + bonus after observing execution.
    let mechanism = CompensationBonusMechanism::paper();

    // Everyone truthful:
    let honest = Profile::truthful(&system, total_rate)?;
    let outcome = lbmv::mechanism::run_mechanism(&mechanism, &honest)?;
    println!("\ntruthful round:");
    for (i, (p, u)) in outcome.payments.iter().zip(&outcome.utilities).enumerate() {
        println!("  machine {i}: payment {p:+.3}, utility {u:+.3}");
    }

    // Machine 0 lies (bids 3x) and stalls (executes 2x slower):
    let strategic = Profile::with_deviation(&system, total_rate, 0, 3.0, 2.0)?;
    let outcome = lbmv::mechanism::run_mechanism(&mechanism, &strategic)?;
    println!("\nafter machine 0 lies and stalls:");
    println!(
        "  machine 0: payment {:+.3}, utility {:+.3}",
        outcome.payments[0], outcome.utilities[0]
    );
    println!("  (lower than its truthful utility — lying does not pay; Theorem 3.1)");
    Ok(())
}
