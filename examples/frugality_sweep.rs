//! Figure 6 territory: how much does truthfulness cost?
//!
//! Sweeps the arrival rate and the system size, reporting total payment vs
//! total valuation for the truthful profile — the mechanism's frugality —
//! and compares against the Archer–Tardos baseline payments.
//!
//! ```text
//! cargo run --example frugality_sweep
//! ```

use lbmv::core::scenario::paper_system;
use lbmv::core::System;
use lbmv::mechanism::{
    frugality_ratio, run_mechanism, ArcherTardosMechanism, CompensationBonusMechanism, Profile,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cb = CompensationBonusMechanism::paper();
    let at = ArcherTardosMechanism::closed_form();

    println!("arrival-rate sweep on the paper's 16-computer system:");
    println!(
        "{:>6} {:>14} {:>16} {:>8} {:>10}",
        "R", "total payment", "total valuation", "ratio", "AT ratio"
    );
    let sys = paper_system();
    for k in 1..=10 {
        let r = 2.0 * f64::from(k);
        let profile = Profile::truthful(&sys, r)?;
        let out = run_mechanism(&cb, &profile)?;
        let at_out = run_mechanism(&at, &profile)?;
        println!(
            "{:>6.1} {:>14.2} {:>16.2} {:>8.3} {:>10.3}",
            r,
            out.total_payment(),
            out.total_valuation_abs(),
            frugality_ratio(&out),
            frugality_ratio(&at_out),
        );
    }

    println!("\nsystem-size sweep (homogeneous t = 1, R = n/2):");
    println!("{:>6} {:>8}", "n", "ratio");
    for n in [2usize, 4, 8, 16, 32, 64] {
        let sys = System::from_true_values(&vec![1.0; n])?;
        let profile = Profile::truthful(&sys, n as f64 / 2.0)?;
        let out = run_mechanism(&cb, &profile)?;
        println!("{n:>6} {:>8.3}", frugality_ratio(&out));
    }
    println!("\nthe paper's bound: payments stay below 2.5x the total valuation at R = 20.");
    Ok(())
}
