//! Verification health, live: a streaming invariant monitor over a
//! protocol session, the tamper-evident round ledger, and the
//! `/invariants` + `/health` documents an operator would scrape.
//!
//! Three acts:
//!
//! 1. an honest durable session runs with an [`InvariantMonitor`] attached
//!    as the coordinator's collector — every round passes every economic
//!    invariant (conservation, feasibility, Theorem 3.2 floor, dd payment
//!    drift, truthfulness margin) and the journal's hash chain verifies;
//! 2. a byte of the journal is flipped *with its frame CRC recomputed* —
//!    the per-record checksum passes, but the ledger chain localises the
//!    divergence and `/health` flips to `tampered`;
//! 3. a skimmed payment is replayed into a monitor — the double-double
//!    reference catches the theft the aggregate total check cannot see.
//!
//! ```text
//! cargo run --example verification_health
//! ```

use lbmv::audit::{health_json, publish, verify_ledger, InvariantMonitor, MonitorConfig};
use lbmv::mechanism::CompensationBonusMechanism;
use lbmv::proto::journal::crc32;
use lbmv::proto::{
    decode, run_chaos_session_durable, ChaosConfig, ChaosSessionConfig, CrashPlan, JournalRecord,
    JournalReplay, NodeSpec, ProtocolConfig,
};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;
use lbmv::telemetry::{noop_collector, Collector, Exposition, Subsystem, TelemetryEvent};
use std::sync::Arc;

const RATE: f64 = 9.0;
const TRUES: [f64; 3] = [1.0, 1.5, 2.0];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mechanism = CompensationBonusMechanism::paper();
    let config = ProtocolConfig {
        total_rate: RATE,
        link_latency: 0.001,
        simulation: SimulationConfig {
            horizon: 50.0,
            seed: 42,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: Default::default(),
        },
    };
    let specs: Vec<NodeSpec> = TRUES.iter().map(|&t| NodeSpec::truthful(t)).collect();

    // Act 1 — honest session, monitor attached, ledger intact.
    let monitor = Arc::new(InvariantMonitor::new(
        noop_collector(),
        MonitorConfig::default(),
    ));
    let report = run_chaos_session_durable(
        &mechanism,
        &config,
        &ChaosSessionConfig::new(3, ChaosConfig::reliable(2)),
        |_, _| specs.clone(),
        &CrashPlan::none(),
        Vec::new(),
        monitor.clone() as Arc<dyn Collector>,
    )?;
    let verdict = verify_ledger(&report.journal_bytes);
    let stats = monitor.stats();
    println!("— honest session —");
    println!(
        "rounds audited: {}   violations: {}   min truthfulness margin: {:.6}",
        stats.rounds,
        stats.total_violations(),
        stats.min_margin.unwrap_or(f64::NAN),
    );
    println!(
        "ledger: {} records, {} seals, head {:#018x}, intact: {}",
        verdict.records,
        verdict.seals,
        verdict.head,
        verdict.is_intact()
    );
    let exposition = Exposition::new();
    publish(&exposition, &monitor, Some(&verdict));
    println!("/health    -> {}", exposition.health_text().trim());
    println!("/invariants (first 120 chars) ->");
    let invariants = exposition.invariants_text();
    let head = invariants.trim();
    println!("  {}…", &head[..head.len().min(120)]);

    // Act 2 — flip one byte inside a journalled record and recompute the
    // frame CRC, the edit a per-record checksum cannot see.
    let mut tampered = report.journal_bytes.clone();
    let boundaries = JournalReplay::boundaries(&tampered);
    let victim = boundaries
        .windows(2)
        .position(|w| {
            matches!(
                decode::<JournalRecord>(&tampered[w[0] + 8..w[1]]),
                Ok(JournalRecord::PaymentsCommitted { .. })
            )
        })
        .expect("session journalled payments");
    let (start, end) = (boundaries[victim], boundaries[victim + 1]);
    tampered[start + 12] ^= 0x04;
    let crc = crc32(&tampered[start + 8..end]).to_le_bytes();
    tampered[start + 4..start + 8].copy_from_slice(&crc);
    let bad = verify_ledger(&tampered);
    println!("\n— tampered journal (bit flipped in record {victim}, CRC recomputed) —");
    match bad.divergence {
        Some(div) => println!(
            "chain diverges at seal {} (record {}, offset {}): expected {:#018x}, found {:#018x}",
            div.seal_index, div.record_index, div.offset, div.expected, div.found
        ),
        None => println!("divergence expected but not found: {bad:?}"),
    }
    println!("/health    -> {}", health_json(&stats, Some(&bad)).render());

    // Act 3 — skim one payment gauge out of a recorded settlement stream
    // (patching the emitted total so the aggregate still balances) and
    // replay it into a fresh monitor: only the dd reference notices.
    let skimmer = Arc::new(InvariantMonitor::new(
        noop_collector(),
        MonitorConfig::default(),
    ));
    let alloc = lbmv::core::pr_allocate(&TRUES, RATE)?;
    let out = lbmv::mechanism::run_mechanism(
        &mechanism,
        &lbmv::mechanism::Profile::truthful(&lbmv::core::System::from_true_values(&TRUES)?, RATE)?,
    )?;
    let skim = 0.05 * (1.0 + out.payments[1].abs());
    let gauge = |name: String, value: f64| {
        skimmer.record(TelemetryEvent {
            at: 0.0,
            name: std::borrow::Cow::Owned(name),
            cat: Subsystem::Coordinator,
            kind: lbmv::telemetry::EventKind::Gauge { value },
            fields: Vec::new(),
        });
    };
    for i in 0..TRUES.len() {
        let paid = if i == 1 {
            out.payments[i] - skim
        } else {
            out.payments[i]
        };
        gauge(format!("bid.m{i}"), TRUES[i]);
        gauge(format!("alloc.rate.m{i}"), alloc.rate(i));
        gauge(format!("exec.est.m{i}"), TRUES[i]);
        gauge(format!("excluded.m{i}"), 0.0);
        gauge(format!("payment.m{i}"), paid);
    }
    gauge("round.index".to_string(), 0.0);
    gauge("round.total_rate".to_string(), RATE);
    gauge(
        "round.payment.total".to_string(),
        out.payments.iter().sum::<f64>() - skim,
    );
    let caught = skimmer.latest_report().expect("round observed");
    println!("\n— skimmed payment (machine 1, −{skim:.6}) —");
    println!(
        "drift check ok: {}   violations: {:?}",
        caught.check("drift").is_some_and(|c| c.ok),
        caught.violations
    );
    assert!(!caught.ok(), "the skim must be detected");
    Ok(())
}
