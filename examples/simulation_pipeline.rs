//! The full verification pipeline over the discrete-event simulator:
//! allocate → Poisson job streams → stochastic execution → estimate each
//! machine's real speed → pay from the *estimates*.
//!
//! Shows that a machine silently running at half speed is detected by the
//! measurement plane and its payment docked, and how close estimated
//! payments stay to the exact (oracle) payments.
//!
//! ```text
//! cargo run --example simulation_pipeline
//! ```

use lbmv::core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
use lbmv::mechanism::{CompensationBonusMechanism, Profile};
use lbmv::sim::driver::{verified_round, SimulationConfig};
use lbmv::sim::estimator::EstimatorConfig;
use lbmv::sim::server::ServiceModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = paper_system();
    let mechanism = CompensationBonusMechanism::paper();

    // C1 bids honestly but secretly throttles to half speed (True2).
    let profile = Profile::with_deviation(&system, PAPER_ARRIVAL_RATE, 0, 1.0, 2.0)?;

    let config = SimulationConfig {
        horizon: 5_000.0, // seconds of simulated traffic
        seed: 2024,
        model: ServiceModel::StationaryExponential,
        workload: Default::default(),
        warmup: 0.0,
        estimator: EstimatorConfig::default(),
    };
    let round = verified_round(&mechanism, &profile, &config)?;

    println!("verification estimates (machine: estimated t~ / true t~):");
    for (i, obs) in round.report.observations.iter().enumerate().take(4) {
        println!(
            "  C{}: {:.3} / {:.3}  ({} jobs observed)",
            i + 1,
            round.report.estimated_exec_values[i],
            profile.exec_values()[i],
            obs.jobs_arrived
        );
    }
    println!("  ...");

    println!(
        "\nC1 estimated execution value: {:.3} (true capability 1.0 — throttling detected)",
        round.report.estimated_exec_values[0]
    );
    println!(
        "C1 payment: {:+.2} (oracle with exact t~: {:+.2})",
        round.outcome.payments[0], round.oracle_outcome.payments[0]
    );
    println!(
        "max |payment error| across machines: {:.4}",
        round.max_payment_error()
    );
    println!(
        "estimated total latency {:.2} vs analytic {:.2}",
        round.report.estimated_total_latency, round.oracle_outcome.total_latency
    );
    Ok(())
}
