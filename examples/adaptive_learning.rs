//! Agents that know nothing about the mechanism learn to be truthful from
//! utility feedback alone — ε-greedy bandits over a strategy menu, plugged
//! into the *real* protocol through multi-round sessions.
//!
//! ```text
//! cargo run --example adaptive_learning
//! ```

use lbmv::agents::adaptive::EpsilonGreedyAgent;
use lbmv::agents::game::consistent_strategy_menu;
use lbmv::mechanism::CompensationBonusMechanism;
use lbmv::proto::{run_session, NodeSpec, ProtocolConfig};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;
use lbmv::stats::Xoshiro256StarStar;
use std::cell::RefCell;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trues = [1.0, 2.0, 5.0, 10.0];
    let menu = consistent_strategy_menu();
    let mechanism = CompensationBonusMechanism::paper();

    let base = Xoshiro256StarStar::seed_from_u64(99);
    let learners: RefCell<Vec<EpsilonGreedyAgent>> = RefCell::new(
        (0..trues.len())
            .map(|i| EpsilonGreedyAgent::new(menu.clone(), 0.1, base.stream(i as u64)))
            .collect(),
    );
    let arms: RefCell<Vec<usize>> = RefCell::new(vec![0; trues.len()]);

    let config = ProtocolConfig {
        total_rate: 10.0,
        link_latency: 0.0005,
        simulation: SimulationConfig {
            horizon: 150.0,
            seed: 5,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: Default::default(),
        },
    };

    let rounds = 600;
    let report = run_session(&mechanism, &config, rounds, |_, prev| {
        let mut learners = learners.borrow_mut();
        let mut arms = arms.borrow_mut();
        // Feed back the previous round's utilities.
        if let Some(outcome) = prev {
            for (i, learner) in learners.iter_mut().enumerate() {
                learner.observe(arms[i], outcome.utilities[i]);
            }
        }
        // Choose this round's strategies.
        trues
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let arm = learners[i].choose();
                arms[i] = arm;
                let s = menu[arm];
                NodeSpec::strategic(t, t * s.bid_factor, t * s.exec_factor.max(1.0))
            })
            .collect()
    })?;

    println!(
        "{} protocol rounds, {} control messages total",
        report.len(),
        report.total_messages
    );
    let learners = learners.borrow();
    for (i, learner) in learners.iter().enumerate() {
        let pulls = learner.pulls();
        let total: u64 = pulls.iter().sum();
        println!(
            "machine {i}: best arm = {:12} | truthful-arm share {:.0}% | mean utility on best arm {:+.3}",
            menu[learner.best_arm()].name,
            100.0 * pulls[0] as f64 / total as f64,
            learner.mean_utility(learner.best_arm()),
        );
    }
    println!(
        "\ncumulative utility of machine 0 over the session: {:+.1}",
        report.cumulative_utility(0)
    );
    println!(
        "(every learner's best arm should be `truthful` — Theorem 3.1, discovered empirically)"
    );
    Ok(())
}
