//! One round of the centralized protocol over the simulated network and —
//! identically — over real threads with a binary wire format.
//!
//! Validates the paper's O(n)-messages claim with actual message counting.
//!
//! ```text
//! cargo run --example protocol_round
//! ```

use lbmv::core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
use lbmv::mechanism::CompensationBonusMechanism;
use lbmv::proto::{run_protocol_round, run_protocol_round_threaded, NodeSpec, ProtocolConfig};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mechanism = CompensationBonusMechanism::paper();

    // The paper's 16 computers; C1 over-bids and matches its bid (High1).
    let mut specs: Vec<NodeSpec> = paper_true_values()
        .iter()
        .map(|&t| NodeSpec::truthful(t))
        .collect();
    specs[0] = NodeSpec::strategic(1.0, 3.0, 3.0);

    let config = ProtocolConfig {
        total_rate: PAPER_ARRIVAL_RATE,
        link_latency: 0.002,
        simulation: SimulationConfig {
            horizon: 1_000.0,
            seed: 7,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: Default::default(),
        },
    };

    let outcome = run_protocol_round(&mechanism, &specs, &config)?;
    println!("deterministic runtime:");
    println!(
        "  messages: {} ({} per node), bytes: {}",
        outcome.stats.messages,
        outcome.stats.messages / specs.len() as u64,
        outcome.stats.bytes
    );
    println!(
        "  C1: rate {:.3}, estimated t~ {:.3}, payment {:+.2}, utility {:+.2}",
        outcome.rates[0],
        outcome.estimated_exec_values[0],
        outcome.payments[0],
        outcome.utilities[0]
    );
    println!(
        "  C2: rate {:.3}, payment {:+.2}, utility {:+.2}",
        outcome.rates[1], outcome.payments[1], outcome.utilities[1]
    );

    let threaded = run_protocol_round_threaded(&mechanism, &specs, &config)?;
    println!("\nthreaded runtime (crossbeam channels, binary codec):");
    println!(
        "  messages: {}, bytes: {}",
        threaded.stats.messages, threaded.stats.bytes
    );
    let max_dp = outcome
        .payments
        .iter()
        .zip(&threaded.payments)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "  max payment difference vs deterministic runtime: {max_dp:.3e} (bit-identical protocol)"
    );
    Ok(())
}
