//! Strategic probing of the mechanism: best-response search, iterated
//! best-response dynamics and a small empirical game.
//!
//! ```text
//! cargo run --example strategic_agents
//! ```

use lbmv::agents::best_response::{best_response, SearchOptions};
use lbmv::agents::dynamics::{run_dynamics, DynamicsOptions};
use lbmv::agents::game::{consistent_strategy_menu, empirical_game};
use lbmv::core::System;
use lbmv::mechanism::{CompensationBonusMechanism, Profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = System::from_true_values(&[1.0, 2.0, 5.0, 10.0])?;
    let rate = 10.0;
    let mechanism = CompensationBonusMechanism::paper();

    // 1. Best response of machine 0 against truthful opponents.
    let base = Profile::truthful(&system, rate)?;
    let br = best_response(&mechanism, &base, 0, &SearchOptions::default())?;
    println!(
        "machine 0 best response: bid {:.3}, exec {:.3}",
        br.bid, br.exec_value
    );
    println!(
        "  utility {:.4} vs truthful {:.4} (gain {:+.2e})",
        br.utility,
        br.truthful_utility,
        br.gain()
    );

    // 2. Iterated best-response dynamics from a manipulated start.
    let trues = system.true_values();
    let bids: Vec<f64> = trues.iter().map(|t| t * 3.0).collect();
    let exec: Vec<f64> = trues.iter().map(|t| t * 2.0).collect();
    let start = Profile::new(trues.clone(), bids, exec, rate)?;
    let report = run_dynamics(&mechanism, &start, &DynamicsOptions::default())?;
    println!(
        "\ndynamics: converged = {}, sweeps = {}, final bids {:?}",
        report.converged,
        report.sweeps,
        report
            .final_bids()
            .iter()
            .map(|b| format!("{b:.2}"))
            .collect::<Vec<_>>()
    );
    println!(
        "  distance from the truth-equivalent class: {:.2e}",
        report.distance_from_truth_up_to_scale(&trues)
    );
    println!("  (PR is scale-invariant: bids proportional to the truth are outcome-identical)");

    // 3. Finite game over consistent strategies: truth is weakly dominant.
    let small = System::from_true_values(&[1.0, 2.0, 5.0])?;
    let game = empirical_game(&mechanism, &small, rate, &consistent_strategy_menu())?;
    for agent in 0..3 {
        println!(
            "agent {agent}: truthful dominant = {}",
            game.is_dominant(agent, 0, 1e-9)
        );
    }
    let nash = game.pure_nash(1e-9);
    println!("pure Nash equilibria (strategy indices): {nash:?}");
    Ok(())
}
