//! The protocol under network faults: lost bids, partitions, lost acks —
//! and the distributed payment audit that keeps the coordinator honest.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use lbmv::core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
use lbmv::mechanism::CompensationBonusMechanism;
use lbmv::proto::audit::{audit_settlement, SettlementRecord};
use lbmv::proto::faults::{run_protocol_round_with_faults, FaultPlan};
use lbmv::proto::{NodeSpec, ProtocolConfig};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mechanism = CompensationBonusMechanism::paper();
    let specs: Vec<NodeSpec> =
        paper_true_values().iter().map(|&t| NodeSpec::truthful(t)).collect();
    let config = ProtocolConfig {
        total_rate: PAPER_ARRIVAL_RATE,
        link_latency: 0.002,
        simulation: SimulationConfig {
            horizon: 500.0,
            seed: 11,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: Default::default(),
        },
    };

    // 1. C1's bid is lost: the coordinator times out, excludes C1, and the
    //    round settles over the 15 survivors.
    let faults = FaultPlan { lose_bids_from: vec![0], ..FaultPlan::none() };
    let outcome = run_protocol_round_with_faults(&mechanism, &specs, &config, &faults)?;
    println!("C1 bid lost:");
    println!("  C1 rate {:.2}, payment {:+.2} (excluded)", outcome.rates[0], outcome.payments[0]);
    println!(
        "  load conservation over survivors: total rate = {:.3}",
        outcome.rates.iter().sum::<f64>()
    );
    println!("  C2 payment {:+.2} (paid as in the 15-machine system)", outcome.payments[1]);

    // 2. Lost completion acks: settlement proceeds from the coordinator's
    //    own measurements.
    let faults = FaultPlan { lose_acks_from: vec![3, 7], ..FaultPlan::none() };
    let outcome = run_protocol_round_with_faults(&mechanism, &specs, &config, &faults)?;
    println!("\nC4+C8 acks lost: round still settles; C4 payment {:+.2}", outcome.payments[3]);

    // 3. Audit: nodes recompute their payments from the broadcast settlement.
    let record = SettlementRecord {
        bids: specs.iter().map(|s| s.bid).collect(),
        estimated_exec_values: outcome.estimated_exec_values.clone(),
        total_rate: PAPER_ARRIVAL_RATE,
        claimed_payments: outcome.payments.clone(),
    };
    let report = audit_settlement(&mechanism, &record, 1e-9)?;
    println!("\naudit of the honest settlement: all verified = {}", report.all_verified());

    let mut tampered = record;
    tampered.claimed_payments[4] -= 1.0;
    let report = audit_settlement(&mechanism, &tampered, 1e-6)?;
    println!(
        "audit after skimming C5 by 1.0: verified = {}, disputed machines = {:?}",
        report.all_verified(),
        report.disputed()
    );
    Ok(())
}
