//! The protocol under network faults: lost bids, partitions, lost acks,
//! the distributed payment audit that keeps the coordinator honest — and
//! the chaos runtime, whose retransmission protocol turns transient bid
//! loss into a retry instead of an exclusion.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use lbmv::core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
use lbmv::mechanism::CompensationBonusMechanism;
use lbmv::proto::audit::{audit_settlement, SettlementRecord};
use lbmv::proto::chaos::{run_chaos_round, ChaosConfig};
use lbmv::proto::faults::{run_protocol_round_with_faults, FaultPlan};
use lbmv::proto::{NodeSpec, ProtocolConfig};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mechanism = CompensationBonusMechanism::paper();
    let specs: Vec<NodeSpec> = paper_true_values()
        .iter()
        .map(|&t| NodeSpec::truthful(t))
        .collect();
    let config = ProtocolConfig {
        total_rate: PAPER_ARRIVAL_RATE,
        link_latency: 0.002,
        simulation: SimulationConfig {
            horizon: 500.0,
            seed: 11,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: Default::default(),
        },
    };

    // 1. C1's bid is lost: the coordinator times out, excludes C1, and the
    //    round settles over the 15 survivors.
    let faults = FaultPlan {
        lose_bids_from: vec![0],
        ..FaultPlan::none()
    };
    let outcome = run_protocol_round_with_faults(&mechanism, &specs, &config, &faults)?;
    println!("C1 bid lost:");
    println!(
        "  C1 rate {:.2}, payment {:+.2} (excluded)",
        outcome.rates[0], outcome.payments[0]
    );
    println!(
        "  load conservation over survivors: total rate = {:.3}",
        outcome.rates.iter().sum::<f64>()
    );
    println!(
        "  C2 payment {:+.2} (paid as in the 15-machine system)",
        outcome.payments[1]
    );

    // 2. Lost completion acks: settlement proceeds from the coordinator's
    //    own measurements.
    let faults = FaultPlan {
        lose_acks_from: vec![3, 7],
        ..FaultPlan::none()
    };
    let outcome = run_protocol_round_with_faults(&mechanism, &specs, &config, &faults)?;
    println!(
        "\nC4+C8 acks lost: round still settles; C4 payment {:+.2}",
        outcome.payments[3]
    );

    // 3. Audit: nodes recompute their payments from the broadcast settlement.
    let record = SettlementRecord {
        bids: specs.iter().map(|s| s.bid).collect(),
        estimated_exec_values: outcome.estimated_exec_values.clone(),
        total_rate: PAPER_ARRIVAL_RATE,
        claimed_payments: outcome.payments.clone(),
    };
    let report = audit_settlement(&mechanism, &record, 1e-9)?;
    println!(
        "\naudit of the honest settlement: all verified = {}",
        report.all_verified()
    );

    let mut tampered = record;
    tampered.claimed_payments[4] -= 1.0;
    let report = audit_settlement(&mechanism, &tampered, 1e-6)?;
    println!(
        "audit after skimming C5 by 1.0: verified = {}, disputed machines = {:?}",
        report.all_verified(),
        report.disputed()
    );

    // 4. Retransmission saves a flaky machine: C1's first bid transmission is
    //    lost, but the chaos runtime re-requests it after a timeout and the
    //    retry gets through — C1 is *included*, not excluded.
    let mut chaos = ChaosConfig::reliable(17);
    chaos.plan = FaultPlan {
        lose_bid_attempts: vec![(0, 1)],
        ..FaultPlan::none()
    };
    let report = run_chaos_round(&mechanism, &specs, &config, &chaos)?;
    println!("\nC1's first bid lost, retransmission succeeds:");
    println!(
        "  C1 excluded = {}, rate {:.2}, payment {:+.2}",
        report.excluded[0], report.outcome.rates[0], report.outcome.payments[0]
    );
    println!(
        "  retries = {}, messages = {}, anomalies = {}",
        report.retries,
        report.outcome.stats.messages,
        report.anomalies.total()
    );

    // 5. Retry exhaustion: C1 stays silent through every re-request, so after
    //    the bounded backoff schedule the coordinator falls back to exclusion
    //    and the round settles over the survivors.
    let mut chaos = ChaosConfig::reliable(17);
    chaos.plan = FaultPlan {
        lose_bids_from: vec![0],
        ..FaultPlan::none()
    };
    let report = run_chaos_round(&mechanism, &specs, &config, &chaos)?;
    println!("\nC1 silent through all retries:");
    println!(
        "  C1 excluded = {}, retries = {}, total rate over survivors = {:.3}",
        report.excluded[0],
        report.retries,
        report.outcome.rates.iter().sum::<f64>()
    );

    // 6. Probabilistic chaos: heavy seeded drop/duplicate/corrupt/jitter on
    //    every link. The protocol absorbs what it can and excludes the rest;
    //    the anomaly and fault counters show what the network did.
    let report = run_chaos_round(&mechanism, &specs, &config, &ChaosConfig::heavy(17))?;
    let survivors = report.excluded.iter().filter(|&&e| !e).count();
    println!("\nheavy chaos (seed 17): {survivors}/16 machines settled");
    println!(
        "  faults injected: {} dropped, {} duplicated, {} corrupted",
        report.faults.dropped, report.faults.duplicated, report.faults.corrupted
    );
    println!(
        "  retries = {}, anomalies absorbed = {}, messages = {}",
        report.retries,
        report.anomalies.total(),
        report.outcome.stats.messages
    );
    Ok(())
}
