//! The mechanism beyond linear latencies: the generalized compensation-and-
//! bonus construction on the M/M/1 model of the authors' companion paper
//! (Grosu & Chronopoulos, Cluster 2002 — ref. [8] of the IPPS paper).
//!
//! ```text
//! cargo run --example mm1_extension
//! ```

use lbmv::core::System;
use lbmv::mechanism::{
    run_mechanism, GeneralizedCompensationBonus, MechanismError, Mm1Family, Profile,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Machines are M/M/1 queues; the private parameter is the mean service
    // time t = 1/mu (small t = fast machine, as in the paper).
    // Capacities mu = [10, 5, 2] jobs/s.
    let system = System::from_true_values(&[0.1, 0.2, 0.5])?;
    let rate = 5.0;
    let mechanism = GeneralizedCompensationBonus::new(Mm1Family);

    println!("M/M/1 system: mu = [10, 5, 2], R = {rate} jobs/s\n");

    let truthful = run_mechanism(&mechanism, &Profile::truthful(&system, rate)?)?;
    println!("truthful allocation (note the slow machine is optimally idle):");
    for (i, x) in truthful.allocation.rates().iter().enumerate() {
        println!(
            "  machine {i}: x = {x:.3} jobs/s, utility {:+.4}",
            truthful.utilities[i]
        );
    }
    println!("  realised total latency: {:.4}", truthful.total_latency);

    // Capacity-aware strategic effects with no linear-model analogue:
    println!("\nmachine 0 under-bids (t/2, i.e. claims mu = 20):");
    match run_mechanism(
        &mechanism,
        &Profile::with_deviation(&system, rate, 0, 0.5, 2.0)?,
    ) {
        Ok(out) => println!("  utility {:+.4}", out.utilities[0]),
        Err(MechanismError::Core(e)) => {
            println!("  round aborted: {e}");
            println!("  (it attracted more load than it can actually serve — its queue diverges)");
        }
        Err(e) => return Err(e.into()),
    }

    println!("\nmachine 0 over-bids consistently (1.5x):");
    let out = run_mechanism(
        &mechanism,
        &Profile::with_deviation(&system, rate, 0, 1.5, 1.5)?,
    )?;
    println!(
        "  utility {:+.4} (truthful was {:+.4} — lying still loses)",
        out.utilities[0], truthful.utilities[0]
    );

    println!("\nthe no-monopolist condition (R = 10 > leave-one-out capacity 7):");
    match run_mechanism(&mechanism, &Profile::truthful(&system, 10.0)?) {
        Err(MechanismError::Core(e)) => println!("  rejected: {e}"),
        other => println!("  unexpected: {other:?}"),
    }
    Ok(())
}
