//! Crash recovery: the write-ahead round journal across simulated process
//! restarts.
//!
//! Generation 1 opens a file-backed journal, accepts part of a round, and
//! "crashes" (the process state is simply dropped). Generation 2 reopens
//! the file, replays the journal, resumes the round mid-flight and settles
//! — with payments bit-identical to a run that never crashed. A durable
//! chaos session then survives a storm of injected mid-write crashes.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use lbmv::mechanism::CompensationBonusMechanism;
use lbmv::proto::{
    recover_round, run_chaos_session_durable, ChaosConfig, ChaosSessionConfig, Coordinator,
    CrashPlan, FileJournal, Journal, Message, NodeSpec, ProtocolConfig, RoundContext, RoundId,
};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;
use lbmv::telemetry::noop_collector;
use std::cell::RefCell;
use std::rc::Rc;

const RATE: f64 = 9.0;
const TRUES: [f64; 3] = [1.0, 1.5, 2.0];

fn sim() -> SimulationConfig {
    SimulationConfig {
        horizon: 50.0,
        seed: 42,
        model: ServiceModel::StationaryDeterministic,
        workload: Default::default(),
        warmup: 0.0,
        estimator: Default::default(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mechanism = CompensationBonusMechanism::paper();
    let round = RoundId(0);
    let wal = std::env::temp_dir().join(format!("lbmv-crash-recovery-{}.wal", std::process::id()));

    // ---- Generation 1: a round interrupted mid-bidding ------------------
    {
        let journal: Rc<RefCell<dyn Journal>> = Rc::new(RefCell::new(FileJournal::create(&wal)?));
        let mut c = Coordinator::new(&mechanism, TRUES.len(), RATE, round, sim())
            .with_journal(Rc::clone(&journal));
        // Two of three bids arrive, then the process dies: the accepted
        // bids are already in the write-ahead journal, the third is not.
        for m in 0..2u32 {
            c.handle(
                &Message::Bid {
                    round,
                    machine: m,
                    value: TRUES[m as usize],
                },
                &TRUES,
            )?;
        }
        println!("gen 1: accepted 2/3 bids, crashing before the third");
    } // <- coordinator and journal dropped: the "crash"

    // ---- Generation 2: replay, resume, settle ---------------------------
    let (journal, replay) = FileJournal::open(&wal)?;
    println!(
        "gen 2: replayed {} records ({} torn bytes truncated)",
        replay.records.len(),
        replay.truncated_tail
    );
    let ctx = RoundContext {
        n: TRUES.len(),
        total_rate: RATE,
        round,
        sim: sim(),
    };
    let journal: Rc<RefCell<dyn Journal>> = Rc::new(RefCell::new(journal));
    let (mut c, report) = recover_round(&mechanism, journal, &ctx, noop_collector(), 0.0)?;
    println!(
        "gen 2: recovered in phase {:?}, {} records replayed",
        report.phase, report.records_replayed
    );

    // `resume` re-requests exactly what is missing — here, machine 2's bid.
    let outgoing = c.resume(&TRUES)?;
    println!("gen 2: resume re-requests {} bid(s)", outgoing.len());
    c.handle(
        &Message::Bid {
            round,
            machine: 2,
            value: TRUES[2],
        },
        &TRUES,
    )?;
    for m in 0..TRUES.len() as u32 {
        c.handle(&Message::ExecutionDone { round, machine: m }, &TRUES)?;
    }
    c.seal()?;
    let payments = c.payments().expect("settled");
    println!("gen 2: settled payments {payments:?}");
    std::fs::remove_file(&wal).ok();

    // ---- A durable session under a crash storm --------------------------
    let config = ProtocolConfig {
        total_rate: RATE,
        link_latency: 0.001,
        simulation: sim(),
    };
    let specs: Vec<NodeSpec> = TRUES.iter().map(|&t| NodeSpec::truthful(t)).collect();
    let session = ChaosSessionConfig::new(3, ChaosConfig::reliable(2));
    let clean = run_chaos_session_durable(
        &mechanism,
        &config,
        &session,
        |_, _| specs.clone(),
        &CrashPlan::none(),
        Vec::new(),
        noop_collector(),
    )?;
    let stormy = run_chaos_session_durable(
        &mechanism,
        &config,
        &session,
        |_, _| specs.clone(),
        &CrashPlan::seeded(7, 6, clean.journal_bytes.len() as u64),
        Vec::new(),
        noop_collector(),
    )?;
    println!(
        "session: {} crashes injected, {} records replayed, {} torn bytes truncated",
        stormy.crashes, stormy.records_replayed, stormy.truncated_tail_bytes
    );
    assert_eq!(
        stormy
            .cumulative_payments
            .iter()
            .map(|p| p.to_bits())
            .collect::<Vec<_>>(),
        clean
            .cumulative_payments
            .iter()
            .map(|p| p.to_bits())
            .collect::<Vec<_>>(),
        "crash-recovered payments must be bit-identical"
    );
    println!(
        "session: cumulative payments bit-identical to the uninterrupted run: {:?}",
        stormy.cumulative_payments
    );
    Ok(())
}
