//! The O(n) batch leave-one-out payment kernel vs the legacy per-agent
//! path: equivalence on the validated domain, the large-`n` cancellation
//! regression it fixes, and a zero-diff check on the paper scenario's
//! protocol settle phase.

use lb_fuzz::extended::{marginal_contribution_dd, optimal_latency_excluding_dd};
use lbmv::core::allocation::{optimal_latency_excluding, optimal_latency_excluding_legacy};
use lbmv::core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
use lbmv::core::{marginal_contributions, optimal_latency_linear, LeaveOneOut};
use lbmv::mechanism::CompensationBonusMechanism;
use lbmv::proto::{run_protocol_round, NodeSpec, ProtocolConfig};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::estimator::EstimatorConfig;
use lbmv::sim::server::ServiceModel;
use proptest::prelude::*;

/// n = 10⁵ latency parameters log-spaced over nine orders of magnitude —
/// the regime where the subtractive bonus form loses its digits.
fn wide_values(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 10f64.powf(9.0 * i as f64 / (n - 1) as f64))
        .collect()
}

#[test]
fn pinned_large_n_cancellation_regression() {
    // The slowest machine's marginal contribution sits ~13 orders of
    // magnitude below L*: the subtractive form `L_{-i} − L*` in f64 keeps
    // at best 3 decimal digits of it, while the batch kernel's closed form
    // `R²·(1/t_i)/(S·(S − 1/t_i))` must stay within the 1e-9 oracle budget
    // of the double-double reference.
    let n = 100_000;
    let values = wide_values(n);
    let r = 20.0;
    let loo = LeaveOneOut::compute(&values, r).unwrap();
    let full = optimal_latency_linear(&values, r).unwrap();

    // Probe the extremes and the middle; the dd reference is O(n) per
    // probe, so the whole test stays well under a second.
    for &i in &[0usize, n / 2, n - 1] {
        let dd = marginal_contribution_dd(&values, i, r);
        let closed = loo.marginal(i);
        let rel = ((closed - dd) / dd).abs();
        assert!(
            rel < 1e-9,
            "machine {i}: closed form drifted {rel:e} from dd reference"
        );
        // And the batch L_{-i} itself matches the dd rebuild.
        let l_dd = optimal_latency_excluding_dd(&values, i, r);
        let l_rel = ((loo.excluding(i) - l_dd) / l_dd).abs();
        assert!(l_rel < 1e-12, "machine {i}: L_-i drifted {l_rel:e}");
    }

    // The slowest machine: the subtractive form visibly drifts (worse than
    // ten times the 1e-9 budget), which is exactly why the closed form
    // exists. Pinned so a refactor that silently reverts to subtraction
    // fails loudly.
    let slowest = n - 1;
    let dd = marginal_contribution_dd(&values, slowest, r);
    assert!(dd > 0.0);
    let subtractive = optimal_latency_excluding_legacy(&values, slowest, r).unwrap() - full;
    let drift = ((subtractive - dd) / dd).abs();
    assert!(
        drift > 1e-8,
        "subtractive form unexpectedly accurate ({drift:e}); regression test lost its witness"
    );
}

#[test]
fn batch_marginals_power_the_analysis_module() {
    // `marginal_contributions` is the same closed form; spot-check the
    // paper's published C1 value survives the rewiring.
    let values = paper_true_values();
    let mc = marginal_contributions(&values, PAPER_ARRIVAL_RATE).unwrap();
    assert!((mc[0] - (400.0 / 4.1 - 400.0 / 5.1)).abs() < 1e-9);
}

#[test]
fn settle_phase_payments_are_unchanged_on_the_paper_scenario() {
    // Zero-diff: a full protocol round on the paper's Table 1 scenario must
    // pay exactly what the legacy per-agent settle would have paid, given
    // the round's own measured inputs (bids, rates, estimated exec values).
    let mech = CompensationBonusMechanism::paper();
    let trues = paper_true_values();
    let specs: Vec<NodeSpec> = trues.iter().map(|&t| NodeSpec::truthful(t)).collect();
    let config = ProtocolConfig {
        total_rate: PAPER_ARRIVAL_RATE,
        link_latency: 0.001,
        simulation: SimulationConfig {
            horizon: 400.0,
            seed: 11,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        },
    };
    let out = run_protocol_round(&mech, &specs, &config).unwrap();

    // Rebuild the settle phase through the legacy kernel from the same
    // inputs the coordinator saw.
    let alloc = lbmv::core::Allocation::new(out.rates.clone(), PAPER_ARRIVAL_RATE).unwrap();
    let actual = lbmv::core::total_latency_linear(&alloc, &out.estimated_exec_values).unwrap();
    for i in 0..trues.len() {
        let without_i = optimal_latency_excluding_legacy(&trues, i, PAPER_ARRIVAL_RATE).unwrap();
        let compensation = out.estimated_exec_values[i] * alloc.rate(i);
        let legacy_payment = compensation + (without_i - actual);
        let scale = legacy_payment.abs().max(actual.abs()).max(1.0);
        assert!(
            (out.payments[i] - legacy_payment).abs() <= 1e-12 * scale,
            "machine {i}: settle payment moved: {} vs legacy {legacy_payment}",
            out.payments[i]
        );
    }
}

proptest! {
    /// Batch `L_{-i}` agrees with the legacy per-agent rebuild to 1e-12
    /// relative across the validated bid domain (12 orders of magnitude of
    /// spread, arrival rates over six).
    #[test]
    fn prop_batch_equals_legacy(
        exponents in proptest::collection::vec(-6.0f64..6.0, 2..48),
        r_exp in -3.0f64..3.0,
    ) {
        let values: Vec<f64> = exponents.iter().map(|&e| 10f64.powf(e)).collect();
        let r = 10f64.powf(r_exp);
        let loo = LeaveOneOut::compute(&values, r).unwrap();
        for i in 0..values.len() {
            let legacy = optimal_latency_excluding_legacy(&values, i, r).unwrap();
            let shim = optimal_latency_excluding(&values, i, r).unwrap();
            prop_assert!(
                ((loo.excluding(i) - legacy) / legacy).abs() < 1e-12,
                "batch vs legacy at {}: {} vs {}", i, loo.excluding(i), legacy
            );
            prop_assert!(
                ((shim - loo.excluding(i)) / legacy).abs() < 1e-12,
                "shim vs batch at {}", i
            );
        }
    }

    /// The closed-form marginals match the subtractive form wherever the
    /// subtraction is still numerically meaningful (small n, mild spread).
    #[test]
    fn prop_marginals_match_subtractive_on_benign_domain(
        values in proptest::collection::vec(0.1f64..10.0, 2..16),
        r in 0.5f64..50.0,
    ) {
        let loo = LeaveOneOut::compute(&values, r).unwrap();
        let full = optimal_latency_linear(&values, r).unwrap();
        for i in 0..values.len() {
            let subtractive = optimal_latency_excluding_legacy(&values, i, r).unwrap() - full;
            let scale = loo.excluding(i).abs().max(1.0);
            prop_assert!(
                (loo.marginal(i) - subtractive).abs() < 1e-9 * scale,
                "marginal {}: {} vs {}", i, loo.marginal(i), subtractive
            );
        }
    }
}
