//! Property-level verification of Theorems 3.1 and 3.2 across random
//! systems, including the boundary where their preconditions fail.

use lbmv::core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
use lbmv::core::System;
use lbmv::mechanism::{
    dominant_strategy_check, run_mechanism, truthfulness_scan, voluntary_participation_scan,
    CompensationBonusMechanism, DeviationGrid, Profile,
};
use proptest::prelude::*;

#[test]
fn theorem_3_1_on_the_paper_system_every_agent() {
    let sys = paper_system();
    let mech = CompensationBonusMechanism::paper();
    for agent in 0..16 {
        let report = truthfulness_scan(
            &mech,
            &sys,
            PAPER_ARRIVAL_RATE,
            agent,
            &DeviationGrid::default(),
        )
        .unwrap();
        assert!(
            report.is_truthful_optimal(1e-9),
            "agent {agent} gains {}",
            report.max_gain()
        );
    }
}

#[test]
fn theorem_3_1_dense_grid_for_c1() {
    let sys = paper_system();
    let mech = CompensationBonusMechanism::paper();
    let report =
        truthfulness_scan(&mech, &sys, PAPER_ARRIVAL_RATE, 0, &DeviationGrid::dense()).unwrap();
    assert!(
        report.is_truthful_optimal(1e-9),
        "gain {}",
        report.max_gain()
    );
}

#[test]
fn theorem_3_2_on_the_paper_system() {
    let min_utility = voluntary_participation_scan(
        &CompensationBonusMechanism::paper(),
        &paper_system(),
        PAPER_ARRIVAL_RATE,
    )
    .unwrap();
    assert!(min_utility >= -1e-9, "min truthful utility {min_utility}");
}

#[test]
fn dominant_strategy_against_consistent_opponents() {
    let gain = dominant_strategy_check(
        &CompensationBonusMechanism::paper(),
        &paper_system(),
        PAPER_ARRIVAL_RATE,
        0,
        &DeviationGrid::default(),
    )
    .unwrap();
    assert!(gain <= 1e-9, "gain {gain}");
}

#[test]
fn theorem_3_2_boundary_inconsistent_opponents_can_hurt_truthful_agents() {
    // The theorems' precondition is that opponents are *consistent*
    // (execution equals bid). Here every opponent bids truthfully but
    // executes 10x slower; the realised latency blows past the L_{-i}
    // benchmark and the truthful agent's utility goes negative. This
    // documents the exact scope of the paper's Theorem 3.2.
    let trues = vec![1.0, 1.0, 1.0, 1.0];
    let bids = trues.clone();
    let exec = vec![1.0, 10.0, 10.0, 10.0];
    let profile = Profile::new(trues, bids, exec, 8.0).unwrap();
    let out = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
    assert!(
        out.utilities[0] < 0.0,
        "truthful agent should lose here: {}",
        out.utilities[0]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.1 over random systems and environments.
    #[test]
    fn prop_truthfulness_random_systems(
        trues in proptest::collection::vec(0.1f64..10.0, 2..12),
        agent_frac in 0.0f64..1.0,
        bid_factor in 0.1f64..8.0,
        exec_factor in 1.0f64..6.0,
        rate in 0.5f64..80.0,
    ) {
        let n = trues.len();
        let agent = ((agent_frac * n as f64) as usize).min(n - 1);
        let sys = System::from_true_values(&trues).unwrap();
        let mech = CompensationBonusMechanism::paper();

        let truthful = run_mechanism(&mech, &Profile::truthful(&sys, rate).unwrap())
            .unwrap().utilities[agent];
        let deviating = run_mechanism(
            &mech,
            &Profile::with_deviation(&sys, rate, agent, bid_factor, exec_factor).unwrap(),
        ).unwrap().utilities[agent];
        prop_assert!(deviating <= truthful + 1e-7 * truthful.abs().max(1.0),
            "agent {} gained {} over {}", agent, deviating, truthful);
    }

    /// Theorem 3.2 over random systems with consistent opponents.
    #[test]
    fn prop_voluntary_participation_random_systems(
        trues in proptest::collection::vec(0.1f64..10.0, 2..12),
        factors in proptest::collection::vec(1.0f64..6.0, 2..12),
        rate in 0.5f64..80.0,
    ) {
        let n = trues.len().min(factors.len());
        let trues = &trues[..n];
        let mut bids = Vec::with_capacity(n);
        let mut exec = Vec::with_capacity(n);
        for i in 0..n {
            let b = if i == 0 { trues[0] } else { trues[i] * factors[i] };
            bids.push(b);
            exec.push(b);
        }
        let profile = Profile::new(trues.to_vec(), bids, exec, rate).unwrap();
        let out = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
        prop_assert!(out.utilities[0] >= -1e-9, "truthful agent lost {}", out.utilities[0]);
    }

    /// Budget identity: utilities always equal payments plus valuations, and
    /// the realised latency is the valuation-weighted load (model-exact
    /// accounting over random profiles).
    #[test]
    fn prop_accounting_identities(
        trues in proptest::collection::vec(0.1f64..10.0, 2..10),
        bid_factor in 0.1f64..8.0,
        exec_factor in 1.0f64..6.0,
        rate in 0.5f64..80.0,
    ) {
        let sys = System::from_true_values(&trues).unwrap();
        let profile = Profile::with_deviation(&sys, rate, 0, bid_factor, exec_factor).unwrap();
        let out = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
        for i in 0..trues.len() {
            prop_assert!((out.utilities[i] - (out.payments[i] + out.valuations[i])).abs() < 1e-9);
        }
        // Conservation: the allocation still sums to the arrival rate.
        prop_assert!((out.allocation.total_rate() - rate).abs() < 1e-6 * rate.max(1.0));
    }
}
