//! Crash-recovery integration: the durable round journal end to end.
//!
//! * a file-backed journal recovered from **every byte prefix** (the CI
//!   journal-truncation smoke test) finishes the round bit-identically;
//! * a durable chaos session killed at pseudo-random byte offsets settles
//!   the same rounds and pays the same totals as an uninterrupted run;
//! * quarantine state crosses simulated process generations through the
//!   journal alone.

use lbmv::audit::{InvariantMonitor, MonitorConfig};
use lbmv::mechanism::CompensationBonusMechanism;
use lbmv::proto::{
    read_journal, recover_round, run_chaos_session_durable, ChaosConfig, ChaosSessionConfig,
    Coordinator, CoordinatorPhase, CrashPlan, FileJournal, Journal, MemJournal, Message, NodeSpec,
    ProtocolConfig, RoundContext, RoundId,
};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;
use lbmv::telemetry::{noop_collector, replay_spans, Collector, RingCollector};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const RATE: f64 = 9.0;
const TRUES: [f64; 3] = [1.0, 1.5, 2.0];

fn sim() -> SimulationConfig {
    SimulationConfig {
        horizon: 50.0,
        seed: 42,
        model: ServiceModel::StationaryDeterministic,
        workload: Default::default(),
        warmup: 0.0,
        estimator: Default::default(),
    }
}

fn ctx() -> RoundContext {
    RoundContext {
        n: TRUES.len(),
        total_rate: RATE,
        round: RoundId(0),
        sim: sim(),
    }
}

/// A collision-free temp path (no tempfile dependency).
fn temp_wal(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "lbmv-recovery-{}-{}-{}.wal",
        std::process::id(),
        tag,
        unique
    ))
}

/// Feeds every missing bid and pending ack until the round settles, then
/// seals. Mirrors what a reliable driver does after `resume`.
fn finish(c: &mut Coordinator<'_>) {
    let round = RoundId(0);
    c.resume(&TRUES).unwrap();
    if c.phase() == CoordinatorPhase::CollectingBids {
        for (m, &value) in TRUES.iter().enumerate() {
            c.handle(
                &Message::Bid {
                    round,
                    machine: m as u32,
                    value,
                },
                &TRUES,
            )
            .unwrap();
        }
    }
    if c.phase() == CoordinatorPhase::Executing {
        for m in 0..TRUES.len() as u32 {
            c.handle(&Message::ExecutionDone { round, machine: m }, &TRUES)
                .unwrap();
        }
    }
    c.seal().unwrap();
}

/// Drives one journalled round to completion on a fresh file journal and
/// returns its bytes plus the settled payments.
fn record_round(path: &PathBuf) -> (Vec<u8>, Vec<f64>, Vec<f64>) {
    let mech = CompensationBonusMechanism::paper();
    let journal: Rc<RefCell<dyn Journal>> =
        Rc::new(RefCell::new(FileJournal::create(path).unwrap()));
    let mut c = Coordinator::new(&mech, TRUES.len(), RATE, RoundId(0), sim())
        .with_journal(Rc::clone(&journal));
    finish(&mut c);
    let rates: Vec<f64> = (0..TRUES.len())
        .map(|i| c.allocation().unwrap().rate(i))
        .collect();
    let payments = c.payments().unwrap().to_vec();
    let bytes = journal.borrow().bytes().unwrap();
    (bytes, rates, payments)
}

#[test]
fn file_journal_recovers_from_every_byte_prefix() {
    let recorded = temp_wal("record");
    let (bytes, rates, payments) = record_round(&recorded);
    let mech = CompensationBonusMechanism::paper();

    for cut in 0..=bytes.len() {
        // Simulate a crash that left only the first `cut` bytes durable.
        let torn = temp_wal("torn");
        fs::write(&torn, &bytes[..cut]).unwrap();
        let (journal, _replay) = FileJournal::open(&torn).unwrap();
        let journal: Rc<RefCell<dyn Journal>> = Rc::new(RefCell::new(journal));
        let (mut c, _report) =
            recover_round(&mech, Rc::clone(&journal), &ctx(), noop_collector(), 0.0)
                .unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        finish(&mut c);
        for i in 0..TRUES.len() {
            assert_eq!(
                c.allocation().unwrap().rate(i).to_bits(),
                rates[i].to_bits(),
                "cut {cut} machine {i}"
            );
            assert_eq!(
                c.payments().unwrap()[i].to_bits(),
                payments[i].to_bits(),
                "cut {cut} machine {i}"
            );
        }
        fs::remove_file(&torn).ok();
    }
    fs::remove_file(&recorded).ok();
}

#[test]
fn recovered_rounds_re_emit_spans_and_bit_identical_monitor_reports() {
    // Reference: an uninterrupted round observed by a monitor, recording
    // the report it settles on and the span forest it emits.
    let mech = CompensationBonusMechanism::paper();
    let observe = || {
        let ring = Arc::new(RingCollector::new(1 << 14));
        let monitor = Arc::new(InvariantMonitor::new(
            ring.clone() as Arc<dyn Collector>,
            MonitorConfig::default(),
        ));
        (ring, monitor)
    };
    let (ring, monitor) = observe();
    let journal: Rc<RefCell<dyn Journal>> = Rc::new(RefCell::new(MemJournal::new()));
    let mut c = Coordinator::new(&mech, TRUES.len(), RATE, RoundId(0), sim())
        .with_journal(Rc::clone(&journal))
        .with_collector(monitor.clone() as Arc<dyn Collector>);
    finish(&mut c);
    c.end_telemetry();
    let bytes = journal.borrow().bytes().unwrap();
    let reference_report = monitor.latest_report().expect("reference round observed");
    let reference_line = reference_report.to_jsonl_line();
    let reference_spans: BTreeSet<String> = replay_spans(&ring.snapshot())
        .unwrap()
        .iter()
        .map(|s| s.name.clone())
        .collect();
    assert!(reference_spans.contains("round"));
    assert!(reference_spans.iter().any(|s| s.starts_with("phase.")));

    // Crash at every byte prefix short of the seal (a fully sealed round
    // is finished history — resume correctly re-emits nothing for it); the
    // recovered generation's monitor must settle on a bit-identical report,
    // and the re-emitted span forest must still replay with the round span
    // present.
    for cut in 0..bytes.len() {
        let torn: Rc<RefCell<dyn Journal>> =
            Rc::new(RefCell::new(MemJournal::from_bytes(bytes[..cut].to_vec())));
        let (ring, monitor) = observe();
        let (mut c, _report) = recover_round(
            &mech,
            Rc::clone(&torn),
            &ctx(),
            monitor.clone() as Arc<dyn Collector>,
            0.0,
        )
        .unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        finish(&mut c);
        c.end_telemetry();
        let report = monitor
            .latest_report()
            .unwrap_or_else(|| panic!("cut {cut}: recovered round unobserved"));
        assert_eq!(report.to_jsonl_line(), reference_line, "cut {cut}");
        assert_eq!(report, reference_report, "cut {cut}");
        let spans: BTreeSet<String> = replay_spans(&ring.snapshot())
            .unwrap_or_else(|e| panic!("cut {cut}: spans do not replay: {e}"))
            .iter()
            .map(|s| s.name.clone())
            .collect();
        assert!(spans.contains("round"), "cut {cut}: {spans:?}");
        if cut == 0 {
            // An empty journal is a fresh round: the whole forest matches.
            assert_eq!(spans, reference_spans);
        }
    }
}

fn protocol_config() -> ProtocolConfig {
    ProtocolConfig {
        total_rate: RATE,
        link_latency: 0.001,
        simulation: sim(),
    }
}

fn specs() -> Vec<NodeSpec> {
    TRUES.iter().map(|&t| NodeSpec::truthful(t)).collect()
}

#[test]
fn durable_session_survives_seeded_crash_storms() {
    let mech = CompensationBonusMechanism::paper();
    let session = ChaosSessionConfig::new(3, ChaosConfig::reliable(2));
    let reference = run_chaos_session_durable(
        &mech,
        &protocol_config(),
        &session,
        |_, _| specs(),
        &CrashPlan::none(),
        Vec::new(),
        noop_collector(),
    )
    .unwrap();

    let max_byte = reference.journal_bytes.len() as u64;
    for seed in 0..8u64 {
        let crashed = run_chaos_session_durable(
            &mech,
            &protocol_config(),
            &session,
            |_, _| specs(),
            &CrashPlan::seeded(seed, 5, max_byte),
            Vec::new(),
            noop_collector(),
        )
        .unwrap();
        assert!(crashed.crashes > 0, "seed {seed}");
        assert_eq!(
            crashed.session.rounds.len(),
            reference.session.rounds.len(),
            "seed {seed}"
        );
        for (r, (c, want)) in crashed
            .session
            .rounds
            .iter()
            .zip(reference.session.rounds.iter())
            .enumerate()
        {
            assert_eq!(
                c.settled().unwrap().outcome.payments,
                want.settled().unwrap().outcome.payments,
                "seed {seed} round {r}"
            );
            assert_eq!(
                c.settled().unwrap().outcome.rates,
                want.settled().unwrap().outcome.rates,
                "seed {seed} round {r}"
            );
        }
        for i in 0..TRUES.len() {
            assert_eq!(
                crashed.cumulative_payments[i].to_bits(),
                reference.cumulative_payments[i].to_bits(),
                "seed {seed} machine {i}"
            );
        }
    }
}

#[test]
fn journal_hands_a_session_across_process_generations() {
    // Generation 1 plays round 0 and "dies"; generation 2 restarts from the
    // journal bytes, folds round 0 without re-running it, and plays the
    // remaining rounds — totals match a single uninterrupted session.
    let mech = CompensationBonusMechanism::paper();
    let full = ChaosSessionConfig::new(3, ChaosConfig::reliable(2));
    let uninterrupted = run_chaos_session_durable(
        &mech,
        &protocol_config(),
        &full,
        |_, _| specs(),
        &CrashPlan::none(),
        Vec::new(),
        noop_collector(),
    )
    .unwrap();

    let gen1_cfg = ChaosSessionConfig::new(1, ChaosConfig::reliable(2));
    let gen1 = run_chaos_session_durable(
        &mech,
        &protocol_config(),
        &gen1_cfg,
        |_, _| specs(),
        &CrashPlan::none(),
        Vec::new(),
        noop_collector(),
    )
    .unwrap();
    // The handoff journal replays cleanly: one sealed round.
    let replay = read_journal(&gen1.journal_bytes).unwrap();
    assert_eq!(replay.truncated_tail, 0);

    let gen2 = run_chaos_session_durable(
        &mech,
        &protocol_config(),
        &full,
        |_, _| specs(),
        &CrashPlan::none(),
        gen1.journal_bytes.clone(),
        noop_collector(),
    )
    .unwrap();
    assert_eq!(gen2.recovered_rounds, 1);
    assert_eq!(gen2.session.rounds.len(), 2);
    for i in 0..TRUES.len() {
        assert_eq!(
            gen2.cumulative_payments[i].to_bits(),
            uninterrupted.cumulative_payments[i].to_bits(),
            "machine {i}"
        );
    }
}
