//! Baseline comparisons: the verified mechanism vs the bid-only variant and
//! the Archer–Tardos one-parameter mechanism — the contrasts that motivate
//! the paper's design.

use lbmv::core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
use lbmv::mechanism::{
    frugality_ratio, run_mechanism, ArcherTardosMechanism, CompensationBonusMechanism, Profile,
    UnverifiedCompensationBonus, VerifiedMechanism,
};

fn deviation(bid_f: f64, exec_f: f64) -> Profile {
    Profile::with_deviation(&paper_system(), PAPER_ARRIVAL_RATE, 0, bid_f, exec_f).unwrap()
}

#[test]
fn all_mechanisms_share_the_pr_allocation() {
    let profile = deviation(2.0, 2.0);
    let cb = CompensationBonusMechanism::paper();
    let unv = UnverifiedCompensationBonus::paper();
    let at = ArcherTardosMechanism::closed_form();
    let a = cb.allocate(profile.bids(), PAPER_ARRIVAL_RATE).unwrap();
    let b = unv.allocate(profile.bids(), PAPER_ARRIVAL_RATE).unwrap();
    let c = at.allocate(profile.bids(), PAPER_ARRIVAL_RATE).unwrap();
    assert_eq!(a.rates(), b.rates());
    assert_eq!(a.rates(), c.rates());
}

#[test]
fn only_the_verified_mechanism_reacts_to_execution() {
    let honest = deviation(1.0, 1.0);
    let lazy = deviation(1.0, 3.0);
    let mechanisms: Vec<(Box<dyn VerifiedMechanism>, bool)> = vec![
        (Box::new(CompensationBonusMechanism::paper()), true),
        (Box::new(UnverifiedCompensationBonus::paper()), false),
        (Box::new(ArcherTardosMechanism::closed_form()), false),
    ];
    for (mech, reacts) in &mechanisms {
        let p_honest = run_mechanism(mech.as_ref(), &honest).unwrap().payments[0];
        let p_lazy = run_mechanism(mech.as_ref(), &lazy).unwrap().payments[0];
        if *reacts {
            assert!(p_lazy < p_honest - 1e-6, "{} did not react", mech.name());
        } else {
            assert!(
                (p_lazy - p_honest).abs() < 1e-9,
                "{} reacted unexpectedly",
                mech.name()
            );
        }
    }
}

#[test]
fn archer_tardos_pays_more_than_compensation_bonus_truthfully() {
    // Frugality comparison at the truthful profile: the AT payment includes
    // the full information-rent integral and is costlier for the system.
    let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
    let cb = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
    let at = run_mechanism(&ArcherTardosMechanism::closed_form(), &profile).unwrap();
    assert!(
        at.total_payment() > cb.total_payment(),
        "AT {} <= CB {}",
        at.total_payment(),
        cb.total_payment()
    );
    assert!(frugality_ratio(&cb) <= 2.5);
}

#[test]
fn verified_and_unverified_differ_exactly_by_the_execution_response() {
    // For honest bids the two payments differ by C(t̃) − C(b) on the agent's
    // own term plus the latency gap on the bonus term; verify the identity.
    let mech_v = CompensationBonusMechanism::paper();
    let mech_u = UnverifiedCompensationBonus::paper();
    let profile = deviation(1.0, 2.0); // True2
    let alloc = mech_v.allocate(profile.bids(), PAPER_ARRIVAL_RATE).unwrap();

    let pv = mech_v
        .payments(
            profile.bids(),
            &alloc,
            profile.exec_values(),
            PAPER_ARRIVAL_RATE,
        )
        .unwrap();
    let pu = mech_u
        .payments(
            profile.bids(),
            &alloc,
            profile.exec_values(),
            PAPER_ARRIVAL_RATE,
        )
        .unwrap();

    let x0 = alloc.rate(0);
    let declared_latency = lbmv::core::total_latency_linear(&alloc, profile.bids()).unwrap();
    let actual_latency = lbmv::core::total_latency_linear(&alloc, profile.exec_values()).unwrap();
    // Agent 0: ΔP = ΔC + ΔB = (t̃−b)x − (L_actual − L_declared).
    let expected_delta =
        (profile.exec_values()[0] - profile.bids()[0]) * x0 - (actual_latency - declared_latency);
    assert!(((pv[0] - pu[0]) - expected_delta).abs() < 1e-9);
    // Agents j≠0: ΔP = −(L_actual − L_declared) (their compensation is
    // unchanged; only the shared bonus term moves).
    for j in 1..16 {
        let expected = -(actual_latency - declared_latency);
        assert!(((pv[j] - pu[j]) - expected).abs() < 1e-9, "agent {j}");
    }
}

#[test]
fn archer_tardos_quadrature_agrees_with_closed_form_on_deviations() {
    for (bid_f, exec_f) in [(1.0, 1.0), (2.0, 2.0), (0.5, 1.0)] {
        let profile = deviation(bid_f, exec_f);
        let cf = run_mechanism(&ArcherTardosMechanism::closed_form(), &profile).unwrap();
        let q = run_mechanism(&ArcherTardosMechanism::quadrature(), &profile).unwrap();
        for (a, b) in cf.payments.iter().zip(&q.payments) {
            assert!((a - b).abs() < 1e-4 * a.abs().max(1.0), "{a} vs {b}");
        }
    }
}
