//! Bounded fuzz smoke: every differential oracle holds over a fixed-seed
//! budget small enough for `cargo test`. The CI job runs the same oracles
//! at 10⁴ iterations through the `lb-fuzz` binary in release mode.

use lb_fuzz::{registry, run_oracle, FuzzConfig};

#[test]
fn all_oracles_hold_for_the_smoke_budget() {
    let config = FuzzConfig {
        seed: 0x5EED_CAFE,
        iterations: 200,
    };
    for oracle in registry() {
        let report = run_oracle(oracle, &config);
        assert!(
            report.failures.is_empty(),
            "oracle {} failed {} time(s); first: iteration {} (reproduce with \
             `cargo run -p lb-fuzz -- --oracle {} --raw-seed {}`): {}",
            oracle.name,
            report.failures.len(),
            report.failures[0].iteration,
            oracle.name,
            report.failures[0].seed,
            report.failures[0].message
        );
    }
}
