//! Differential property tests: independent implementations of the same
//! quantity must agree on random inputs.
//!
//! * protocol runtime ⇔ direct mechanism evaluation,
//! * PR closed form ⇔ KKT solver,
//! * capped allocation ⇔ unconstrained PR when caps are loose,
//! * analytic frugality ⇔ empirical frugality,
//! * chaos runtime at zero fault probability ⇔ reliable runtimes
//!   (single-threaded and threaded), bit for bit,
//! * every chaos trace ⇔ clean `replay_check`.

use lbmv::core::{pr_allocate, pr_allocate_capped, solve_convex, ConvexSolverOptions, Linear};
use lbmv::mechanism::{run_mechanism, CompensationBonusMechanism, Profile};
use lbmv::proto::{
    replay_check, run_chaos_round, run_protocol_round, run_protocol_round_threaded, ChaosConfig,
    NodeSpec, ProtocolConfig,
};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;
use proptest::prelude::*;

fn proto_config() -> ProtocolConfig {
    ProtocolConfig {
        total_rate: 0.0, // overwritten per case
        link_latency: 0.0005,
        simulation: SimulationConfig {
            horizon: 100.0,
            seed: 99,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: Default::default(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full message-passing protocol and the direct mechanism evaluation
    /// agree on payments and utilities for random systems and deviations.
    #[test]
    fn prop_protocol_equals_mechanism(
        trues in proptest::collection::vec(0.2f64..8.0, 2..10),
        bid_factor in 0.3f64..4.0,
        exec_factor in 1.0f64..3.0,
        rate in 1.0f64..40.0,
    ) {
        let mech = CompensationBonusMechanism::paper();
        let mut specs: Vec<NodeSpec> = trues.iter().map(|&t| NodeSpec::truthful(t)).collect();
        specs[0] = NodeSpec::strategic(trues[0], trues[0] * bid_factor, trues[0] * exec_factor);

        let mut config = proto_config();
        config.total_rate = rate;
        let proto = run_protocol_round(&mech, &specs, &config).unwrap();

        let sys = lbmv::core::System::from_true_values(&trues).unwrap();
        let profile = Profile::with_deviation(&sys, rate, 0, bid_factor, exec_factor).unwrap();
        let direct = run_mechanism(&mech, &profile).unwrap();

        for i in 0..trues.len() {
            prop_assert!((proto.rates[i] - direct.allocation.rate(i)).abs() < 1e-9);
            prop_assert!(
                (proto.payments[i] - direct.payments[i]).abs() < 1e-6,
                "payment {}: {} vs {}", i, proto.payments[i], direct.payments[i]
            );
            prop_assert!((proto.utilities[i] - direct.utilities[i]).abs() < 1e-6);
        }
    }

    /// Loose caps make the capped allocator and plain PR identical; the KKT
    /// solver agrees with both.
    #[test]
    fn prop_three_allocators_agree(
        values in proptest::collection::vec(0.1f64..10.0, 1..10),
        rate in 0.5f64..50.0,
    ) {
        let pr = pr_allocate(&values, rate).unwrap();
        let caps = vec![rate * 2.0; values.len()];
        let capped = pr_allocate_capped(&values, &caps, rate).unwrap();
        let fns: Vec<Linear> = values.iter().map(|&t| Linear::new(t)).collect();
        let refs: Vec<&Linear> = fns.iter().collect();
        let kkt = solve_convex(&refs, rate, ConvexSolverOptions::default()).unwrap();
        for i in 0..values.len() {
            prop_assert!((pr.rate(i) - capped.rate(i)).abs() < 1e-9);
            prop_assert!((pr.rate(i) - kkt.rate(i)).abs() < 1e-6 * pr.rate(i).max(1.0));
        }
    }

    /// Analytic frugality formulas match the mechanism on uniform systems.
    #[test]
    fn prop_uniform_frugality_formulas(
        n in 2usize..24,
        t in 0.2f64..8.0,
        rate in 0.5f64..30.0,
    ) {
        use lbmv::mechanism::metrics::{
            analytic_frugality_uniform_contributed, analytic_frugality_uniform_per_job,
            frugality_ratio,
        };
        let sys = lbmv::core::System::from_true_values(&vec![t; n]).unwrap();
        let profile = Profile::truthful(&sys, rate).unwrap();

        let contributed =
            run_mechanism(&CompensationBonusMechanism::contributed(), &profile).unwrap();
        prop_assert!(
            (frugality_ratio(&contributed) - analytic_frugality_uniform_contributed(n)).abs() < 1e-9
        );
        let per_job = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
        prop_assert!(
            (frugality_ratio(&per_job) - analytic_frugality_uniform_per_job(n, rate)).abs() < 1e-9
        );
    }

    /// With every fault probability at zero the chaos runtime is bit-identical
    /// to both reliable runtimes: same frames, same clock, same floats.
    #[test]
    fn prop_zero_fault_chaos_equals_reliable_runtimes(
        trues in proptest::collection::vec(0.2f64..8.0, 2..10),
        bid_factor in 0.3f64..4.0,
        rate in 1.0f64..40.0,
        chaos_seed in 0u64..1000,
    ) {
        let mech = CompensationBonusMechanism::paper();
        let mut specs: Vec<NodeSpec> = trues.iter().map(|&t| NodeSpec::truthful(t)).collect();
        specs[0] = NodeSpec::strategic(trues[0], trues[0] * bid_factor, trues[0]);

        let mut config = proto_config();
        config.total_rate = rate;
        let reliable = run_protocol_round(&mech, &specs, &config).unwrap();
        let threaded = run_protocol_round_threaded(&mech, &specs, &config).unwrap();
        let chaos = run_chaos_round(&mech, &specs, &config, &ChaosConfig::reliable(chaos_seed))
            .unwrap();

        prop_assert_eq!(chaos.retries, 0);
        prop_assert_eq!(chaos.anomalies.total(), 0);
        for i in 0..trues.len() {
            // Exact equality: identical message schedule implies identical
            // estimator inputs, hence identical f64 results.
            prop_assert_eq!(chaos.outcome.rates[i], reliable.rates[i]);
            prop_assert_eq!(chaos.outcome.payments[i], reliable.payments[i]);
            prop_assert_eq!(chaos.outcome.utilities[i], reliable.utilities[i]);
            prop_assert_eq!(chaos.outcome.estimated_exec_values[i], reliable.estimated_exec_values[i]);
            prop_assert_eq!(chaos.outcome.rates[i], threaded.rates[i]);
            prop_assert_eq!(chaos.outcome.payments[i], threaded.payments[i]);
            prop_assert_eq!(chaos.outcome.utilities[i], threaded.utilities[i]);
            prop_assert_eq!(chaos.outcome.estimated_exec_values[i], threaded.estimated_exec_values[i]);
        }
        prop_assert_eq!(chaos.outcome.stats.messages, reliable.stats.messages);
        prop_assert_eq!(chaos.outcome.stats.bytes, reliable.stats.bytes);
    }

    /// Every trace the chaos runtime emits — under arbitrary fault pressure —
    /// passes the replay checker: the coordinator's-eye view of the round is
    /// always causally and temporally consistent.
    #[test]
    fn prop_chaos_traces_always_replay_cleanly(
        trues in proptest::collection::vec(0.2f64..8.0, 3..10),
        rate in 1.0f64..40.0,
        chaos_seed in 0u64..1000,
        drop_prob in 0.0f64..0.3,
        duplicate_prob in 0.0f64..0.3,
        corrupt_prob in 0.0f64..0.3,
    ) {
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = trues.iter().map(|&t| NodeSpec::truthful(t)).collect();

        let mut config = proto_config();
        config.total_rate = rate;
        let mut chaos_cfg = ChaosConfig::reliable(chaos_seed);
        chaos_cfg.drop_prob = drop_prob;
        chaos_cfg.duplicate_prob = duplicate_prob;
        chaos_cfg.corrupt_prob = corrupt_prob;
        chaos_cfg.jitter = 0.004;

        match run_chaos_round(&mech, &specs, &config, &chaos_cfg) {
            Ok(report) => {
                let violations = replay_check(&report.trace, trues.len());
                prop_assert!(
                    violations.is_empty(),
                    "replay violations under chaos: {:?}", violations
                );
            }
            // Heavy chaos may legitimately silence too many machines.
            Err(e) => prop_assert!(
                matches!(e, lbmv::mechanism::MechanismError::NeedTwoAgents),
                "unexpected error: {e}"
            ),
        }
    }
}
