//! Cross-crate pipeline consistency: analytic mechanism ⇔ discrete-event
//! simulation ⇔ protocol runtimes must all tell the same story.

use lbmv::core::scenario::{paper_system, paper_true_values, PAPER_ARRIVAL_RATE};
use lbmv::mechanism::{run_mechanism, CompensationBonusMechanism, Profile};
use lbmv::proto::{run_protocol_round, run_protocol_round_threaded, NodeSpec, ProtocolConfig};
use lbmv::sim::driver::{verified_round, SimulationConfig};
use lbmv::sim::estimator::EstimatorConfig;
use lbmv::sim::server::ServiceModel;

fn det_sim(horizon: f64, seed: u64) -> SimulationConfig {
    SimulationConfig {
        horizon,
        seed,
        model: ServiceModel::StationaryDeterministic,
        workload: Default::default(),
        warmup: 0.0,
        estimator: EstimatorConfig::default(),
    }
}

#[test]
fn analytic_and_simulated_payments_agree_in_deterministic_mode() {
    let sys = paper_system();
    let mech = CompensationBonusMechanism::paper();
    for (bid_f, exec_f) in [(1.0, 1.0), (3.0, 3.0), (0.5, 2.0), (1.0, 2.0)] {
        let profile = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, bid_f, exec_f).unwrap();
        let analytic = run_mechanism(&mech, &profile).unwrap();
        let simulated = verified_round(&mech, &profile, &det_sim(400.0, 1)).unwrap();
        for i in 0..16 {
            assert!(
                (analytic.payments[i] - simulated.outcome.payments[i]).abs() < 1e-6,
                "payment {i} for ({bid_f},{exec_f})"
            );
        }
    }
}

#[test]
fn stochastic_simulation_converges_to_analytic_with_horizon() {
    let sys = paper_system();
    let mech = CompensationBonusMechanism::paper();
    let profile = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
    let analytic = run_mechanism(&mech, &profile).unwrap();

    let mut errors = Vec::new();
    for horizon in [200.0, 2_000.0, 20_000.0] {
        let cfg = SimulationConfig {
            horizon,
            seed: 17,
            model: ServiceModel::StationaryExponential,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        };
        let round = verified_round(&mech, &profile, &cfg).unwrap();
        let err = (round.report.estimated_total_latency - analytic.total_latency).abs();
        errors.push(err);
    }
    // Error shrinks with horizon (allow one inversion from noise between the
    // first two, but the longest horizon must beat the shortest).
    assert!(errors[2] < errors[0], "errors did not shrink: {errors:?}");
    assert!(
        errors[2] / analytic.total_latency < 0.02,
        "final rel error {}",
        errors[2]
    );
}

#[test]
fn protocol_and_direct_mechanism_agree() {
    let mech = CompensationBonusMechanism::paper();
    let trues = paper_true_values();
    let mut specs: Vec<NodeSpec> = trues.iter().map(|&t| NodeSpec::truthful(t)).collect();
    specs[0] = NodeSpec::strategic(1.0, 0.5, 2.0); // Low2

    let config = ProtocolConfig {
        total_rate: PAPER_ARRIVAL_RATE,
        link_latency: 0.001,
        simulation: det_sim(400.0, 5),
    };
    let proto = run_protocol_round(&mech, &specs, &config).unwrap();

    let sys = paper_system();
    let profile = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, 0.5, 2.0).unwrap();
    let direct = run_mechanism(&mech, &profile).unwrap();

    for i in 0..16 {
        assert!(
            (proto.payments[i] - direct.payments[i]).abs() < 1e-6,
            "payment {i}"
        );
        assert!(
            (proto.utilities[i] - direct.utilities[i]).abs() < 1e-6,
            "utility {i}"
        );
    }
    // Low2's fine survives the full protocol path.
    assert!(proto.payments[0] < 0.0);
}

#[test]
fn threaded_and_deterministic_protocols_agree_across_scenarios() {
    let mech = CompensationBonusMechanism::paper();
    let trues = paper_true_values();
    for (bid_f, exec_f) in [(1.0, 1.0), (3.0, 1.0), (0.5, 2.0)] {
        let mut specs: Vec<NodeSpec> = trues.iter().map(|&t| NodeSpec::truthful(t)).collect();
        specs[0] = NodeSpec::strategic(1.0, bid_f, (exec_f as f64).max(1.0));
        let config = ProtocolConfig {
            total_rate: PAPER_ARRIVAL_RATE,
            link_latency: 0.001,
            simulation: det_sim(400.0, 5),
        };
        let st = run_protocol_round(&mech, &specs, &config).unwrap();
        let mt = run_protocol_round_threaded(&mech, &specs, &config).unwrap();
        assert_eq!(st.stats, mt.stats, "traffic for ({bid_f},{exec_f})");
        for i in 0..16 {
            assert!((st.payments[i] - mt.payments[i]).abs() < 1e-9);
        }
    }
}

#[test]
fn message_complexity_is_exactly_linear() {
    let mech = CompensationBonusMechanism::paper();
    let mut per_node = Vec::new();
    for n in [4usize, 16, 64] {
        let specs: Vec<NodeSpec> = (0..n).map(|i| NodeSpec::truthful(1.0 + i as f64)).collect();
        let config = ProtocolConfig {
            total_rate: 10.0,
            link_latency: 0.001,
            simulation: det_sim(50.0, 9),
        };
        let out = run_protocol_round(&mech, &specs, &config).unwrap();
        per_node.push(out.stats.messages as f64 / n as f64);
    }
    // O(n): per-node message count is a constant.
    assert!((per_node[0] - per_node[1]).abs() < 1e-12);
    assert!((per_node[1] - per_node[2]).abs() < 1e-12);
}

#[test]
fn estimator_noise_perturbs_payments_boundedly() {
    let sys = paper_system();
    let mech = CompensationBonusMechanism::paper();
    let profile = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
    let noisy = SimulationConfig {
        horizon: 5_000.0,
        seed: 23,
        model: ServiceModel::StationaryExponential,
        workload: Default::default(),
        warmup: 0.0,
        estimator: EstimatorConfig {
            max_samples: None,
            noise_cv: 0.2,
        },
    };
    let round = verified_round(&mech, &profile, &noisy).unwrap();
    // With thousands of samples, even 20% per-observation noise keeps the
    // payment error small relative to payment magnitudes (~20+).
    assert!(
        round.max_payment_error() < 2.0,
        "error {}",
        round.max_payment_error()
    );
}
