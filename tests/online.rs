//! Online mechanism integration: streaming joins/leaves through the full
//! facade.
//!
//! * the O(1) incremental pool agrees bit-for-bit with the factored
//!   closed-form allocation after arbitrary churn;
//! * an [`OnlineSession`]'s first settle tick pays exactly what a batch
//!   [`run_protocol_round`] pays on the same population;
//! * a journalled churn session leaves a cleanly-split round journal and
//!   internally consistent report totals.

use lbmv::core::{inv_sum_dd, pr_allocate_with_sum, TwoF64};
use lbmv::mechanism::{CompensationBonusMechanism, OnlinePool};
use lbmv::proto::{
    read_journal, run_online_session, run_protocol_round, split_rounds, Journal, MemJournal,
    NodeSpec, OnlineApplied, OnlineEvent, OnlineSession, ProtocolConfig,
};
use lbmv::sim::churn::{ChurnConfig, ChurnEvent, ChurnGen};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;
use std::cell::RefCell;
use std::rc::Rc;

const RATE: f64 = 12.0;

fn sim(seed: u64) -> SimulationConfig {
    SimulationConfig {
        horizon: 50.0,
        seed,
        model: ServiceModel::StationaryDeterministic,
        workload: Default::default(),
        warmup: 0.0,
        estimator: Default::default(),
    }
}

fn config(seed: u64) -> ProtocolConfig {
    ProtocolConfig {
        total_rate: RATE,
        link_latency: 0.0005,
        simulation: sim(seed),
    }
}

#[test]
fn incremental_pool_tracks_the_closed_form_bit_for_bit() {
    let mut pool = OnlinePool::new(RATE).unwrap();
    let mut mirror: Vec<Option<f64>> = vec![None; 8];

    let script = [
        ChurnEvent::Join {
            slot: 0,
            value: 1.0,
        },
        ChurnEvent::Join {
            slot: 3,
            value: 2.5,
        },
        ChurnEvent::Join {
            slot: 5,
            value: 0.25,
        },
        ChurnEvent::RateChange {
            slot: 3,
            value: 4.0,
        },
        ChurnEvent::Join {
            slot: 1,
            value: 8.0,
        },
        ChurnEvent::Leave { slot: 0 },
        ChurnEvent::Join {
            slot: 7,
            value: 0.125,
        },
        ChurnEvent::Leave { slot: 5 },
    ];
    for event in script {
        match event {
            ChurnEvent::Join { slot, value } => {
                pool.join(slot, value).unwrap();
                mirror[slot] = Some(value);
            }
            ChurnEvent::Leave { slot } => {
                pool.leave(slot).unwrap();
                mirror[slot] = None;
            }
            ChurnEvent::RateChange { slot, value } => {
                pool.rate_change(slot, value).unwrap();
                mirror[slot] = Some(value);
            }
            ChurnEvent::Tick => {}
        }
        let live: Vec<f64> = mirror.iter().copied().flatten().collect();
        if live.len() < 2 {
            continue;
        }
        // The pool's rates must be *bit-identical* to the factored closed
        // form evaluated at the pool's own S — same expression, same order.
        let alloc = pr_allocate_with_sum(&live, RATE, pool.harmonic_sum()).unwrap();
        let live_slots: Vec<usize> = (0..mirror.len()).filter(|&s| mirror[s].is_some()).collect();
        for (k, &slot) in live_slots.iter().enumerate() {
            let incremental = pool.rate_of(slot).unwrap();
            assert_eq!(
                incremental.to_bits(),
                alloc.rate(k).to_bits(),
                "slot {slot} diverged from the closed form"
            );
        }
        // And the incrementally maintained S stays within the drift bar of
        // a from-scratch double-double fold.
        let scratch = inv_sum_dd(&live).value();
        let rel = (pool.harmonic_sum().value() - scratch).abs() / scratch.abs();
        assert!(rel <= 1e-12, "S drifted {rel:e} relative");
    }

    // Absent machines read back as no rate at all.
    assert_eq!(pool.rate_of(0), None);
    assert_eq!(pool.live(), 3);

    // A compensated re-sum restores bit-exactness against the fold.
    pool.resum();
    let live: Vec<f64> = mirror.iter().copied().flatten().collect();
    let scratch: TwoF64 = inv_sum_dd(&live);
    assert_eq!(
        pool.harmonic_sum().value().to_bits(),
        scratch.value().to_bits()
    );
}

#[test]
fn first_settle_tick_pays_exactly_like_a_batch_round() {
    let mech = CompensationBonusMechanism::paper();
    let trues = [1.0, 2.0, 4.0, 8.0];
    let config = config(7);

    let mut session = OnlineSession::new(&mech, config).unwrap();
    for (slot, &t) in trues.iter().enumerate() {
        let applied = session
            .apply(OnlineEvent::Join {
                machine: slot,
                spec: NodeSpec::truthful(t),
            })
            .unwrap();
        assert_eq!(applied, OnlineApplied::Joined { machine: slot });
    }
    let tick = match session.apply(OnlineEvent::RoundTick).unwrap() {
        OnlineApplied::Settled(tick) => tick,
        other => panic!("expected a settled tick, got {other:?}"),
    };

    // Round 0 of the online session uses seed base+0, exactly like the
    // batch runtime; a join-only history makes S bit-identical to the
    // batch fold, so the whole payment vector must match to the bit.
    let specs: Vec<NodeSpec> = trues.iter().map(|&t| NodeSpec::truthful(t)).collect();
    let batch = run_protocol_round(&mech, &specs, &config).unwrap();

    assert_eq!(tick.round, 0);
    assert_eq!(tick.machines, vec![0, 1, 2, 3]);
    assert_eq!(tick.payments.len(), batch.payments.len());
    for (k, (&online, &offline)) in tick.payments.iter().zip(&batch.payments).enumerate() {
        assert_eq!(
            online.to_bits(),
            offline.to_bits(),
            "machine {k}: online {online} vs batch {offline}"
        );
        assert_eq!(session.cumulative_payment(k).to_bits(), offline.to_bits());
    }
    assert_eq!(session.next_round(), 1);
}

#[test]
fn journalled_churn_session_reports_consistent_totals() {
    let mech = CompensationBonusMechanism::paper();
    let config = config(21);
    let churn = ChurnConfig {
        slots: 24,
        initial: 5,
        events: 500,
        half_width: 2.0,
        tick_every: 60,
        min_live: 2,
    };
    let seed = 9;

    let journal: Rc<RefCell<dyn Journal>> = Rc::new(RefCell::new(MemJournal::new()));
    let mut session = OnlineSession::new(&mech, config)
        .unwrap()
        .with_journal(journal.clone());
    let report = session
        .run(ChurnGen::new(churn, seed).map(OnlineEvent::from_churn))
        .unwrap();

    // The report's totals must reconcile with the stream itself.
    let stream: Vec<ChurnEvent> = ChurnGen::new(churn, seed).collect();
    let ticks = stream
        .iter()
        .filter(|e| matches!(e, ChurnEvent::Tick))
        .count() as u64;
    let membership = stream.len() as u64 - ticks;
    assert_eq!(report.events, membership);
    assert_eq!(report.ticks_settled + report.ticks_skipped, ticks);
    assert!(report.ticks_settled > 0, "stream settled no rounds");
    assert_eq!(report.cumulative_payments.len(), churn.slots);
    assert!(report.cumulative_payments.iter().all(|p| p.is_finite()));

    // Each settled tick left exactly one complete round block behind.
    let bytes = journal.borrow().bytes().unwrap();
    let replay = read_journal(&bytes).unwrap();
    assert_eq!(replay.truncated_tail, 0);
    let blocks = split_rounds(&replay.records).unwrap();
    assert_eq!(blocks.len() as u64, report.ticks_settled);

    // And the convenience driver reproduces the same session end to end.
    let again = run_online_session(&mech, &config, churn, seed).unwrap();
    assert_eq!(again.events, report.events);
    assert_eq!(again.ticks_settled, report.ticks_settled);
    assert_eq!(again.live, report.live);
    for (slot, (&a, &b)) in again
        .cumulative_payments
        .iter()
        .zip(&report.cumulative_payments)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "slot {slot} replayed differently");
    }
}
