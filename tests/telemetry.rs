//! End-to-end observability: a chaotic session recorded by a ring collector
//! must export losslessly, replay cleanly, and agree with the protocol's own
//! message accounting — while the default noop collector changes nothing.

use lbmv::core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
use lbmv::mechanism::CompensationBonusMechanism;
use lbmv::proto::audit::{audit_broadcast_cost, audit_broadcast_cost_observed, SettlementRecord};
use lbmv::proto::chaos::ChaosConfig;
use lbmv::proto::session::{
    run_chaos_session, run_chaos_session_observed, ChaosSessionConfig, ChaosSessionReport,
};
use lbmv::proto::{NodeSpec, ProtocolConfig};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;
use lbmv::telemetry::{
    from_jsonl, replay_spans, to_chrome_trace, to_jsonl, Json, MetricsRegistry, RingCollector,
    TelemetryEvent,
};
use std::sync::Arc;

fn paper_config(seed: u64) -> ProtocolConfig {
    ProtocolConfig {
        total_rate: PAPER_ARRIVAL_RATE,
        link_latency: 0.001,
        simulation: SimulationConfig {
            horizon: 300.0,
            seed,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: Default::default(),
        },
    }
}

fn truthful_specs() -> Vec<NodeSpec> {
    paper_true_values()
        .iter()
        .map(|&t| NodeSpec::truthful(t))
        .collect()
}

/// Runs a 3-round heavy-chaos session on the paper system, recording into a
/// fresh ring, and returns the report plus the recording.
fn recorded_session(seed: u64) -> (ChaosSessionReport, Vec<TelemetryEvent>) {
    let session = ChaosSessionConfig::new(3, ChaosConfig::heavy(seed));
    let ring = Arc::new(RingCollector::new(65_536));
    let report = run_chaos_session_observed(
        &CompensationBonusMechanism::paper(),
        &paper_config(3),
        &session,
        |_, _| truthful_specs(),
        ring.clone(),
    )
    .unwrap();
    assert_eq!(ring.overwritten(), 0, "ring too small for the session");
    (report, ring.snapshot())
}

#[test]
fn chaos_session_recording_replays_and_matches_the_wire() {
    let (report, events) = recorded_session(7);
    assert_eq!(report.aborted_rounds, 0, "seed 7 should settle every round");

    // The JSONL export is lossless, and the reloaded recording's span
    // nesting replays cleanly: every phase span closed inside its round.
    let reloaded = from_jsonl(&to_jsonl(&events)).unwrap();
    assert_eq!(reloaded, events);
    let spans = replay_spans(&reloaded).unwrap();
    assert_eq!(spans.iter().filter(|s| s.name == "round").count(), 3);
    assert!(spans
        .iter()
        .any(|s| s.name == "phase.collect_bids" && s.depth == 1));

    // The metrics derived from the recording agree with the protocol's own
    // accounting — every send attempt, drops included, on both sides.
    let mut reg = MetricsRegistry::new();
    reg.ingest(&reloaded);
    assert_eq!(reg.counter("net.messages"), report.total_messages);
    assert_eq!(reg.counter("net.bytes"), report.total_bytes);
    assert_eq!(reg.counter("anomaly.total"), report.anomalies.total());
}

#[test]
fn audit_broadcast_counters_match_the_audit_cost() {
    let (report, mut events) = recorded_session(7);
    let last = report
        .rounds
        .last()
        .and_then(|r| r.settled())
        .expect("settled round");
    let record = SettlementRecord {
        bids: truthful_specs().iter().map(|s| s.bid).collect(),
        estimated_exec_values: last.outcome.estimated_exec_values.clone(),
        total_rate: PAPER_ARRIVAL_RATE,
        claimed_payments: last.outcome.payments.clone(),
    };

    // Record the audit broadcast into the same story, then check the
    // registry's counters against the audit's own cost computation.
    let ring = RingCollector::new(16);
    let n = record.bids.len();
    let stats = audit_broadcast_cost_observed(&record, n, 10.0, &ring).unwrap();
    assert_eq!(stats, audit_broadcast_cost(&record, n).unwrap());
    events.extend(ring.snapshot());

    let mut reg = MetricsRegistry::new();
    reg.ingest(&events);
    assert_eq!(reg.counter("audit.messages"), stats.messages);
    assert_eq!(reg.counter("audit.bytes"), stats.bytes);
    // The audit rides on the control plane but is accounted separately.
    assert_eq!(reg.counter("net.messages"), report.total_messages);
}

#[test]
fn chrome_trace_export_is_valid_json() {
    let (_, events) = recorded_session(7);
    let trace = to_chrome_trace(&events).unwrap();
    match Json::parse(&trace).unwrap() {
        Json::Arr(entries) => assert!(!entries.is_empty(), "trace should carry events"),
        other => panic!("chrome trace must be a JSON array, got {other:?}"),
    }
}

#[test]
fn recording_a_session_does_not_change_its_outcome() {
    let mechanism = CompensationBonusMechanism::paper();
    let config = paper_config(3);
    let session = ChaosSessionConfig::new(3, ChaosConfig::heavy(7));

    let plain = run_chaos_session(&mechanism, &config, &session, |_, _| truthful_specs()).unwrap();
    let ring = Arc::new(RingCollector::new(65_536));
    let observed =
        run_chaos_session_observed(&mechanism, &config, &session, |_, _| truthful_specs(), ring)
            .unwrap();

    assert_eq!(plain.total_messages, observed.total_messages);
    assert_eq!(plain.total_retries, observed.total_retries);
    assert_eq!(plain.anomalies, observed.anomalies);
    for (a, b) in plain.rounds.iter().zip(&observed.rounds) {
        match (a.settled(), b.settled()) {
            (Some(ra), Some(rb)) => {
                assert_eq!(ra.outcome.payments, rb.outcome.payments);
                assert_eq!(ra.outcome.rates, rb.outcome.rates);
                assert_eq!(ra.outcome.stats, rb.outcome.stats);
            }
            (None, None) => {}
            _ => panic!("settlement pattern diverged under observation"),
        }
    }
}
