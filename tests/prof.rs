//! End-to-end `lb-prof`: the cross-shard rollup, the critical-path round
//! profiler and the regression sentinel — and above all their **inertness**:
//! a detached, attached or sampling-skipped profiler must leave every
//! runtime's settled outcome bit-identical.

use lbmv::mechanism::CompensationBonusMechanism;
use lbmv::prof::{check, profile_events, Baseline, RoundProfiler, SentinelConfig, SKETCH_RTOL};
use lbmv::proto::{
    drive_sharded_round_profiled, report_from_root, run_protocol_round,
    run_protocol_round_threaded, run_round_sharded, run_round_sharded_observed,
    run_round_sharded_profiled, Coordinator, FaultPlan, NodeSpec, ProtocolConfig, RoundId,
};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;
use lbmv::stats::OnlineStats;
use lbmv::telemetry::{noop_collector, RingCollector};
use std::sync::Arc;

const BASELINE_LOG: &str = include_str!("../BENCH_round_scaling.json");

fn config() -> ProtocolConfig {
    ProtocolConfig {
        total_rate: 20.0,
        link_latency: 0.001,
        simulation: SimulationConfig {
            horizon: 50.0,
            seed: 7,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: Default::default(),
        },
    }
}

fn specs(n: usize) -> Vec<NodeSpec> {
    (0..n)
        .map(|i| NodeSpec::truthful(1.0 + (i % 7) as f64))
        .collect()
}

/// Drives `rounds` profiled sharded rounds with consecutive round ids, so
/// sampling periods actually skip rounds.
fn drive_rounds(
    n: usize,
    shards: usize,
    rounds: u64,
    profiler: &mut RoundProfiler,
) -> Vec<(Vec<f64>, Vec<f64>)> {
    let mech = CompensationBonusMechanism::paper();
    let specs = specs(n);
    let config = config();
    (0..rounds)
        .map(|round| {
            let mut root = Coordinator::try_new(
                &mech,
                n,
                config.total_rate,
                RoundId(round),
                config.simulation,
            )
            .unwrap()
            .with_strict(true);
            let (stats, timings) = drive_sharded_round_profiled(
                &mut root,
                &specs,
                &config,
                shards,
                &FaultPlan::none(),
                Some(profiler),
            )
            .unwrap();
            let report = report_from_root(&root, stats, shards, timings).unwrap();
            (report.rates, report.payments)
        })
        .collect()
}

#[test]
fn profiler_is_bit_inert_across_runtimes() {
    let mech = CompensationBonusMechanism::paper();
    let (n, shards) = (60, 4);
    let specs = specs(n);
    let config = config();

    // The three detached runtimes agree bit-for-bit (the established
    // cross-runtime differential), giving the baseline outcome.
    let deterministic = run_protocol_round(&mech, &specs, &config).unwrap();
    let threaded = run_protocol_round_threaded(&mech, &specs, &config).unwrap();
    let sharded = run_round_sharded(&mech, &specs, &config, shards).unwrap();
    assert_eq!(deterministic.rates, threaded.rates);
    assert_eq!(deterministic.payments, threaded.payments);
    assert_eq!(deterministic.rates, sharded.rates);
    assert_eq!(deterministic.payments, sharded.payments);
    assert_eq!(
        deterministic.estimated_exec_values,
        sharded.estimated_exec_values
    );

    // Attaching a profiler must change nothing observable: outcome vectors,
    // exclusions and the audited message statistics are all bit-identical.
    let mut profiler = RoundProfiler::new();
    let profiled = run_round_sharded_profiled(
        &mech,
        &specs,
        &config,
        shards,
        noop_collector(),
        &mut profiler,
    )
    .unwrap();
    assert_eq!(profiled.rates, sharded.rates);
    assert_eq!(profiled.payments, sharded.payments);
    assert_eq!(
        profiled.estimated_exec_values,
        sharded.estimated_exec_values
    );
    assert_eq!(profiled.excluded, sharded.excluded);
    assert_eq!(
        profiled.stats, sharded.stats,
        "profile frames are a side channel"
    );
    assert_eq!(profiler.rounds_profiled(), 1);
    let (frames, bytes) = profiler.frames();
    assert_eq!(frames, shards as u64, "one profile frame per shard");
    assert!(bytes > 0);

    // A sampling-skipped round takes the detached fast path: no rollup, no
    // frames, and the same settled outcome as a detached drive of the same
    // round id.
    let drive = |attach: Option<&mut RoundProfiler>| {
        let mut root =
            Coordinator::try_new(&mech, n, config.total_rate, RoundId(1), config.simulation)
                .unwrap()
                .with_strict(true);
        let (stats, timings) = drive_sharded_round_profiled(
            &mut root,
            &specs,
            &config,
            shards,
            &FaultPlan::none(),
            attach,
        )
        .unwrap();
        let report = report_from_root(&root, stats, shards, timings).unwrap();
        (report.rates, report.payments, report.stats)
    };
    let mut sampled = RoundProfiler::sampled(2);
    assert!(!sampled.should_profile(1));
    let skipped = drive(Some(&mut sampled));
    let detached = drive(None);
    assert_eq!(skipped, detached);
    assert_eq!(sampled.rounds_profiled(), 0);
    assert_eq!(sampled.frames(), (0, 0));
    assert!(sampled.rollup().is_empty());
}

#[test]
fn rollup_matches_whole_fleet_recompute() {
    let (n, shards, rounds) = (64, 4, 5u64);
    let mut profiler = RoundProfiler::new();
    let outcomes = drive_rounds(n, shards, rounds, &mut profiler);
    // Determinism across rounds of the same spec set: the profiler's
    // presence every round never perturbs the settled outcome.
    for o in &outcomes[1..] {
        assert_eq!(*o, outcomes[0]);
    }

    assert_eq!(profiler.rounds_profiled(), rounds);
    for series in profiler.series() {
        assert_eq!(series.count(), rounds, "one observation per round/phase");
    }

    // Each profiled round contributes one sample per shard per phase and
    // one machine-wall observation per machine.
    let rollup = profiler.rollup();
    let shard_rollups: Vec<_> = rollup.shards().collect();
    assert_eq!(shard_rollups.len(), shards);
    for phase in 0..4 {
        let fleet = rollup.fleet_phase(phase);
        assert_eq!(fleet.count(), rounds * shards as u64);
        // The fleet view is the exact merge of the per-shard sketches:
        // recomputing it by hand answers every quantile read bitwise.
        let mut manual = lbmv::prof::LatencySketch::new();
        for s in &shard_rollups {
            manual.merge(&s.phases[phase]);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(manual.quantile(q).to_bits(), fleet.quantile(q).to_bits());
        }
        // And every per-shard quantile lies inside the fleet's exact range.
        for s in &shard_rollups {
            let p99 = s.phases[phase].p99();
            assert!(p99 >= fleet.min() && p99 <= fleet.max());
        }
    }
    let machine = rollup.fleet_machine();
    assert_eq!(machine.count(), rounds * n as u64);
    // The sketch accuracy contract on a real population: the fleet p50
    // within SKETCH_RTOL of itself re-read through per-shard merges is
    // already bitwise; check the read stays inside the exact extrema.
    assert!(machine.p50() >= machine.min() && machine.p50() <= machine.max());
    let json = profiler.to_json().render();
    assert!(json.contains("\"fleet\"") && json.contains("\"machine_wall\""));
}

#[test]
fn critical_path_profile_covers_an_observed_sharded_round() {
    let mech = CompensationBonusMechanism::paper();
    let (n, shards) = (256, 4);
    let ring = Arc::new(RingCollector::new(1 << 20));
    run_round_sharded_observed(&mech, &specs(n), &config(), shards, ring.clone()).unwrap();
    assert_eq!(ring.overwritten(), 0, "ring too small for the round");

    let profile = profile_events(&ring.snapshot()).unwrap();
    assert!(profile.round_wall > 0.0);
    assert!(
        profile.coverage > 0.75,
        "phase spans cover the round: {}",
        profile.coverage
    );
    assert!(profile.path.iter().any(|p| p.name.starts_with("phase.")));
    assert!(
        profile.path.iter().any(|p| p.shard.is_some()),
        "path descends into the shard tier"
    );
    assert!(!profile.stragglers.is_empty());

    // The JSONL codec is the dashboard interchange: exact round-trip.
    let text = lbmv::prof::to_jsonl(&[profile.clone()]);
    let back = lbmv::prof::from_jsonl(&text).unwrap();
    assert_eq!(back, vec![profile]);
}

/// The n = 10⁵ acceptance point: critical-path span sum ≥ 95% of round
/// wall-time on a sharded round. Minutes-scale; run with `--ignored`.
#[test]
#[ignore = "n = 100_000 acceptance run; minutes on a laptop"]
fn critical_path_coverage_at_scale() {
    let mech = CompensationBonusMechanism::paper();
    let (n, shards) = (100_000, 8);
    let ring = Arc::new(RingCollector::new(1 << 22));
    run_round_sharded_observed(&mech, &specs(n), &config(), shards, ring.clone()).unwrap();
    assert_eq!(ring.overwritten(), 0, "ring too small for the round");
    let profile = profile_events(&ring.snapshot()).unwrap();
    assert!(
        profile.coverage >= 0.95,
        "critical-path coverage at n = 100000: {}",
        profile.coverage
    );
}

#[test]
fn sentinel_flags_injected_settle_slowdown_but_not_clean_series() {
    let baseline = Baseline::parse(BASELINE_LOG, "seed").unwrap();
    let cfg = SentinelConfig::default();
    let row = baseline.row_for(10_000).expect("seed row at n = 10^4");

    // A clean synthetic series: every phase runs at 80% of the baseline
    // p99, with a deterministic sub-permille wobble so the t-interval is
    // finite. Nothing may be flagged.
    let series_at = |scale: [f64; 4]| {
        let mut series = [OnlineStats::new(); 4];
        for round in 0..8 {
            let wobble = 1.0 + 1e-4 * f64::from(round % 3);
            for (i, s) in series.iter_mut().enumerate() {
                s.push(row.phase_p99_ms[i] * 1e-3 * scale[i] * wobble);
            }
        }
        series
    };
    let clean = check(&series_at([0.8; 4]), 10_000, &baseline, &cfg);
    assert_eq!(clean.len(), 4);
    assert!(
        clean.iter().all(|v| !v.regressed),
        "clean series flagged: {clean:?}"
    );

    // The same series with settle at 2×: only settle trips the threshold
    // (baseline p99 × 1.25 < observed CI low).
    let slowed = check(&series_at([0.8, 0.8, 0.8, 2.0]), 10_000, &baseline, &cfg);
    for v in &slowed {
        assert_eq!(v.regressed, v.phase == "settle", "{v:?}");
    }

    // No baseline row at this n: the sentinel stays silent rather than
    // comparing against the wrong population size.
    assert!(check(&series_at([2.0; 4]), 31_337, &baseline, &cfg).is_empty());
}

/// The full sentinel acceptance loop against live rounds: profile real
/// sharded rounds at n = 10⁴ and check the unmodified run is not flagged
/// against the checked-in seed baseline. Timing-sensitive; run with
/// `--ignored` on a quiet machine.
#[test]
#[ignore = "timing-dependent acceptance run at n = 10^4"]
fn sentinel_accepts_live_rounds_against_seed_baseline() {
    let mut profiler = RoundProfiler::new();
    drive_rounds(10_000, 8, 4, &mut profiler);
    let baseline = Baseline::parse(BASELINE_LOG, "seed").unwrap();
    let verdicts = check(
        profiler.series(),
        10_000,
        &baseline,
        &SentinelConfig::default(),
    );
    assert_eq!(verdicts.len(), 4);
    assert!(
        verdicts.iter().all(|v| !v.regressed),
        "unmodified run flagged: {verdicts:?}"
    );
}

#[test]
fn sketch_tolerance_bounds_hold_on_profiled_phase_reads() {
    // Drive enough profiled rounds that the per-phase sketches hold a real
    // population, then check each read honours the documented relative
    // tolerance against the exact mean/extrema bracket.
    let mut profiler = RoundProfiler::new();
    drive_rounds(48, 3, 6, &mut profiler);
    let rollup = profiler.rollup();
    for phase in 0..4 {
        let fleet = rollup.fleet_phase(phase);
        assert!(!fleet.is_empty());
        for q in [0.25, 0.5, 0.9, 0.99] {
            let read = fleet.quantile(q);
            assert!(
                read >= fleet.min() / (1.0 + SKETCH_RTOL)
                    && read <= fleet.max() * (1.0 + SKETCH_RTOL),
                "phase {phase} q{q} read {read} outside tolerance of [{}, {}]",
                fleet.min(),
                fleet.max()
            );
        }
    }
}
