//! End-to-end reproduction of every numeric claim in the paper's prose,
//! through the public facade (`lbmv`).

use lbmv::core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
use lbmv::core::{optimal_latency_linear, pr_allocate, total_latency_linear};
use lbmv::mechanism::{run_mechanism, CompensationBonusMechanism, Profile};

fn run(bid_factor: f64, exec_factor: f64) -> lbmv::mechanism::MechanismOutcome {
    let sys = paper_system();
    let profile =
        Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, bid_factor, exec_factor).unwrap();
    run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap()
}

#[test]
fn theorem_2_1_closed_form_on_the_paper_system() {
    // L* = R²/Σ(1/t) = 400/5.1 = 78.43 (the paper's True1 value).
    let sys = paper_system();
    let l = optimal_latency_linear(&sys.true_values(), PAPER_ARRIVAL_RATE).unwrap();
    assert!((l - 78.431_372_549_019_6).abs() < 1e-9);

    // And the PR allocation achieves it.
    let alloc = pr_allocate(&sys.true_values(), PAPER_ARRIVAL_RATE).unwrap();
    let direct = total_latency_linear(&alloc, &sys.true_values()).unwrap();
    assert!((direct - l).abs() < 1e-9);
}

#[test]
fn pr_allocation_is_proportional_to_processing_rates() {
    let sys = paper_system();
    let alloc = pr_allocate(&sys.true_values(), PAPER_ARRIVAL_RATE).unwrap();
    // C1 (t=1) gets 10x the load of C11 (t=10).
    assert!((alloc.rate(0) / alloc.rate(10) - 10.0).abs() < 1e-9);
    // x1 = (1/1)/5.1 * 20 = 3.9216.
    assert!((alloc.rate(0) - 20.0 / 5.1).abs() < 1e-9);
}

#[test]
fn true2_increases_latency_as_reported() {
    // Paper prose: "C1 execution is slower increasing the total latency by
    // 17%". With the recovered 2x multiplier the exact figure is +19.6%;
    // the discrepancy is documented in EXPERIMENTS.md.
    let out = run(1.0, 2.0);
    let inc = out.total_latency / 78.431_372_549 - 1.0;
    assert!((inc - 0.196).abs() < 0.002, "increase {inc}");
}

#[test]
fn low1_increases_latency_by_11_percent() {
    let out = run(0.5, 1.0);
    let inc = out.total_latency / 78.431_372_549 - 1.0;
    assert!((inc - 0.110).abs() < 0.002, "increase {inc}");
}

#[test]
fn low2_increases_latency_by_66_percent() {
    let out = run(0.5, 2.0);
    let inc = out.total_latency / 78.431_372_549 - 1.0;
    assert!((inc - 0.659).abs() < 0.003, "increase {inc}");
}

#[test]
fn high1_utility_drop_is_62_percent() {
    let truthful = run(1.0, 1.0).utilities[0];
    let high1 = run(3.0, 3.0).utilities[0];
    let drop = 1.0 - high1 / truthful;
    assert!((drop - 0.616).abs() < 0.01, "drop {drop}");
}

#[test]
fn low1_utility_drop_is_45_percent() {
    let truthful = run(1.0, 1.0).utilities[0];
    let low1 = run(0.5, 1.0).utilities[0];
    let drop = 1.0 - low1 / truthful;
    assert!((drop - 0.452).abs() < 0.01, "drop {drop}");
}

#[test]
fn low2_fines_c1() {
    // "the payment and utility of C1 are negative … the absolute value of
    // the bonus is greater than the compensation".
    let sys = paper_system();
    let profile = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, 0.5, 2.0).unwrap();
    let mech = CompensationBonusMechanism::paper();
    let out = run_mechanism(&mech, &profile).unwrap();
    assert!(out.payments[0] < 0.0);
    assert!(out.utilities[0] < 0.0);
    let breakdown = mech
        .payment_breakdown(
            profile.bids(),
            &out.allocation,
            profile.exec_values(),
            PAPER_ARRIVAL_RATE,
        )
        .unwrap();
    assert!(breakdown[0].bonus < 0.0);
    assert!(breakdown[0].bonus.abs() > breakdown[0].compensation);
}

#[test]
fn high1_helps_other_computers_low1_hurts_them() {
    // Paper: in High1 "the other computers obtain higher utilities"; in Low1
    // "the other computers obtain lower utilities" (relative to True1).
    let true1 = run(1.0, 1.0);
    let high1 = run(3.0, 3.0);
    let low1 = run(0.5, 1.0);
    for j in 1..16 {
        assert!(high1.utilities[j] > true1.utilities[j], "High1 C{}", j + 1);
        assert!(low1.utilities[j] < true1.utilities[j], "Low1 C{}", j + 1);
    }
}

#[test]
fn total_payment_is_at_most_2_5_times_total_valuation_truthfully() {
    let out = run(1.0, 1.0);
    let ratio = out.total_payment() / out.total_valuation_abs();
    assert!(ratio > 1.0 && ratio <= 2.5, "ratio {ratio}");
}
