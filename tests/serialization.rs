//! Cross-crate serialization: every serde-derived domain type must survive
//! the protocol's binary wire format, so settlement records, profiles and
//! full outcomes can be shipped or persisted without a second codec.

use lbmv::core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
use lbmv::core::{Allocation, System};
use lbmv::mechanism::{run_mechanism, CompensationBonusMechanism, MechanismOutcome, Profile};
use lbmv::proto::{decode, encode};
use lbmv::sim::driver::SimulationConfig;

fn roundtrip<T>(value: &T)
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de> + PartialEq + std::fmt::Debug,
{
    let bytes = encode(value).expect("encode");
    let back: T = decode(&bytes).expect("decode");
    assert_eq!(&back, value);
}

#[test]
fn system_roundtrips() {
    roundtrip(&paper_system());
    roundtrip(&System::from_true_values(&[0.25]).unwrap());
}

#[test]
fn profile_roundtrips() {
    let profile =
        Profile::with_deviation(&paper_system(), PAPER_ARRIVAL_RATE, 0, 3.0, 2.0).unwrap();
    roundtrip(&profile);
}

#[test]
fn allocation_roundtrips() {
    let alloc = Allocation::new(vec![1.5, 0.5], 2.0).unwrap();
    roundtrip(&alloc);
}

#[test]
fn mechanism_outcome_roundtrips() {
    let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
    let outcome: MechanismOutcome =
        run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
    roundtrip(&outcome);
}

#[test]
fn simulation_config_roundtrips() {
    roundtrip(&SimulationConfig::default());
    let bursty = SimulationConfig {
        workload: lbmv::sim::workload::WorkloadModel::Bursty {
            burstiness: 4.0,
            dwell_means: [30.0, 5.0],
        },
        warmup: 100.0,
        ..SimulationConfig::default()
    };
    roundtrip(&bursty);
}

#[test]
fn decoded_outcome_preserves_accounting_identities() {
    let profile =
        Profile::with_deviation(&paper_system(), PAPER_ARRIVAL_RATE, 0, 0.5, 2.0).unwrap();
    let outcome = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
    let bytes = encode(&outcome).unwrap();
    let back: MechanismOutcome = decode(&bytes).unwrap();
    // The identities survive serialization bit-exactly.
    for i in 0..back.payments.len() {
        assert_eq!(
            back.utilities[i],
            outcome.payments[i] + outcome.valuations[i]
        );
    }
    assert_eq!(back.total_latency, outcome.total_latency);
}
