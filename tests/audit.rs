//! Verification-observability integration: the `lb-audit` stack against a
//! real protocol session.
//!
//! * **Inertness** — attaching the [`InvariantMonitor`] must not change the
//!   session outcome (payments, journal bytes) *or* the underlying
//!   telemetry stream: the forwarded events are exactly the unmonitored
//!   events plus `audit.*` re-emissions.
//! * **Clean rounds are clean** — an honest multi-round durable session
//!   produces zero violations and a ledger that verifies intact, one seal
//!   per round.
//! * **Exposition round-trip** — publishing the monitor + ledger verdict
//!   renders valid `/invariants` and `/health` documents carrying the
//!   chain head.

use lbmv::audit::{health_json, invariants_json, publish, verify_ledger};
use lbmv::audit::{InvariantMonitor, MonitorConfig};
use lbmv::mechanism::CompensationBonusMechanism;
use lbmv::proto::{
    run_chaos_session_durable, ChaosConfig, ChaosSessionConfig, CrashPlan, NodeSpec, ProtocolConfig,
};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;
use lbmv::telemetry::{
    noop_collector, to_jsonl, Collector, Exposition, Json, RingCollector, Subsystem,
};
use std::sync::Arc;

const RATE: f64 = 9.0;
const TRUES: [f64; 3] = [1.0, 1.5, 2.0];
const ROUNDS: usize = 3;

fn sim() -> SimulationConfig {
    SimulationConfig {
        horizon: 50.0,
        seed: 42,
        model: ServiceModel::StationaryDeterministic,
        workload: Default::default(),
        warmup: 0.0,
        estimator: Default::default(),
    }
}

fn protocol_config() -> ProtocolConfig {
    ProtocolConfig {
        total_rate: RATE,
        link_latency: 0.001,
        simulation: sim(),
    }
}

fn specs() -> Vec<NodeSpec> {
    TRUES.iter().map(|&t| NodeSpec::truthful(t)).collect()
}

fn run_session(collector: Arc<dyn Collector>) -> lbmv::proto::DurableSessionReport {
    run_chaos_session_durable(
        &CompensationBonusMechanism::paper(),
        &protocol_config(),
        &ChaosSessionConfig::new(ROUNDS, ChaosConfig::reliable(2)),
        |_, _| specs(),
        &CrashPlan::none(),
        Vec::new(),
        collector,
    )
    .unwrap()
}

#[test]
fn monitor_is_inert_on_outcome_and_stream() {
    // Arm 1: no monitor at all.
    let detached = run_session(noop_collector());
    let plain_ring = Arc::new(RingCollector::new(1 << 16));
    let plain = run_session(plain_ring.clone() as Arc<dyn Collector>);

    // Arm 2: monitor interposed between the session and the same ring.
    let ring = Arc::new(RingCollector::new(1 << 16));
    let monitor = Arc::new(InvariantMonitor::new(
        ring.clone() as Arc<dyn Collector>,
        MonitorConfig::default(),
    ));
    let monitored = run_session(monitor.clone() as Arc<dyn Collector>);

    // Outcome is bit-identical whether the monitor observes or not.
    for i in 0..TRUES.len() {
        assert_eq!(
            monitored.cumulative_payments[i].to_bits(),
            detached.cumulative_payments[i].to_bits(),
            "machine {i}"
        );
        assert_eq!(
            monitored.cumulative_payments[i].to_bits(),
            plain.cumulative_payments[i].to_bits(),
            "machine {i}"
        );
    }
    assert_eq!(monitored.journal_bytes, detached.journal_bytes);
    assert_eq!(monitored.journal_bytes, plain.journal_bytes);

    // Stream is additive-only: events minus `audit.*` re-emissions are
    // exactly the unmonitored stream (JSONL form, so bit-for-bit).
    let forwarded: Vec<_> = ring
        .snapshot()
        .into_iter()
        .filter(|e| e.cat != Subsystem::Audit)
        .collect();
    assert_eq!(to_jsonl(&forwarded), to_jsonl(&plain_ring.snapshot()));
    // And the monitor really did watch: one report per settled round.
    assert_eq!(monitor.stats().rounds as usize, ROUNDS);
}

#[test]
fn honest_session_verifies_clean_end_to_end() {
    let monitor = Arc::new(InvariantMonitor::new(
        noop_collector(),
        MonitorConfig::default(),
    ));
    let report = run_session(monitor.clone() as Arc<dyn Collector>);

    let stats = monitor.stats();
    assert_eq!(stats.rounds as usize, ROUNDS);
    assert_eq!(stats.total_violations(), 0, "{stats:?}");
    assert!(monitor.latest_report().is_some_and(|r| r.ok()));
    // Truthful consistent rounds sit on a strictly positive margin.
    assert!(stats.min_margin.is_some_and(|m| m > 0.0), "{stats:?}");

    let verdict = verify_ledger(&report.journal_bytes);
    assert!(verdict.is_intact(), "{verdict:?}");
    assert_eq!(verdict.seals, ROUNDS, "one seal per round");
    assert_eq!(verdict.undecodable, 0);
    assert_eq!(verdict.truncated_tail, 0);

    // A tampered byte (CRC left stale) still fails verification, through
    // the frame checksum rather than the chain.
    let mut bytes = report.journal_bytes.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let tampered = verify_ledger(&bytes);
    assert!(
        !tampered.is_intact() || tampered.records < verdict.records,
        "{tampered:?}"
    );
}

#[test]
fn exposition_documents_round_trip() {
    let monitor = Arc::new(InvariantMonitor::new(
        noop_collector(),
        MonitorConfig::default(),
    ));
    let report = run_session(monitor.clone() as Arc<dyn Collector>);
    let verdict = verify_ledger(&report.journal_bytes);

    let exposition = Exposition::new();
    publish(&exposition, &monitor, Some(&verdict));

    let health = Json::parse(exposition.health_text().trim()).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    let ledger = health.get("ledger").unwrap();
    assert_eq!(ledger.get("intact").unwrap().as_bool(), Some(true));
    let head = ledger.get("head").unwrap().as_str().unwrap().to_string();
    assert!(head.starts_with("0x") && head.len() == 18, "{head}");
    assert_eq!(head, format!("{:#018x}", verdict.head));

    let invariants = Json::parse(exposition.invariants_text().trim()).unwrap();
    assert_eq!(
        invariants.get("rounds").unwrap().as_u64(),
        Some(ROUNDS as u64)
    );
    let latest = invariants.get("latest").unwrap();
    assert_eq!(latest.get("consistent").unwrap().as_bool(), Some(true));

    // The pure builders agree with what was published.
    let stats = monitor.stats();
    assert_eq!(
        invariants_json(&stats, monitor.latest_report().as_ref()).render() + "\n",
        exposition.invariants_text()
    );
    assert_eq!(
        health_json(&stats, Some(&verdict)).render() + "\n",
        exposition.health_text()
    );
}
