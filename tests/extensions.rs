//! Integration tests for the beyond-paper extensions: learning agents over
//! real protocol sessions, fault tolerance, payment auditing and the
//! generalized M/M/1 mechanism.

use lbmv::agents::adaptive::EpsilonGreedyAgent;
use lbmv::agents::game::consistent_strategy_menu;
use lbmv::core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
use lbmv::mechanism::{
    run_mechanism, CompensationBonusMechanism, GeneralizedCompensationBonus, LinearFamily,
    Mm1Family, Profile,
};
use lbmv::proto::audit::{audit_settlement, SettlementRecord};
use lbmv::proto::faults::{run_protocol_round_with_faults, FaultPlan};
use lbmv::proto::{run_session, NodeSpec, ProtocolConfig};
use lbmv::sim::driver::SimulationConfig;
use lbmv::sim::server::ServiceModel;
use lbmv::stats::Xoshiro256StarStar;
use std::cell::RefCell;

fn config() -> ProtocolConfig {
    ProtocolConfig {
        total_rate: PAPER_ARRIVAL_RATE,
        link_latency: 0.001,
        simulation: SimulationConfig {
            horizon: 150.0,
            seed: 31,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: Default::default(),
        },
    }
}

#[test]
fn learners_converge_to_truth_through_the_real_protocol() {
    let trues = [1.0, 2.0, 5.0, 10.0];
    let menu = consistent_strategy_menu();
    let mechanism = CompensationBonusMechanism::paper();
    let base = Xoshiro256StarStar::seed_from_u64(123);
    let learners: RefCell<Vec<EpsilonGreedyAgent>> = RefCell::new(
        (0..trues.len())
            .map(|i| EpsilonGreedyAgent::new(menu.clone(), 0.1, base.stream(i as u64)))
            .collect(),
    );
    let arms: RefCell<Vec<usize>> = RefCell::new(vec![0; trues.len()]);

    let mut cfg = config();
    cfg.total_rate = 10.0;
    cfg.simulation.horizon = 60.0;
    let _report = run_session(&mechanism, &cfg, 1500, |_, prev| {
        let mut learners = learners.borrow_mut();
        let mut arms = arms.borrow_mut();
        if let Some(outcome) = prev {
            for (i, learner) in learners.iter_mut().enumerate() {
                learner.observe(arms[i], outcome.utilities[i]);
            }
        }
        trues
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let arm = learners[i].choose();
                arms[i] = arm;
                let s = menu[arm];
                NodeSpec::strategic(t, t * s.bid_factor, t * s.exec_factor.max(1.0))
            })
            .collect()
    })
    .unwrap();

    for (i, learner) in learners.borrow().iter().enumerate() {
        assert_eq!(
            learner.best_arm(),
            0,
            "machine {i} did not learn truthfulness"
        );
    }
}

#[test]
fn fault_then_audit_pipeline() {
    // Round with faults, then the settlement audit passes end-to-end.
    let mechanism = CompensationBonusMechanism::paper();
    let specs: Vec<NodeSpec> = paper_true_values()
        .iter()
        .map(|&t| NodeSpec::truthful(t))
        .collect();
    let faults = FaultPlan {
        lose_acks_from: vec![2],
        ..FaultPlan::none()
    };
    let outcome = run_protocol_round_with_faults(&mechanism, &specs, &config(), &faults).unwrap();

    let record = SettlementRecord {
        bids: specs.iter().map(|s| s.bid).collect(),
        estimated_exec_values: outcome.estimated_exec_values.clone(),
        total_rate: PAPER_ARRIVAL_RATE,
        claimed_payments: outcome.payments.clone(),
    };
    let report = audit_settlement(&mechanism, &record, 1e-9).unwrap();
    assert!(report.all_verified());
}

#[test]
fn excluded_machine_bonus_identity() {
    // The fault path's economics: excluding machine i leaves the others
    // paid exactly as in the (n-1)-machine system, whose latency is the
    // L_{-i} the bonus formula uses — the two code paths must agree.
    let mechanism = CompensationBonusMechanism::paper();
    let trues = paper_true_values();
    let specs: Vec<NodeSpec> = trues.iter().map(|&t| NodeSpec::truthful(t)).collect();
    let faults = FaultPlan {
        lose_bids_from: vec![0],
        ..FaultPlan::none()
    };
    let outcome = run_protocol_round_with_faults(&mechanism, &specs, &config(), &faults).unwrap();

    let survivors = lbmv::core::System::from_true_values(&trues[1..]).unwrap();
    let direct = run_mechanism(
        &mechanism,
        &Profile::truthful(&survivors, PAPER_ARRIVAL_RATE).unwrap(),
    )
    .unwrap();
    let realised: f64 = outcome
        .rates
        .iter()
        .zip(&outcome.estimated_exec_values)
        .map(|(&x, &e)| e * x * x)
        .sum();
    assert!((realised - direct.total_latency).abs() < 1e-6);
    // And that latency is exactly L_{-C1} of the full system.
    let l_minus_1 =
        lbmv::core::allocation::optimal_latency_excluding(&trues, 0, PAPER_ARRIVAL_RATE).unwrap();
    assert!((realised - l_minus_1).abs() < 1e-6);
}

#[test]
fn generalized_linear_equals_paper_mechanism_end_to_end() {
    let gen = GeneralizedCompensationBonus::new(LinearFamily);
    let cb = CompensationBonusMechanism::paper();
    let sys = lbmv::core::scenario::paper_system();
    for (bf, ef) in [(1.0, 1.0), (0.5, 2.0)] {
        let profile = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, bf, ef).unwrap();
        let a = run_mechanism(&gen, &profile).unwrap();
        let b = run_mechanism(&cb, &profile).unwrap();
        for i in 0..16 {
            assert!((a.utilities[i] - b.utilities[i]).abs() < 1e-5 * b.utilities[i].abs().max(1.0));
        }
    }
}

#[test]
fn mm1_mechanism_keeps_voluntary_participation() {
    let gen = GeneralizedCompensationBonus::new(Mm1Family);
    // Capacities mu = [8, 5, 4, 3]; leave-one-out minimum is 12 > rate.
    let sys = lbmv::core::System::from_true_values(&[0.125, 0.2, 0.25, 1.0 / 3.0]).unwrap();
    let profile = Profile::truthful(&sys, 8.0).unwrap();
    let out = run_mechanism(&gen, &profile).unwrap();
    for (i, u) in out.utilities.iter().enumerate() {
        assert!(*u >= -1e-9, "agent {i} lost: {u}");
    }
}
