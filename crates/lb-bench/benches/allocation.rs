//! Allocation benchmarks: the PR closed form vs the generic convex solver
//! (the ablation on the allocation design choice), and scaling in `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_core::{pr_allocate, solve_convex, ConvexSolverOptions, Linear, Mm1};
use std::hint::black_box;

fn system_values(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + (i % 7) as f64).collect()
}

fn bench_pr_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pr_allocate");
    for n in [16usize, 64, 256, 1024, 4096] {
        let values = system_values(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, values| {
            b.iter(|| pr_allocate(black_box(values), black_box(20.0)).unwrap());
        });
    }
    group.finish();
}

fn bench_convex_vs_closed_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation_ablation");
    let values = system_values(64);
    group.bench_function("closed_form_64", |b| {
        b.iter(|| pr_allocate(black_box(&values), 20.0).unwrap());
    });
    let fns: Vec<Linear> = values.iter().map(|&t| Linear::new(t)).collect();
    let refs: Vec<&Linear> = fns.iter().collect();
    group.bench_function("convex_solver_64", |b| {
        b.iter(|| solve_convex(black_box(&refs), 20.0, ConvexSolverOptions::default()).unwrap());
    });
    group.finish();
}

fn bench_mm1_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("convex_mm1");
    for n in [16usize, 256] {
        let fns: Vec<Mm1> = (0..n).map(|i| Mm1::new(2.0 + (i % 5) as f64)).collect();
        let refs: Vec<&Mm1> = fns.iter().collect();
        let rate = 0.5 * fns.iter().map(|f| f.mu).sum::<f64>();
        group.bench_with_input(BenchmarkId::from_parameter(n), &refs, |b, refs| {
            b.iter(|| solve_convex(black_box(refs), rate, ConvexSolverOptions::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pr_scaling,
    bench_convex_vs_closed_form,
    bench_mm1_solver
);
criterion_main!(benches);
