//! Figure-regeneration benchmarks: one benchmark per paper table/figure,
//! measuring the cost of regenerating exactly the series the paper reports.
//! (The `experiments` binary prints them; these benches time them.)

use criterion::{criterion_group, criterion_main, Criterion};
use lb_bench::figures;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("regen_tables");
    group.bench_function("table1", |b| {
        b.iter(|| black_box(figures::table1().render()))
    });
    group.bench_function("table2", |b| {
        b.iter(|| black_box(figures::table2().render()))
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("regen_figures");
    group.bench_function("fig1_degradation", |b| {
        b.iter(|| black_box(figures::figure1().unwrap().render()));
    });
    group.bench_function("fig2_c1_payment_utility", |b| {
        b.iter(|| black_box(figures::figure2().unwrap().render()));
    });
    group.bench_function("fig3_per_computer_true1", |b| {
        b.iter(|| black_box(figures::per_computer_figure("True1").unwrap().render()));
    });
    group.bench_function("fig4_per_computer_high1", |b| {
        b.iter(|| black_box(figures::per_computer_figure("High1").unwrap().render()));
    });
    group.bench_function("fig5_per_computer_low1", |b| {
        b.iter(|| black_box(figures::per_computer_figure("Low1").unwrap().render()));
    });
    group.bench_function("fig6_payment_structure", |b| {
        b.iter(|| {
            let (a, bb) = figures::figure6().unwrap();
            black_box((a.render(), bb.render()))
        });
    });
    group.finish();
}

fn bench_beyond_paper(c: &mut Criterion) {
    let mut group = c.benchmark_group("regen_beyond_paper");
    group.sample_size(10);
    group.bench_function("message_counts", |b| {
        b.iter(|| black_box(figures::message_counts().unwrap().render()));
    });
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_beyond_paper);
criterion_main!(benches);
