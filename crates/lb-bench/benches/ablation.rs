//! Ablation benchmarks quantifying the design choices DESIGN.md calls out:
//!
//! 1. Verification on/off — cost and payment-response of the verified
//!    mechanism against the bid-only baseline.
//! 2. Estimator sample budget — verification accuracy vs horizon cost.
//! 3. Archer–Tardos closed form vs quadrature payment evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_bench::paper::{experiment_profile, paper_experiments};
use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
use lb_mechanism::{
    run_mechanism, ArcherTardosMechanism, CompensationBonusMechanism, Profile,
    UnverifiedCompensationBonus,
};
use lb_sim::driver::{verified_round, SimulationConfig};
use lb_sim::estimator::EstimatorConfig;
use lb_sim::server::ServiceModel;
use std::hint::black_box;

fn bench_verification_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_verification");
    let verified = CompensationBonusMechanism::paper();
    let unverified = UnverifiedCompensationBonus::paper();
    let profiles: Vec<Profile> = paper_experiments()
        .iter()
        .map(|s| experiment_profile(s).unwrap())
        .collect();
    group.bench_function("verified_all_experiments", |b| {
        b.iter(|| {
            for p in &profiles {
                black_box(run_mechanism(&verified, p).unwrap());
            }
        });
    });
    group.bench_function("unverified_all_experiments", |b| {
        b.iter(|| {
            for p in &profiles {
                black_box(run_mechanism(&unverified, p).unwrap());
            }
        });
    });
    group.finish();
}

fn bench_estimator_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_estimator_budget");
    group.sample_size(10);
    let mech = CompensationBonusMechanism::paper();
    let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
    for samples in [50usize, 500, 5000] {
        let config = SimulationConfig {
            horizon: 2_000.0,
            seed: 2,
            model: ServiceModel::StationaryExponential,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig {
                max_samples: Some(samples),
                noise_cv: 0.0,
            },
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(samples),
            &config,
            |b, config| {
                b.iter(|| black_box(verified_round(&mech, &profile, config).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_archer_tardos_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_at_payment_path");
    let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
    let cf = ArcherTardosMechanism::closed_form();
    let q = ArcherTardosMechanism::quadrature();
    group.bench_function("closed_form", |b| {
        b.iter(|| black_box(run_mechanism(&cf, &profile).unwrap()));
    });
    group.bench_function("quadrature", |b| {
        b.iter(|| black_box(run_mechanism(&q, &profile).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_verification_ablation,
    bench_estimator_budget,
    bench_archer_tardos_evaluation
);
criterion_main!(benches);
