//! Simulation benchmarks: discrete-event round cost per service model,
//! horizon scaling and parallel replication speedup surface.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
use lb_sim::driver::{simulate_round, SimulationConfig};
use lb_sim::estimator::EstimatorConfig;
use lb_sim::replication::replicate;
use lb_sim::server::ServiceModel;
use std::hint::black_box;

fn config(model: ServiceModel, horizon: f64) -> SimulationConfig {
    SimulationConfig {
        horizon,
        seed: 1,
        model,
        workload: Default::default(),
        warmup: 0.0,
        estimator: EstimatorConfig::default(),
    }
}

fn bench_service_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_round_models");
    let trues = paper_true_values();
    for (name, model) in [
        ("deterministic", ServiceModel::StationaryDeterministic),
        ("exponential", ServiceModel::StationaryExponential),
        ("mm1_queue", ServiceModel::Mm1Queue),
    ] {
        let cfg = config(model, 500.0);
        group.bench_function(name, |b| {
            b.iter(|| {
                simulate_round(
                    black_box(&trues),
                    black_box(&trues),
                    PAPER_ARRIVAL_RATE,
                    &cfg,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_horizon_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_round_horizon");
    group.sample_size(20);
    let trues = paper_true_values();
    for horizon in [250.0f64, 1_000.0, 4_000.0] {
        let cfg = config(ServiceModel::StationaryExponential, horizon);
        group.bench_with_input(
            BenchmarkId::from_parameter(horizon as u64),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    simulate_round(
                        black_box(&trues),
                        black_box(&trues),
                        PAPER_ARRIVAL_RATE,
                        cfg,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_parallel_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication_threads");
    group.sample_size(10);
    let trues = paper_true_values();
    let cfg = config(ServiceModel::StationaryExponential, 500.0);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    replicate(
                        black_box(&trues),
                        &trues,
                        PAPER_ARRIVAL_RATE,
                        &cfg,
                        16,
                        threads,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_service_models,
    bench_horizon_scaling,
    bench_parallel_replication
);
criterion_main!(benches);
