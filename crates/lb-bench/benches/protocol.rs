//! Protocol benchmarks: codec throughput and full round cost (deterministic
//! and threaded runtimes) across system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_mechanism::CompensationBonusMechanism;
use lb_proto::codec::{decode, encode};
use lb_proto::message::{Message, RoundId};
use lb_proto::node::NodeSpec;
use lb_proto::runtime::{run_protocol_round, ProtocolConfig};
use lb_proto::threaded::run_protocol_round_threaded;
use lb_sim::driver::SimulationConfig;
use lb_sim::estimator::EstimatorConfig;
use lb_sim::server::ServiceModel;
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let msg = Message::Bid {
        round: RoundId(7),
        machine: 3,
        value: 2.5,
    };
    let bytes = encode(&msg).unwrap();
    group.bench_function("encode_bid", |b| {
        b.iter(|| encode(black_box(&msg)).unwrap());
    });
    group.bench_function("decode_bid", |b| {
        b.iter(|| decode::<Message>(black_box(&bytes)).unwrap());
    });
    group.finish();
}

fn proto_config() -> ProtocolConfig {
    ProtocolConfig {
        total_rate: 20.0,
        link_latency: 0.0005,
        simulation: SimulationConfig {
            horizon: 100.0,
            seed: 5,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        },
    }
}

fn specs(n: usize) -> Vec<NodeSpec> {
    (0..n)
        .map(|i| NodeSpec::truthful(1.0 + (i % 7) as f64))
        .collect()
}

fn bench_round_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_round");
    group.sample_size(20);
    let mech = CompensationBonusMechanism::paper();
    for n in [16usize, 64, 256] {
        let s = specs(n);
        group.bench_with_input(BenchmarkId::new("deterministic", n), &s, |b, s| {
            b.iter(|| run_protocol_round(black_box(&mech), s, &proto_config()).unwrap());
        });
    }
    group.finish();
}

fn bench_threaded_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_round_threaded");
    group.sample_size(10);
    let mech = CompensationBonusMechanism::paper();
    let s = specs(16);
    group.bench_function("threaded_16", |b| {
        b.iter(|| run_protocol_round_threaded(black_box(&mech), &s, &proto_config()).unwrap());
    });
    group.finish();
}

/// Tracing overhead: the same deterministic round untraced, fully traced
/// (wire trailers + span recording into a ring), and head-sampled away
/// (collector attached but every round rejected, the production idle state).
/// The untraced/traced ratio is the number the ≤10% overhead budget in
/// DESIGN.md §12 is judged against.
fn bench_tracing_overhead(c: &mut Criterion) {
    use lb_proto::runtime::run_protocol_round_observed;
    use lb_telemetry::{noop_collector, RingCollector};
    use std::sync::Arc;
    let mut group = c.benchmark_group("protocol_tracing");
    group.sample_size(20);
    let mech = CompensationBonusMechanism::paper();
    for n in [16usize, 64] {
        let s = specs(n);
        group.bench_with_input(BenchmarkId::new("untraced", n), &s, |b, s| {
            b.iter(|| run_protocol_round(black_box(&mech), s, &proto_config()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("traced", n), &s, |b, s| {
            b.iter(|| {
                let ring = Arc::new(RingCollector::new(16_384));
                run_protocol_round_observed(black_box(&mech), s, &proto_config(), ring).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("noop_collector", n), &s, |b, s| {
            b.iter(|| {
                run_protocol_round_observed(black_box(&mech), s, &proto_config(), noop_collector())
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_faulty_round(c: &mut Criterion) {
    use lb_proto::faults::{run_protocol_round_with_faults, FaultPlan};
    let mut group = c.benchmark_group("protocol_faults");
    group.sample_size(20);
    let mech = CompensationBonusMechanism::paper();
    let s = specs(16);
    let plan = FaultPlan {
        lose_bids_from: vec![0],
        lose_acks_from: vec![5],
        ..FaultPlan::none()
    };
    group.bench_function("lossy_round_16", |b| {
        b.iter(|| {
            run_protocol_round_with_faults(black_box(&mech), &s, &proto_config(), &plan).unwrap()
        });
    });
    group.finish();
}

fn bench_audit(c: &mut Criterion) {
    use lb_proto::audit::{audit_settlement, SettlementRecord};
    let mech = CompensationBonusMechanism::paper();
    let s = specs(16);
    let outcome = run_protocol_round(&mech, &s, &proto_config()).unwrap();
    let record = SettlementRecord {
        bids: s.iter().map(|n| n.bid).collect(),
        estimated_exec_values: outcome.estimated_exec_values.clone(),
        total_rate: 20.0,
        claimed_payments: outcome.payments,
    };
    c.bench_function("audit_settlement_16", |b| {
        b.iter(|| audit_settlement(black_box(&mech), &record, 1e-9).unwrap());
    });
}

fn bench_session(c: &mut Criterion) {
    use lb_proto::session::run_session;
    let mut group = c.benchmark_group("protocol_session");
    group.sample_size(10);
    let mech = CompensationBonusMechanism::paper();
    let s = specs(16);
    group.bench_function("ten_rounds_16", |b| {
        b.iter(|| run_session(black_box(&mech), &proto_config(), 10, |_, _| s.clone()).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_round_scaling,
    bench_threaded_round,
    bench_tracing_overhead,
    bench_faulty_round,
    bench_audit,
    bench_session
);
criterion_main!(benches);
