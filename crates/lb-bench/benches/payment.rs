//! `payment_scaling`: the settle-phase payment vector, batch O(n)
//! leave-one-out kernel vs the legacy per-agent O(n²) rebuild.
//!
//! The acceptance bar for the batch kernel: ≥ 50× over legacy at n = 4096.
//! The legacy path is not timed at n = 16384 (a single settle there takes
//! seconds; the `batch/16384` point documents that the O(n) path keeps
//! scaling where the quadratic one has already left the budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_bench::payment_scaling::{legacy_payment_breakdown, workload};
use lb_mechanism::CompensationBonusMechanism;
use std::hint::black_box;
use std::time::Duration;

fn bench_payment_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("payment_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    let mech = CompensationBonusMechanism::paper();
    for n in [64usize, 256, 1024, 4096, 16384] {
        let (values, alloc, r) = workload(n);
        group.bench_with_input(BenchmarkId::new("batch", n), &n, |b, _| {
            b.iter(|| {
                mech.payment_breakdown(black_box(&values), black_box(&alloc), black_box(&values), r)
                    .unwrap()
            });
        });
        if n <= 4096 {
            group.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, _| {
                b.iter(|| {
                    legacy_payment_breakdown(
                        black_box(&mech),
                        black_box(&values),
                        black_box(&alloc),
                        black_box(&values),
                        r,
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_payment_scaling);
criterion_main!(benches);
