//! Mechanism benchmarks: payment computation cost per mechanism and the
//! per-table generators (Figures 1-6 regeneration cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_bench::paper::{paper_experiments, run_experiment};
use lb_core::System;
use lb_mechanism::{
    run_mechanism, ArcherTardosMechanism, CompensationBonusMechanism, Profile,
    UnverifiedCompensationBonus,
};
use std::hint::black_box;

fn profile(n: usize) -> Profile {
    let values: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let sys = System::from_true_values(&values).unwrap();
    Profile::truthful(&sys, 20.0).unwrap()
}

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanism_round");
    let p = profile(16);
    let cb = CompensationBonusMechanism::paper();
    let unv = UnverifiedCompensationBonus::paper();
    let at = ArcherTardosMechanism::closed_form();
    let atq = ArcherTardosMechanism::quadrature();
    group.bench_function("compensation_bonus", |b| {
        b.iter(|| run_mechanism(black_box(&cb), black_box(&p)).unwrap());
    });
    group.bench_function("unverified", |b| {
        b.iter(|| run_mechanism(black_box(&unv), black_box(&p)).unwrap());
    });
    group.bench_function("archer_tardos_closed_form", |b| {
        b.iter(|| run_mechanism(black_box(&at), black_box(&p)).unwrap());
    });
    group.bench_function("archer_tardos_quadrature", |b| {
        b.iter(|| run_mechanism(black_box(&atq), black_box(&p)).unwrap());
    });
    group.finish();
}

fn bench_payment_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("payments_scaling");
    let cb = CompensationBonusMechanism::paper();
    for n in [16usize, 64, 256, 1024] {
        let p = profile(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| run_mechanism(black_box(&cb), black_box(p)).unwrap());
        });
    }
    group.finish();
}

fn bench_figure_regeneration(c: &mut Criterion) {
    // Each paper table/figure regenerates from the eight experiments; this
    // measures the full analytic regeneration cost.
    c.bench_function("regenerate_all_experiments", |b| {
        b.iter(|| {
            for spec in paper_experiments() {
                black_box(run_experiment(&spec).unwrap());
            }
        });
    });
}

criterion_group!(
    benches,
    bench_mechanisms,
    bench_payment_scaling,
    bench_figure_regeneration
);
criterion_main!(benches);
