//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Sec. 4), plus the ablations described in `DESIGN.md`.
//!
//! * [`paper`] — the eight Table 2 experiments and their execution, both
//!   analytically (closed forms) and through the full simulation pipeline.
//! * [`figures`] — data series for Figures 1–6 and the extra analyses
//!   (message counts, ablations).
//! * [`tables`] — fixed-width ASCII table rendering for the `experiments`
//!   binary.
//! * [`bench_log`] — the append-only schema for the checked-in
//!   `BENCH_*.json` artifacts.
//! * [`audit_overhead`] — cost of the streaming invariant monitor
//!   (off / full / sampled) on the settle phase.
//! * [`round_scaling`] — full sharded rounds at 10⁴–10⁶ machines:
//!   rounds/sec and p99 phase latency through the hierarchical
//!   coordinator.
//! * [`profile_overhead`] — cost of the cross-shard telemetry rollup
//!   (off / attached / sampled `lb-prof` profiler) on a full sharded
//!   round.
//! * [`online_scaling`] — the online mechanism's event path: incremental
//!   O(1) harmonic-sum updates vs from-scratch per-event recomputation,
//!   in events/sec over 10⁵-event churn streams.
//!
//! The `experiments` binary prints the same rows/series the paper reports:
//!
//! ```text
//! cargo run -p lb-bench --bin experiments -- all
//! ```

pub mod audit_overhead;
pub mod bench_log;
pub mod chart;
pub mod figures;
pub mod online_scaling;
pub mod paper;
pub mod payment_scaling;
pub mod profile_overhead;
pub mod round_scaling;
pub mod tables;

pub use chart::BarChart;
pub use paper::{paper_experiments, run_experiment, ExperimentResult, ExperimentSpec};
pub use tables::Table;
