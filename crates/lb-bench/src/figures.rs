//! Data series for every figure of the paper plus the beyond-paper analyses.

use crate::paper::{paper_experiments, run_experiment, ExperimentResult};
use crate::tables::{f2, pct, Table};
use lb_core::scenario::{paper_system, paper_true_values, PAPER_ARRIVAL_RATE};
use lb_mechanism::{
    frugality_ratio, run_mechanism, CompensationBonusMechanism, MechanismError, Profile,
    UnverifiedCompensationBonus,
};
use lb_proto::{run_protocol_round, NodeSpec, ProtocolConfig};
use lb_sim::driver::{verified_round, SimulationConfig};
use lb_sim::estimator::EstimatorConfig;
use lb_sim::server::ServiceModel;

/// Runs all eight experiments analytically.
///
/// # Errors
/// Propagates mechanism errors.
pub fn all_experiments() -> Result<Vec<ExperimentResult>, MechanismError> {
    paper_experiments().iter().map(run_experiment).collect()
}

/// Table 1: the system configuration.
#[must_use]
pub fn table1() -> Table {
    let mut t = Table::new(&["Computers", "True value (t)"]);
    t.row(&["C1 - C2".into(), "1.0".into()]);
    t.row(&["C3 - C5".into(), "2.0".into()]);
    t.row(&["C6 - C10".into(), "5.0".into()]);
    t.row(&["C11 - C16".into(), "10.0".into()]);
    t
}

/// Table 2: the experiment taxonomy.
#[must_use]
pub fn table2() -> Table {
    let mut t = Table::new(&["Experiment", "bid b1", "exec t~1", "Characterization"]);
    for e in paper_experiments() {
        t.row(&[
            e.name.into(),
            format!("{} t1", e.bid_factor),
            format!("{} t1", e.exec_factor),
            e.description.into(),
        ]);
    }
    t
}

/// Figure 1: performance degradation — total latency per experiment.
///
/// # Errors
/// Propagates mechanism errors.
pub fn figure1() -> Result<Table, MechanismError> {
    let mut t = Table::new(&["Experiment", "Total latency L", "vs True1"]);
    for r in all_experiments()? {
        t.row(&[r.spec.name.into(), f2(r.total_latency), pct(r.degradation)]);
    }
    Ok(t)
}

/// Figure 2: payment and utility of computer C1 per experiment.
///
/// # Errors
/// Propagates mechanism errors.
pub fn figure2() -> Result<Table, MechanismError> {
    let mut t = Table::new(&["Experiment", "C1 payment", "C1 utility"]);
    for r in all_experiments()? {
        t.row(&[r.spec.name.into(), f2(r.c1_payment()), f2(r.c1_utility())]);
    }
    Ok(t)
}

/// Figures 3–5: per-computer payment and utility for one experiment
/// (`True1`, `High1` or `Low1` in the paper).
///
/// # Errors
/// Propagates mechanism errors; unknown names yield a core error.
pub fn per_computer_figure(experiment: &str) -> Result<Table, MechanismError> {
    let spec = crate::paper::experiment_by_name(experiment).ok_or_else(|| {
        MechanismError::Core(lb_core::CoreError::Infeasible {
            reason: format!("unknown experiment {experiment}"),
        })
    })?;
    let r = run_experiment(&spec)?;
    let mut t = Table::new(&["Computer", "Payment", "Utility"]);
    for i in 0..r.payments.len() {
        t.row(&[format!("C{}", i + 1), f2(r.payments[i]), f2(r.utilities[i])]);
    }
    Ok(t)
}

/// Figure 6: payment structure — total payment vs total valuation for the
/// truthful profile across arrival rates, plus the per-experiment structure.
///
/// # Errors
/// Propagates mechanism errors.
pub fn figure6() -> Result<(Table, Table), MechanismError> {
    let sys = paper_system();
    let mech = CompensationBonusMechanism::paper();
    let mut sweep = Table::new(&["R (jobs/s)", "Total payment", "Total valuation", "Ratio"]);
    for k in 1..=10 {
        let r = 2.0 * f64::from(k);
        let out = run_mechanism(&mech, &Profile::truthful(&sys, r)?)?;
        sweep.row(&[
            f2(r),
            f2(out.total_payment()),
            f2(out.total_valuation_abs()),
            f2(frugality_ratio(&out)),
        ]);
    }
    let mut per_exp = Table::new(&["Experiment", "Total payment", "Total valuation", "Ratio"]);
    for r in all_experiments()? {
        per_exp.row(&[
            r.spec.name.into(),
            f2(r.total_payment),
            f2(r.total_valuation),
            f2(r.frugality),
        ]);
    }
    Ok((sweep, per_exp))
}

/// Beyond-paper: protocol message counts, validating the O(n) claim.
///
/// # Errors
/// Propagates protocol errors.
pub fn message_counts() -> Result<Table, MechanismError> {
    let mech = CompensationBonusMechanism::paper();
    let mut t = Table::new(&["n computers", "Messages", "Messages / n", "Bytes"]);
    for n in [2usize, 4, 8, 16, 32, 64] {
        let specs: Vec<NodeSpec> = (0..n)
            .map(|i| NodeSpec::truthful(1.0 + i as f64 / 4.0))
            .collect();
        let config = ProtocolConfig {
            total_rate: 10.0,
            link_latency: 0.001,
            simulation: SimulationConfig {
                horizon: 50.0,
                seed: 42,
                model: ServiceModel::StationaryDeterministic,
                workload: Default::default(),
                warmup: 0.0,
                estimator: EstimatorConfig::default(),
            },
        };
        let outcome = run_protocol_round(&mech, &specs, &config)?;
        t.row(&[
            n.to_string(),
            outcome.stats.messages.to_string(),
            format!("{:.1}", outcome.stats.messages as f64 / n as f64),
            outcome.stats.bytes.to_string(),
        ]);
    }
    Ok(t)
}

/// Ablation 1: verification on/off — C1's payment across experiments under
/// the verified vs the bid-only mechanism.
///
/// # Errors
/// Propagates mechanism errors.
pub fn ablation_verification() -> Result<Table, MechanismError> {
    let verified = CompensationBonusMechanism::paper();
    let unverified = UnverifiedCompensationBonus::paper();
    let mut t = Table::new(&[
        "Experiment",
        "C1 payment (verified)",
        "C1 payment (unverified)",
        "Verification response",
    ]);
    for spec in paper_experiments() {
        let profile = crate::paper::experiment_profile(&spec)?;
        let v = run_mechanism(&verified, &profile)?.payments[0];
        let u = run_mechanism(&unverified, &profile)?.payments[0];
        t.row(&[spec.name.into(), f2(v), f2(u), f2(v - u)]);
    }
    Ok(t)
}

/// Ablation 2: estimator robustness — C1 payment error vs observation noise
/// and horizon (sample budget), via the full simulation pipeline.
///
/// # Errors
/// Propagates mechanism/simulation errors.
pub fn ablation_estimator() -> Result<Table, MechanismError> {
    let mech = CompensationBonusMechanism::paper();
    let sys = paper_system();
    let profile = Profile::truthful(&sys, PAPER_ARRIVAL_RATE)?;
    let mut t = Table::new(&[
        "Noise cv",
        "Horizon (s)",
        "Max |payment error|",
        "Max |t~ error| (rel)",
    ]);
    for &noise in &[0.0, 0.1, 0.3] {
        for &horizon in &[200.0, 1_000.0, 5_000.0] {
            let config = SimulationConfig {
                horizon,
                seed: 7,
                model: ServiceModel::StationaryExponential,
                workload: Default::default(),
                warmup: 0.0,
                estimator: EstimatorConfig {
                    max_samples: None,
                    noise_cv: noise,
                },
            };
            let round = verified_round(&mech, &profile, &config)?;
            let trues = paper_true_values();
            let est_err = round
                .report
                .estimated_exec_values
                .iter()
                .zip(&trues)
                .map(|(e, t)| (e - t).abs() / t)
                .fold(0.0, f64::max);
            t.row(&[
                format!("{noise:.1}"),
                format!("{horizon:.0}"),
                f2(round.max_payment_error()),
                format!("{est_err:.4}"),
            ]);
        }
    }
    Ok(t)
}

/// Figure 1 as an ASCII bar chart (the paper's presentation).
///
/// # Errors
/// Propagates mechanism errors.
pub fn figure1_chart() -> Result<crate::chart::BarChart, MechanismError> {
    let mut c =
        crate::chart::BarChart::new("Figure 1: total latency per experiment (R = 20 jobs/s)", 48);
    for r in all_experiments()? {
        c.bar(r.spec.name, r.total_latency);
    }
    Ok(c)
}

/// Figure 2 as paired ASCII bar charts (payment and utility of C1).
///
/// # Errors
/// Propagates mechanism errors.
pub fn figure2_chart() -> Result<(crate::chart::BarChart, crate::chart::BarChart), MechanismError> {
    let mut payment = crate::chart::BarChart::new("Figure 2a: payment of C1", 48);
    let mut utility = crate::chart::BarChart::new("Figure 2b: utility of C1", 48);
    for r in all_experiments()? {
        payment.bar(r.spec.name, r.c1_payment());
        utility.bar(r.spec.name, r.c1_utility());
    }
    Ok((payment, utility))
}

/// Beyond-paper: fault-tolerant rounds — what each fault costs.
///
/// # Errors
/// Propagates protocol errors.
pub fn fault_tolerance() -> Result<Table, MechanismError> {
    use lb_proto::faults::{run_protocol_round_with_faults, FaultPlan};
    let mech = CompensationBonusMechanism::paper();
    let specs: Vec<NodeSpec> = paper_true_values()
        .iter()
        .map(|&t| NodeSpec::truthful(t))
        .collect();
    let config = ProtocolConfig {
        total_rate: PAPER_ARRIVAL_RATE,
        link_latency: 0.001,
        simulation: SimulationConfig {
            horizon: 300.0,
            seed: 42,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        },
    };
    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("no faults", FaultPlan::none()),
        (
            "C1 bid lost",
            FaultPlan {
                lose_bids_from: vec![0],
                ..FaultPlan::none()
            },
        ),
        (
            "C1 partitioned",
            FaultPlan {
                partitioned: vec![0],
                ..FaultPlan::none()
            },
        ),
        (
            "C4+C8 acks lost",
            FaultPlan {
                lose_acks_from: vec![3, 7],
                ..FaultPlan::none()
            },
        ),
    ];
    let mut t = Table::new(&[
        "Scenario",
        "Total latency",
        "Excluded",
        "C2 payment",
        "Messages",
    ]);
    for (name, plan) in scenarios {
        let out = run_protocol_round_with_faults(&mech, &specs, &config, &plan)?;
        let latency: f64 = out
            .rates
            .iter()
            .zip(&out.estimated_exec_values)
            .map(|(&x, &e)| e * x * x)
            .sum();
        let excluded = out.rates.iter().filter(|&&x| x == 0.0).count();
        t.row(&[
            name.into(),
            f2(latency),
            excluded.to_string(),
            f2(out.payments[1]),
            out.stats.messages.to_string(),
        ]);
    }
    Ok(t)
}

/// Beyond-paper: distributed payment audit (the paper's future work).
///
/// # Errors
/// Propagates protocol/mechanism errors.
pub fn audit_demo() -> Result<Table, MechanismError> {
    use lb_proto::audit::{audit_settlement, SettlementRecord};
    let mech = CompensationBonusMechanism::paper();
    let specs: Vec<NodeSpec> = paper_true_values()
        .iter()
        .map(|&t| NodeSpec::truthful(t))
        .collect();
    let config = ProtocolConfig {
        total_rate: PAPER_ARRIVAL_RATE,
        link_latency: 0.001,
        simulation: SimulationConfig {
            horizon: 300.0,
            seed: 42,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        },
    };
    let outcome = run_protocol_round(&mech, &specs, &config)?;
    let mut record = SettlementRecord {
        bids: specs.iter().map(|s| s.bid).collect(),
        estimated_exec_values: outcome.estimated_exec_values.clone(),
        total_rate: PAPER_ARRIVAL_RATE,
        claimed_payments: outcome.payments,
    };
    let mut t = Table::new(&[
        "Settlement",
        "All verified",
        "Disputed machines",
        "Max discrepancy",
    ]);
    let honest = audit_settlement(&mech, &record, 1e-9)?;
    t.row(&[
        "honest coordinator".into(),
        honest.all_verified().to_string(),
        format!("{:?}", honest.disputed()),
        format!("{:.2e}", honest.max_discrepancy),
    ]);
    record.claimed_payments[4] -= 1.0; // skim machine 5
    let tampered = audit_settlement(&mech, &record, 1e-6)?;
    t.row(&[
        "skims C5 by 1.0".into(),
        tampered.all_verified().to_string(),
        format!("{:?}", tampered.disputed()),
        format!("{:.2e}", tampered.max_discrepancy),
    ]);
    Ok(t)
}

/// Beyond-paper: ε-greedy learners discovering truthfulness.
///
/// # Errors
/// Propagates mechanism errors.
pub fn learning_demo() -> Result<Table, MechanismError> {
    use lb_agents::adaptive::repeated_play;
    use lb_agents::game::consistent_strategy_menu;
    let trues = [1.0, 2.0, 5.0, 10.0];
    let menu = consistent_strategy_menu();
    let mech = CompensationBonusMechanism::paper();
    let mut t = Table::new(&[
        "Rounds",
        "Agents on truthful arm",
        "Truthful-arm play share",
        "Late latency / L*",
    ]);
    let optimal = lb_core::optimal_latency_linear(&trues, 10.0)?;
    for rounds in [200u32, 1_000, 4_000] {
        let report = repeated_play(&mech, &trues, 10.0, &menu, rounds, 0.1, 7)?;
        let on_truth = report.best_arms.iter().filter(|&&a| a == 0).count();
        let share: f64 = report
            .pulls
            .iter()
            .map(|p| p[0] as f64 / p.iter().sum::<u64>() as f64)
            .sum::<f64>()
            / report.pulls.len() as f64;
        t.row(&[
            rounds.to_string(),
            format!("{on_truth}/{}", trues.len()),
            format!("{share:.2}"),
            format!("{:.3}", report.late_mean_latency / optimal),
        ]);
    }
    Ok(t)
}

/// Beyond-paper: the generalized mechanism on M/M/1 latencies.
///
/// # Errors
/// Propagates mechanism errors.
pub fn mm1_demo() -> Result<Table, MechanismError> {
    use lb_mechanism::{GeneralizedCompensationBonus, Mm1Family};
    let gen = GeneralizedCompensationBonus::new(Mm1Family);
    // Mean service times 1/mu; capacities mu = [10, 5, 2].
    let sys = lb_core::System::from_true_values(&[0.1, 0.2, 0.5]).map_err(MechanismError::from)?;
    let rate = 5.0;
    let mut t = Table::new(&["Scenario", "x1", "x2", "x3", "U1", "U2", "U3"]);
    for (name, bid_f, exec_f) in [
        ("truthful", 1.0, 1.0),
        ("C1 bids 1.5x", 1.5, 1.0),
        ("C1 lazy 1.5x", 1.0, 1.5),
    ] {
        let profile = Profile::with_deviation(&sys, rate, 0, bid_f, exec_f)?;
        let out = run_mechanism(&gen, &profile)?;
        t.row(&[
            name.into(),
            f2(out.allocation.rate(0)),
            f2(out.allocation.rate(1)),
            f2(out.allocation.rate(2)),
            f2(out.utilities[0]),
            f2(out.utilities[1]),
            f2(out.utilities[2]),
        ]);
    }
    Ok(t)
}

/// Beyond-paper: bursty (MMPP) workloads and the estimator.
///
/// # Errors
/// Propagates simulation errors.
pub fn bursty_demo() -> Result<Table, MechanismError> {
    use lb_sim::workload::WorkloadModel;
    let trues = paper_true_values();
    let mut t = Table::new(&["Workload", "Service model", "Max |t~ error| (rel)"]);
    for (wname, workload) in [
        ("poisson", WorkloadModel::Poisson),
        (
            "bursty 8x",
            WorkloadModel::Bursty {
                burstiness: 8.0,
                dwell_means: [50.0, 10.0],
            },
        ),
    ] {
        for (sname, model) in [
            ("stationary-exp", ServiceModel::StationaryExponential),
            ("mm1-queue", ServiceModel::Mm1Queue),
        ] {
            let config = SimulationConfig {
                horizon: 10_000.0,
                seed: 33,
                model,
                workload,
                warmup: if matches!(model, ServiceModel::Mm1Queue) {
                    1_000.0
                } else {
                    0.0
                },
                estimator: EstimatorConfig::default(),
            };
            let report =
                lb_sim::driver::simulate_round(&trues, &trues, PAPER_ARRIVAL_RATE, &config)?;
            let err = report
                .estimated_exec_values
                .iter()
                .zip(&trues)
                .map(|(e, t)| (e - t).abs() / t)
                .fold(0.0, f64::max);
            t.row(&[wname.into(), sname.into(), format!("{err:.3}")]);
        }
    }
    Ok(t)
}

/// Beyond-paper: dynamic (time-varying) load — is per-epoch reallocation
/// worth it?
///
/// For the paper's *linear* latencies the PR shares are load-independent, so
/// static shares are exactly optimal at every epoch (adaptation benefit 0 —
/// the scale-invariance of PR). For capacitated M/M/1 latencies the optimal
/// shares shift with load, and the benefit of re-solving per epoch grows
/// with load variability.
///
/// # Errors
/// Propagates solver errors.
pub fn dynamic_demo() -> Result<Table, MechanismError> {
    use lb_core::latency::{LatencyFunction, Linear, Mm1};
    use lb_core::{solve_convex, ConvexSolverOptions};

    fn weighted_latency<F: LatencyFunction>(
        fns: &[F],
        epochs: &[(f64, f64)],
        static_shares: Option<&[f64]>,
    ) -> Result<f64, MechanismError> {
        let mut total = 0.0;
        let mut time = 0.0;
        for &(duration, rate) in epochs {
            let rates: Vec<f64> = match static_shares {
                Some(shares) => shares.iter().map(|s| s * rate).collect(),
                None => {
                    let refs: Vec<&F> = fns.iter().collect();
                    solve_convex(&refs, rate, ConvexSolverOptions::default())?
                        .rates()
                        .to_vec()
                }
            };
            let l: f64 = rates.iter().zip(fns).map(|(&x, f)| f.total(x)).sum();
            total += duration * l;
            time += duration;
        }
        Ok(total / time)
    }

    let mut t = Table::new(&[
        "Latency family",
        "Load swing",
        "L (static shares)",
        "L (per-epoch)",
        "Adaptation benefit",
    ]);

    for &(label, lo, hi) in &[
        ("calm (15..25)", 15.0, 25.0),
        ("mild (10..30)", 10.0, 30.0),
        ("wild (4..36)", 4.0, 36.0),
    ] {
        let epochs = [(1.0, lo), (1.0, hi)];
        let mean_rate = 0.5 * (lo + hi);

        // Linear family: paper's model — shares are load-invariant.
        let lin: Vec<Linear> = paper_true_values()
            .iter()
            .map(|&v| Linear::new(v))
            .collect();
        let refs: Vec<&Linear> = lin.iter().collect();
        let base = solve_convex(&refs, mean_rate, ConvexSolverOptions::default())?;
        let shares: Vec<f64> = base.rates().iter().map(|x| x / mean_rate).collect();
        let l_static = weighted_latency(&lin, &epochs, Some(&shares))?;
        let l_dynamic = weighted_latency(&lin, &epochs, None)?;
        t.row(&[
            "linear".into(),
            label.into(),
            f2(l_static),
            f2(l_dynamic),
            pct((l_static - l_dynamic) / l_static),
        ]);

        // M/M/1 family: shares shift with load.
        let mus = [12.0, 12.0, 8.0, 8.0, 6.0, 4.0];
        let mm1: Vec<Mm1> = mus.iter().map(|&m| Mm1::new(m)).collect();
        let refs: Vec<&Mm1> = mm1.iter().collect();
        let base = solve_convex(&refs, mean_rate, ConvexSolverOptions::default())?;
        let shares: Vec<f64> = base.rates().iter().map(|x| x / mean_rate).collect();
        let l_static = weighted_latency(&mm1, &epochs, Some(&shares))?;
        let l_dynamic = weighted_latency(&mm1, &epochs, None)?;
        t.row(&[
            "mm1".into(),
            label.into(),
            f2(l_static),
            f2(l_dynamic),
            pct((l_static - l_dynamic) / l_static),
        ]);
    }
    Ok(t)
}

/// Beyond-paper: the paper's own conjecture — "we expect even larger
/// increase if more than one computer does not report its true value".
/// Sweeps the number of simultaneous liars (bid 3t, execute at the bid).
///
/// # Errors
/// Propagates mechanism errors.
pub fn multi_liar_demo() -> Result<Table, MechanismError> {
    let sys = paper_system();
    let trues = sys.true_values();
    let mech = CompensationBonusMechanism::paper();
    let optimal = lb_core::optimal_latency_linear(&trues, PAPER_ARRIVAL_RATE)?;
    let mut t = Table::new(&[
        "Liars (k)",
        "Total latency",
        "vs True1",
        "Mean liar utility drop",
    ]);
    let truthful = run_mechanism(&mech, &Profile::truthful(&sys, PAPER_ARRIVAL_RATE)?)?;
    for k in [0usize, 1, 2, 4, 8, 16] {
        let mut bids = trues.clone();
        let mut exec = trues.clone();
        for i in 0..k {
            bids[i] = trues[i] * 3.0;
            exec[i] = trues[i] * 3.0;
        }
        let profile = Profile::new(trues.clone(), bids, exec, PAPER_ARRIVAL_RATE)?;
        let out = run_mechanism(&mech, &profile)?;
        let drop = if k == 0 {
            0.0
        } else {
            (0..k)
                .map(|i| 1.0 - out.utilities[i] / truthful.utilities[i])
                .sum::<f64>()
                / k as f64
        };
        t.row(&[
            k.to_string(),
            f2(out.total_latency),
            pct((out.total_latency - optimal) / optimal),
            pct(drop),
        ]);
    }
    Ok(t)
}

/// Beyond-paper: utility of C1 as a function of its lie magnitude — the
/// single-peaked "figure 7" showing the maximum at the truthful bid.
///
/// # Errors
/// Propagates mechanism errors.
pub fn sensitivity_demo() -> Result<Table, MechanismError> {
    let sys = paper_system();
    let mech = CompensationBonusMechanism::paper();
    let mut t = Table::new(&[
        "Bid factor",
        "C1 utility (full speed)",
        "C1 utility (exec = bid)",
    ]);
    for &f in &[0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0] {
        let fast = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, f, 1.0)?;
        let consistent = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, f, f.max(1.0))?;
        t.row(&[
            format!("{f:.2}"),
            f2(run_mechanism(&mech, &fast)?.utilities[0]),
            f2(run_mechanism(&mech, &consistent)?.utilities[0]),
        ]);
    }
    Ok(t)
}

/// Beyond-paper: machine churn across rounds — C1 leaving and a new fast
/// machine joining, with the payments shifting accordingly.
///
/// # Errors
/// Propagates protocol errors.
pub fn churn_demo() -> Result<Table, MechanismError> {
    let mech = CompensationBonusMechanism::paper();
    let config = ProtocolConfig {
        total_rate: PAPER_ARRIVAL_RATE,
        link_latency: 0.001,
        simulation: SimulationConfig {
            horizon: 300.0,
            seed: 55,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        },
    };
    let base = paper_true_values();
    let rounds: Vec<(&str, Vec<f64>)> = vec![
        ("16 machines (Table 1)", base.clone()),
        ("C1 leaves (15)", base[1..].to_vec()),
        ("fast t=0.5 joins (16)", {
            let mut v = base[1..].to_vec();
            v.insert(0, 0.5);
            v
        }),
    ];
    let mut t = Table::new(&["Round", "n", "Total latency", "Fastest machine's payment"]);
    for (name, trues) in rounds {
        let specs: Vec<NodeSpec> = trues.iter().map(|&v| NodeSpec::truthful(v)).collect();
        let out = run_protocol_round(&mech, &specs, &config)?;
        let latency: f64 = out
            .rates
            .iter()
            .zip(&out.estimated_exec_values)
            .map(|(&x, &e)| e * x * x)
            .sum();
        // The fastest machine is the one with the smallest true value.
        let fastest = trues
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        t.row(&[
            name.into(),
            trues.len().to_string(),
            f2(latency),
            f2(out.payments[fastest]),
        ]);
    }
    Ok(t)
}

/// Beyond-paper: the deficit/participation trade-off of fee-adjusted
/// payments (own-bid-independent fees preserve truthfulness exactly).
///
/// # Errors
/// Propagates mechanism errors.
pub fn fees_demo() -> Result<Table, MechanismError> {
    use lb_mechanism::FeeAdjusted;
    let sys = paper_system();
    let trues = sys.true_values();
    let profile = Profile::truthful(&sys, PAPER_ARRIVAL_RATE)?;
    let break_even =
        FeeAdjusted::<CompensationBonusMechanism>::break_even_fraction(&trues, PAPER_ARRIVAL_RATE)?;
    let mut t = Table::new(&[
        "Fee fraction",
        "Total payment",
        "Deficit (payment - valuation)",
        "Min truthful utility",
    ]);
    for &fraction in &[0.0, 0.5 * break_even, break_even, 1.5 * break_even] {
        let mech = FeeAdjusted::new(CompensationBonusMechanism::paper(), fraction);
        let out = run_mechanism(&mech, &profile)?;
        let min_u = out.utilities.iter().copied().fold(f64::INFINITY, f64::min);
        t.row(&[
            format!("{fraction:.3}"),
            f2(out.total_payment()),
            f2(out.total_payment() - out.total_valuation_abs()),
            f2(min_u),
        ]);
    }
    Ok(t)
}

/// Beyond-paper: per-job latency *percentiles* per experiment — the paper
/// reports only means, but SLOs are tail quantiles. Streams every simulated
/// completion through P² estimators (O(1) memory).
///
/// # Errors
/// Propagates simulation errors.
pub fn percentiles_demo() -> Result<Table, MechanismError> {
    use lb_stats::quantile::P2Quantile;
    let mut t = Table::new(&["Experiment", "p50", "p95", "p99", "mean (= L/R)"]);
    for spec in paper_experiments() {
        let profile = crate::paper::experiment_profile(&spec)?;
        let config = SimulationConfig {
            horizon: 3_000.0,
            seed: 17,
            model: ServiceModel::StationaryExponential,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        };
        let report = lb_sim::driver::simulate_round(
            profile.bids(),
            profile.exec_values(),
            PAPER_ARRIVAL_RATE,
            &config,
        )?;
        // Re-generate the responses percentile-wise: reuse the recorded
        // per-machine means for the mean column and stream quantiles over a
        // fresh simulation pass at the same seed (same trajectories).
        let mut p50 = P2Quantile::new(0.5);
        let mut p95 = P2Quantile::new(0.95);
        let mut p99 = P2Quantile::new(0.99);
        let mut total_jobs = 0u64;
        let mut weighted_mean = 0.0;
        for obs in &report.observations {
            total_jobs += obs.response.count();
            weighted_mean += obs.response.sum();
        }
        // Stream actual response samples for quantiles.
        let traces = lb_sim::workload::per_machine_traces(
            report.allocation.rates(),
            config.horizon,
            config.seed,
        );
        let base =
            lb_stats::rng::Xoshiro256StarStar::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
        for (i, trace) in traces.iter().enumerate() {
            let mut rng = base.stream(i as u64);
            let arrivals: Vec<f64> = trace.iter().map(|j| j.arrival).collect();
            let responses = config.model.responses(
                &arrivals,
                profile.exec_values()[i],
                report.allocation.rate(i),
                &mut rng,
            );
            for r in responses {
                p50.observe(r);
                p95.observe(r);
                p99.observe(r);
            }
        }
        let mean = weighted_mean / total_jobs.max(1) as f64;
        t.row(&[
            spec.name.into(),
            f2(p50.estimate()),
            f2(p95.estimate()),
            f2(p99.estimate()),
            f2(mean),
        ]);
    }
    Ok(t)
}

/// Beyond-paper: classical allocation baselines vs the PR optimum.
///
/// # Errors
/// Propagates allocation errors.
pub fn baselines_demo() -> Result<Table, MechanismError> {
    use lb_core::baselines::{equal_split, penalty_vs_optimal, weighted_round_robin};
    let values = paper_true_values();
    let mut t = Table::new(&["Policy", "Total latency", "vs PR optimum"]);
    let opt = lb_core::optimal_latency_linear(&values, PAPER_ARRIVAL_RATE)?;
    t.row(&["PR (Theorem 2.1)".into(), f2(opt), pct(0.0)]);
    let eq = equal_split(values.len(), PAPER_ARRIVAL_RATE)?;
    let l = lb_core::total_latency_linear(&eq, &values)?;
    t.row(&[
        "equal split".into(),
        f2(l),
        pct(penalty_vs_optimal(&eq, &values, PAPER_ARRIVAL_RATE)?),
    ]);
    for cycle in [16u32, 128, 1024] {
        let wrr = weighted_round_robin(&values, PAPER_ARRIVAL_RATE, cycle)?;
        let l = lb_core::total_latency_linear(&wrr, &values)?;
        t.row(&[
            format!("weighted round-robin (cycle {cycle})"),
            f2(l),
            pct(penalty_vs_optimal(&wrr, &values, PAPER_ARRIVAL_RATE)?),
        ]);
    }
    Ok(t)
}

/// Simulated (pipeline) reproduction of Figure 1: each experiment through
/// the discrete-event simulator with stochastic service.
///
/// # Errors
/// Propagates mechanism/simulation errors.
pub fn figure1_simulated(horizon: f64, seed: u64) -> Result<Table, MechanismError> {
    let config = SimulationConfig {
        horizon,
        seed,
        model: ServiceModel::StationaryExponential,
        workload: Default::default(),
        warmup: 0.0,
        estimator: EstimatorConfig::default(),
    };
    let optimal = lb_core::optimal_latency_linear(&paper_true_values(), PAPER_ARRIVAL_RATE)?;
    let mut t = Table::new(&[
        "Experiment",
        "L (analytic)",
        "L (simulated)",
        "vs True1 (sim)",
    ]);
    for spec in paper_experiments() {
        let analytic = run_experiment(&spec)?;
        let sim = crate::paper::run_experiment_simulated(&spec, &config)?;
        t.row(&[
            spec.name.into(),
            f2(analytic.total_latency),
            f2(sim.total_latency),
            pct((sim.total_latency - optimal) / optimal),
        ]);
    }
    Ok(t)
}

/// Observability demo: a chaotic multi-round session recorded end-to-end by
/// a telemetry ring, rendered as a protocol timeline plus the metrics
/// snapshot derived from the same recording. A small 4-machine system keeps
/// the timeline readable.
///
/// # Errors
/// Propagates mechanism errors from the session.
pub fn telemetry_demo() -> Result<String, MechanismError> {
    use lb_proto::{run_chaos_session_observed, ChaosConfig, ChaosSessionConfig};
    use lb_telemetry::{render_timeline, MetricsRegistry, RingCollector};
    use std::sync::Arc;

    let config = ProtocolConfig {
        // Feasible for every >= 2-machine subset, so chaotic exclusions
        // never make the allocation itself infeasible.
        total_rate: 0.8,
        link_latency: 0.001,
        simulation: SimulationConfig {
            horizon: 300.0,
            seed: 9,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: EstimatorConfig::default(),
        },
    };
    let session = ChaosSessionConfig::new(3, ChaosConfig::heavy(11));
    let trues = [1.0, 1.0, 2.0, 2.0];
    let ring = Arc::new(RingCollector::new(65_536));
    run_chaos_session_observed(
        &CompensationBonusMechanism::paper(),
        &config,
        &session,
        |_, _| trues.iter().map(|&t| NodeSpec::truthful(t)).collect(),
        ring.clone(),
    )?;

    let events = ring.snapshot();
    let mut registry = MetricsRegistry::new();
    registry.ingest(&events);
    let mut out = render_timeline(&events);
    out.push('\n');
    out.push_str(&registry.snapshot().to_text());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_expected_row_counts() {
        assert_eq!(table1().len(), 4);
        assert_eq!(table2().len(), 8);
        assert_eq!(figure1().unwrap().len(), 8);
        assert_eq!(figure2().unwrap().len(), 8);
        assert_eq!(per_computer_figure("True1").unwrap().len(), 16);
        let (sweep, per_exp) = figure6().unwrap();
        assert_eq!(sweep.len(), 10);
        assert_eq!(per_exp.len(), 8);
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        assert!(per_computer_figure("True9").is_err());
    }

    #[test]
    fn message_counts_are_linear() {
        let t = message_counts().unwrap();
        assert_eq!(t.len(), 6);
        let s = t.render();
        // Every row shows 5.0 messages per node.
        assert_eq!(s.matches("5.0").count(), 6, "{s}");
    }

    #[test]
    fn ablation_tables_build() {
        assert_eq!(ablation_verification().unwrap().len(), 8);
        let t = ablation_estimator().unwrap();
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn multi_liar_degradation_is_monotone() {
        // The paper's conjecture, checked: more liars, more degradation.
        let t = multi_liar_demo().unwrap();
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn sensitivity_peaks_at_truth() {
        let t = sensitivity_demo().unwrap();
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn churn_table_builds() {
        assert_eq!(churn_demo().unwrap().len(), 3);
    }

    #[test]
    fn telemetry_demo_renders_spans_and_counters() {
        let s = telemetry_demo().unwrap();
        assert!(s.contains("phase.collect_bids"), "{s}");
        assert!(s.contains("net.messages"), "{s}");
    }

    #[test]
    fn baselines_table_builds() {
        let t = baselines_demo().unwrap();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn percentiles_table_builds_and_orders() {
        let t = percentiles_demo().unwrap();
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn fees_table_shows_the_tradeoff() {
        let t = fees_demo().unwrap();
        assert_eq!(t.len(), 4);
        let s = t.render();
        // Beyond break-even some truthful agent goes negative.
        assert!(s.contains('-'), "{s}");
    }

    #[test]
    fn figure_charts_render() {
        let c = figure1_chart().unwrap();
        assert_eq!(c.len(), 8);
        let s = c.render();
        assert!(s.contains("True1") && s.contains("Low2"));
        let (p, u) = figure2_chart().unwrap();
        // Low2's negative payment must produce a left-growing bar.
        assert!(p.render().contains("-19.40"));
        assert!(u.render().contains("-32.51"));
    }

    #[test]
    fn extension_tables_build_with_expected_shapes() {
        assert_eq!(fault_tolerance().unwrap().len(), 4);
        assert_eq!(audit_demo().unwrap().len(), 2);
        assert_eq!(mm1_demo().unwrap().len(), 3);
        assert_eq!(dynamic_demo().unwrap().len(), 6);
    }

    #[test]
    fn dynamic_adaptation_benefit_is_zero_for_linear_and_grows_for_mm1() {
        let t = dynamic_demo().unwrap();
        let s = t.render();
        // Every linear row shows +0.0% benefit (PR scale invariance).
        assert_eq!(s.matches("+0.0%").count(), 3, "{s}");
        // The wild-swing M/M/1 row shows a double-digit benefit.
        assert!(s.contains("wild"), "{s}");
    }

    #[test]
    fn simulated_figure1_tracks_analytic_shape() {
        let t = figure1_simulated(2_000.0, 3).unwrap();
        assert_eq!(t.len(), 8);
    }
}
