//! ASCII bar charts for the experiment harness.
//!
//! The paper's Figures 1–6 are bar charts; [`BarChart`] renders the same
//! series in the terminal so `experiments -- chart-fig1` visually mirrors
//! the paper's presentation (including negative bars, which Figure 2's Low2
//! needs).

use std::fmt::Write as _;

/// A labelled horizontal bar chart with support for negative values.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    entries: Vec<(String, f64)>,
    width: usize,
}

impl BarChart {
    /// Creates an empty chart with the given title and bar area width.
    ///
    /// # Panics
    /// Panics if `width < 10`.
    #[must_use]
    pub fn new(title: &str, width: usize) -> Self {
        assert!(width >= 10, "BarChart: width too small");
        Self {
            title: title.to_string(),
            entries: Vec::new(),
            width,
        }
    }

    /// Adds one labelled bar.
    ///
    /// # Panics
    /// Panics if `value` is not finite.
    pub fn bar(&mut self, label: &str, value: f64) -> &mut Self {
        assert!(value.is_finite(), "BarChart: non-finite value");
        self.entries.push((label.to_string(), value));
        self
    }

    /// Number of bars.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the chart has no bars.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the chart. Positive bars grow right from the zero axis,
    /// negative bars grow left; the axis position adapts to the data range.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        if self.entries.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let label_w = self.entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self
            .entries
            .iter()
            .map(|&(_, v)| v.max(0.0))
            .fold(0.0f64, f64::max);
        let min = self
            .entries
            .iter()
            .map(|&(_, v)| v.min(0.0))
            .fold(0.0f64, f64::min);
        let span = (max - min).max(f64::MIN_POSITIVE);
        // Portion of the bar area left of the zero axis.
        let neg_cells = ((-min / span) * self.width as f64).round() as usize;
        let pos_cells = self.width - neg_cells;

        for (label, value) in &self.entries {
            let _ = write!(out, "{label:>label_w$} |");
            if *value >= 0.0 {
                let cells = if max > 0.0 {
                    ((value / max) * pos_cells as f64).round() as usize
                } else {
                    0
                };
                let _ = write!(
                    out,
                    "{}{}",
                    " ".repeat(neg_cells),
                    "#".repeat(cells.max(usize::from(*value > 0.0)))
                );
            } else {
                let cells =
                    ((-value / -min.min(-f64::MIN_POSITIVE)) * neg_cells as f64).round() as usize;
                let cells = cells.max(1).min(neg_cells);
                let _ = write!(
                    out,
                    "{}{}",
                    " ".repeat(neg_cells - cells),
                    "#".repeat(cells)
                );
            }
            let _ = writeln!(out, "  {value:.2}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_bars_scale_with_values() {
        let mut c = BarChart::new("latency", 40);
        c.bar("True1", 78.43).bar("Low2", 130.07);
        let s = c.render();
        assert!(s.starts_with("latency\n"));
        let true1_hashes = s.lines().nth(1).unwrap().matches('#').count();
        let low2_hashes = s.lines().nth(2).unwrap().matches('#').count();
        assert!(low2_hashes > true1_hashes);
        assert_eq!(low2_hashes, 40, "largest bar fills the width");
        assert!(s.contains("78.43") && s.contains("130.07"));
    }

    #[test]
    fn negative_bars_grow_left_of_the_axis() {
        let mut c = BarChart::new("payments", 40);
        c.bar("True1", 23.05).bar("Low2", -19.40);
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        // The negative bar's hashes appear before the positive region.
        let neg_line = lines[2];
        let pos_line = lines[1];
        let neg_first = neg_line.find('#').unwrap();
        let pos_first = pos_line.find('#').unwrap();
        assert!(neg_first < pos_first, "{s}");
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let c = BarChart::new("empty", 20);
        assert!(c.is_empty());
        assert!(c.render().contains("(no data)"));
    }

    #[test]
    fn zero_values_render_without_bars() {
        let mut c = BarChart::new("zeros", 20);
        c.bar("a", 0.0).bar("b", 5.0);
        let s = c.render();
        assert_eq!(s.lines().nth(1).unwrap().matches('#').count(), 0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_is_rejected() {
        let mut c = BarChart::new("bad", 20);
        c.bar("x", f64::NAN);
    }
}
