//! Monitor-overhead study: what the streaming invariant monitor costs on
//! top of an instrumented settle phase.
//!
//! Three arms share one workload (the [`crate::payment_scaling`] truthful
//! profile) and one event stream shape (the coordinator's settlement
//! gauges):
//!
//! * **off** — allocation and payments computed and the settlement gauges
//!   emitted into a plain [`RingCollector`]: the per-round coordinator
//!   compute without a monitor;
//! * **full** — the same stream routed through an [`InvariantMonitor`]
//!   with every check on every round ([`Sampler::Always`]);
//! * **sampled** — drift reference and truthfulness probe admitted once
//!   every [`SAMPLE_PERIOD`] rounds, the recommended production posture.
//!
//! The reported number is median ns **per settled round** (payments +
//! emission + any monitoring), so `overhead = arm/off − 1` is the fraction
//! a deployment actually pays. The cheap structural checks (conservation,
//! feasibility, exclusion, total, floor) run every round in both monitored
//! arms; only the double-double reference and the counterfactual probes —
//! the O(n) heavyweights — are sampled.
//!
//! ```text
//! cargo run -p lb-bench --release --bin experiments -- audit-overhead
//! ```

use lb_audit::{InvariantMonitor, MonitorConfig};
use lb_mechanism::CompensationBonusMechanism;
use lb_telemetry::{Collector, EventKind, Json, RingCollector, Sampler, Subsystem, TelemetryEvent};
use std::borrow::Cow;
use std::sync::Arc;
use std::time::Instant;

use crate::payment_scaling::workload;

/// The `n` grid of the overhead study.
pub const OVERHEAD_NS: &[usize] = &[64, 1024, 16384];

/// Sampling period of the `sampled` arm: drift + probe once every this
/// many rounds.
pub const SAMPLE_PERIOD: u64 = 16;

/// Rounds driven per timing sample — enough for the periodic sampler to
/// amortise to its steady state.
pub const ROUNDS_PER_SAMPLE: u64 = 2 * SAMPLE_PERIOD;

/// One measured grid point (all times median ns per settled round).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadRow {
    /// Number of machines.
    pub n: usize,
    /// Baseline: settle + gauge emission, no monitor.
    pub off_ns: f64,
    /// Monitor with every check on every round.
    pub full_ns: f64,
    /// Monitor with drift/probe sampled at 1/[`SAMPLE_PERIOD`].
    pub sampled_ns: f64,
}

impl OverheadRow {
    /// Fractional overhead of the always-on monitor over the baseline.
    #[must_use]
    pub fn full_overhead(&self) -> f64 {
        self.full_ns / self.off_ns - 1.0
    }

    /// Fractional overhead of the sampled monitor over the baseline.
    #[must_use]
    pub fn sampled_overhead(&self) -> f64 {
        self.sampled_ns / self.off_ns - 1.0
    }
}

fn gauge(collector: &dyn Collector, name: String, value: f64) {
    collector.record(TelemetryEvent {
        at: 0.0,
        name: Cow::Owned(name),
        cat: Subsystem::Coordinator,
        kind: EventKind::Gauge { value },
        fields: Vec::new(),
    });
}

/// One settled round of coordinator compute — allocation, payment vector,
/// and the settlement gauge stream emitted into `collector`. Returns the
/// payment count as an optimisation sink.
fn settle_round(
    collector: &dyn Collector,
    mech: &CompensationBonusMechanism,
    values: &[f64],
    total_rate: f64,
    round: u64,
) -> usize {
    let alloc = lb_core::pr_allocate(values, total_rate).expect("bench workload allocates");
    let breakdown = mech
        .payment_breakdown(values, &alloc, values, total_rate)
        .expect("bench workload settles");
    let mut total = 0.0;
    for (i, payment) in breakdown.iter().enumerate() {
        let paid = payment.total();
        total += paid;
        gauge(collector, format!("bid.m{i}"), values[i]);
        gauge(collector, format!("alloc.rate.m{i}"), alloc.rate(i));
        gauge(collector, format!("exec.est.m{i}"), values[i]);
        gauge(collector, format!("excluded.m{i}"), 0.0);
        gauge(collector, format!("payment.m{i}"), paid);
    }
    #[allow(clippy::cast_precision_loss)]
    gauge(collector, "round.index".to_string(), round as f64);
    gauge(collector, "round.total_rate".to_string(), total_rate);
    gauge(collector, "round.payment.total".to_string(), total);
    breakdown.len()
}

/// The sampled-arm monitor configuration.
#[must_use]
pub fn sampled_config() -> MonitorConfig {
    MonitorConfig {
        drift_sampler: Sampler::PerRound(SAMPLE_PERIOD),
        probe_sampler: Sampler::PerRound(SAMPLE_PERIOD),
        ..MonitorConfig::default()
    }
}

/// Times one batch of [`ROUNDS_PER_SAMPLE`] settled rounds through
/// `collector`, returning ns per round.
fn time_batch(
    collector: &Arc<dyn Collector>,
    mech: &CompensationBonusMechanism,
    values: &[f64],
    r: f64,
) -> f64 {
    let start = Instant::now();
    let mut sink = 0;
    for round in 0..ROUNDS_PER_SAMPLE {
        sink += settle_round(collector.as_ref(), mech, values, r, round);
    }
    let elapsed = start.elapsed().as_nanos();
    assert!(sink > 0, "work was optimised away");
    #[allow(clippy::cast_precision_loss)]
    {
        elapsed as f64 / ROUNDS_PER_SAMPLE as f64
    }
}

fn ring() -> Arc<RingCollector> {
    // Large enough to hold one big round; older rounds rotate out, which is
    // exactly what a live deployment's ring does.
    Arc::new(RingCollector::new(1 << 18))
}

/// Measures the grid. `samples` is the per-arm repetition count.
///
/// The three arms are interleaved inside every repetition and each arm
/// reports its *minimum* per-round time, so machine-wide load that drifts
/// over the run hits all arms alike instead of biasing whichever arm it
/// overlapped — on a shared box the min is the only stable estimator of
/// the code's own cost.
#[must_use]
pub fn measure(ns: &[usize], samples: usize) -> Vec<OverheadRow> {
    let mech = CompensationBonusMechanism::paper();
    ns.iter()
        .map(|&n| {
            let (values, _, r) = workload(n);
            let (mut off, mut full, mut sampled) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for _ in 0..samples {
                let plain = ring() as Arc<dyn Collector>;
                off = off.min(time_batch(&plain, &mech, &values, r));
                let monitored = Arc::new(InvariantMonitor::new(
                    ring() as Arc<dyn Collector>,
                    MonitorConfig::default(),
                )) as Arc<dyn Collector>;
                full = full.min(time_batch(&monitored, &mech, &values, r));
                let amortised = Arc::new(InvariantMonitor::new(
                    ring() as Arc<dyn Collector>,
                    sampled_config(),
                )) as Arc<dyn Collector>;
                sampled = sampled.min(time_batch(&amortised, &mech, &values, r));
            }
            OverheadRow {
                n,
                off_ns: off,
                full_ns: full,
                sampled_ns: sampled,
            }
        })
        .collect()
}

/// Renders the human-readable table the `experiments` target prints.
#[must_use]
pub fn render_table(rows: &[OverheadRow]) -> String {
    let mut out = String::from(
        "     n |     off (µs) |    full (µs) | sampled (µs) |  full ovh | sampled ovh\n",
    );
    out.push_str("-------+--------------+--------------+--------------+-----------+------------\n");
    for row in rows {
        out.push_str(&format!(
            "{:6} |{:13.1} |{:13.1} |{:13.1} |{:9.1}% |{:10.1}%\n",
            row.n,
            row.off_ns / 1e3,
            row.full_ns / 1e3,
            row.sampled_ns / 1e3,
            100.0 * row.full_overhead(),
            100.0 * row.sampled_overhead(),
        ));
    }
    out
}

/// The rows as JSON objects for the [`crate::bench_log`] artifact.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn rows_json(rows: &[OverheadRow]) -> Vec<Json> {
    rows.iter()
        .map(|row| {
            Json::obj([
                ("n", Json::Num(row.n as f64)),
                ("off_ns", Json::Num(row.off_ns.round())),
                ("full_ns", Json::Num(row.full_ns.round())),
                ("sampled_ns", Json::Num(row.sampled_ns.round())),
                (
                    "full_overhead",
                    Json::Num((row.full_overhead() * 1e4).round() / 1e4),
                ),
                (
                    "sampled_overhead",
                    Json::Num((row.sampled_overhead() * 1e4).round() / 1e4),
                ),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitored_rounds_are_clean_on_the_bench_workload() {
        let sink = ring();
        let monitor = InvariantMonitor::new(sink as Arc<dyn Collector>, MonitorConfig::default());
        let mech = CompensationBonusMechanism::paper();
        let (values, _, r) = workload(64);
        for round in 0..3 {
            settle_round(&monitor, &mech, &values, r, round);
        }
        let stats = monitor.stats();
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.total_violations(), 0, "{stats:?}");
        assert!(monitor.latest_report().is_some_and(|r| r.ok()));
    }

    #[test]
    fn sampled_config_admits_one_round_in_the_period() {
        let config = sampled_config();
        let admitted = (0..SAMPLE_PERIOD)
            .filter(|&r| config.drift_sampler.admits(config.seed, r))
            .count();
        assert_eq!(admitted, 1);
    }

    #[test]
    fn measure_smoke_reports_finite_positive_times() {
        let rows = measure(&[16], 1);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.off_ns > 0.0 && row.full_ns > 0.0 && row.sampled_ns > 0.0);
        assert!(row.full_overhead().is_finite());
        let json = rows_json(&rows);
        assert_eq!(json[0].get("n").and_then(Json::as_u64), Some(16));
    }
}
