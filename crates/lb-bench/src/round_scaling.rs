//! Round-scaling study: full sharded rounds at up to a million machines.
//!
//! The single-coordinator runtime walks every machine once per phase, so a
//! round is O(n) — but the constant matters at datacenter scale. This study
//! drives complete bid → allocate → execute/verify → settle rounds through
//! the hierarchical sharded coordinator ([`lb_proto::shard`]) on the bench
//! workload and reports, per population size:
//!
//! * **rounds/sec** — settled rounds per wall-clock second, the number a
//!   capacity plan actually needs;
//! * **p99 phase latency** — the 99th-percentile wall-clock time of each
//!   protocol phase (collect, allocate, execute, settle) across the driven
//!   rounds, computed with the validated nearest-rank quantile
//!   ([`lb_stats::nearest_rank`] via [`lb_stats::Reservoir`]) — the same
//!   estimator the telemetry stack uses, so these p99s are directly
//!   comparable to live dashboard quantiles.
//!
//! The biggest grid point is n = 10⁶. Telemetry stays off (the noop
//! collector): the study measures the protocol, not the recorder — the
//! monitor's cost has its own artifact ([`crate::audit_overhead`]).
//!
//! ```text
//! cargo run -p lb-bench --release --bin experiments -- round-scaling
//! ```

use lb_mechanism::CompensationBonusMechanism;
use lb_proto::{run_round_sharded, NodeSpec, ProtocolConfig};
use lb_sim::driver::SimulationConfig;
use lb_sim::server::ServiceModel;
use lb_stats::{Reservoir, Xoshiro256StarStar};
use lb_telemetry::Json;
use std::time::Instant;

/// The population grid: 10⁴, 10⁵ and 10⁶ machines.
pub const SCALING_NS: &[usize] = &[10_000, 100_000, 1_000_000];

/// Rounds driven per grid point in the full study — enough for a stable
/// p99 at the small sizes without making the 10⁶ point take minutes.
pub const ROUNDS_PER_POINT: usize = 8;

/// Shard count used at every grid point (one shard per worker thread; a
/// fixed count keeps grid points comparable and the study deterministic).
pub const SHARDS: usize = 8;

/// One measured grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundScalingRow {
    /// Number of machines.
    pub n: usize,
    /// Shard coordinators under the root.
    pub shards: usize,
    /// Rounds driven.
    pub rounds: usize,
    /// Settled rounds per wall-clock second.
    pub rounds_per_sec: f64,
    /// p99 bid-collection latency, milliseconds.
    pub p99_collect_ms: f64,
    /// p99 aggregate-and-allocate latency, milliseconds.
    pub p99_allocate_ms: f64,
    /// p99 execute-and-verify latency, milliseconds.
    pub p99_execute_ms: f64,
    /// p99 settlement latency, milliseconds.
    pub p99_settle_ms: f64,
}

/// The bench population: truthful machines over the same 7-class latency
/// spread as [`crate::payment_scaling::workload`], scaled to any `n`.
#[must_use]
pub fn specs(n: usize) -> Vec<NodeSpec> {
    #[allow(clippy::cast_precision_loss)]
    (0..n)
        .map(|i| NodeSpec::truthful(1.0 + (i % 7) as f64))
        .collect()
}

/// The protocol configuration of the study: deterministic service so two
/// runs measure the same work, a short horizon so the verification
/// simulation is bounded per machine.
#[must_use]
pub fn config() -> ProtocolConfig {
    ProtocolConfig {
        total_rate: 20.0,
        simulation: SimulationConfig {
            horizon: 50.0,
            seed: 7,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: lb_sim::estimator::EstimatorConfig::default(),
        },
        ..ProtocolConfig::default()
    }
}

/// Drives `rounds` sharded rounds at each grid size and folds the phase
/// timings into per-phase reservoirs.
///
/// # Panics
/// Panics if a round fails on the validated bench workload — that is a
/// protocol regression, not a measurement condition.
#[must_use]
pub fn measure(ns: &[usize], rounds: usize) -> Vec<RoundScalingRow> {
    assert!(rounds > 0, "round_scaling: need at least one round");
    let mech = CompensationBonusMechanism::paper();
    let config = config();
    ns.iter()
        .map(|&n| {
            let specs = specs(n);
            let mut rng = Xoshiro256StarStar::seed_from_u64(11);
            let mut phases = [
                Reservoir::new(rounds),
                Reservoir::new(rounds),
                Reservoir::new(rounds),
                Reservoir::new(rounds),
            ];
            let start = Instant::now();
            for _ in 0..rounds {
                let report =
                    run_round_sharded(&mech, &specs, &config, SHARDS).expect("bench round settles");
                assert_eq!(report.rates.len(), n);
                let t = report.timings;
                for (res, seconds) in phases
                    .iter_mut()
                    .zip([t.collect, t.allocate, t.execute, t.settle])
                {
                    res.offer(seconds, &mut rng);
                }
            }
            let elapsed = start.elapsed().as_secs_f64();
            let p99_ms = |res: &Reservoir| res.quantile(0.99) * 1e3;
            #[allow(clippy::cast_precision_loss)]
            RoundScalingRow {
                n,
                shards: SHARDS,
                rounds,
                rounds_per_sec: rounds as f64 / elapsed,
                p99_collect_ms: p99_ms(&phases[0]),
                p99_allocate_ms: p99_ms(&phases[1]),
                p99_execute_ms: p99_ms(&phases[2]),
                p99_settle_ms: p99_ms(&phases[3]),
            }
        })
        .collect()
}

/// Renders the human-readable table the `experiments` target prints.
#[must_use]
pub fn render_table(rows: &[RoundScalingRow]) -> String {
    let mut out = String::from(
        "        n | shards | rounds/s | p99 collect | p99 allocate | p99 execute | p99 settle\n",
    );
    out.push_str(
        "----------+--------+----------+-------------+--------------+-------------+-----------\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:9} |{:7} |{:9.2} |{:9.2} ms |{:10.2} ms |{:9.2} ms |{:8.2} ms\n",
            row.n,
            row.shards,
            row.rounds_per_sec,
            row.p99_collect_ms,
            row.p99_allocate_ms,
            row.p99_execute_ms,
            row.p99_settle_ms,
        ));
    }
    out
}

/// The rows as JSON objects for the [`crate::bench_log`] artifact.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn rows_json(rows: &[RoundScalingRow]) -> Vec<Json> {
    let r4 = |v: f64| (v * 1e4).round() / 1e4;
    rows.iter()
        .map(|row| {
            Json::obj([
                ("n", Json::Num(row.n as f64)),
                ("shards", Json::Num(row.shards as f64)),
                ("rounds", Json::Num(row.rounds as f64)),
                ("rounds_per_sec", Json::Num(r4(row.rounds_per_sec))),
                ("p99_collect_ms", Json::Num(r4(row.p99_collect_ms))),
                ("p99_allocate_ms", Json::Num(r4(row.p99_allocate_ms))),
                ("p99_execute_ms", Json::Num(r4(row.p99_execute_ms))),
                ("p99_settle_ms", Json::Num(r4(row.p99_settle_ms))),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_log::BenchLog;

    #[test]
    fn measure_smoke_reports_finite_positive_numbers() {
        let rows = measure(&[64], 3);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.rounds_per_sec > 0.0 && row.rounds_per_sec.is_finite());
        for p99 in [
            row.p99_collect_ms,
            row.p99_allocate_ms,
            row.p99_execute_ms,
            row.p99_settle_ms,
        ] {
            assert!(p99 >= 0.0 && p99.is_finite());
        }
        let json = rows_json(&rows);
        assert_eq!(json[0].get("n").and_then(Json::as_u64), Some(64));
        assert_eq!(
            json[0].get("shards").and_then(Json::as_u64),
            Some(SHARDS as u64)
        );
    }

    #[test]
    fn rows_render_into_a_schema_valid_bench_log() {
        let rows = measure(&[32], 2);
        let mut log = BenchLog::new("round_scaling", "rounds/sec");
        log.append("test", rows_json(&rows)).unwrap();
        let reparsed = BenchLog::parse(&log.render()).unwrap();
        assert_eq!(reparsed, log);
    }

    #[test]
    fn the_checked_in_round_scaling_artifact_parses() {
        let text = include_str!("../../../BENCH_round_scaling.json");
        let log = BenchLog::parse(text).unwrap();
        assert_eq!(log.bench, "round_scaling");
        assert_eq!(log.unit, "rounds/sec");
        assert!(!log.entries.is_empty());
        // The acceptance grid: the seed entry spans 10⁴ to 10⁶ machines.
        let seed = &log.entries[0];
        let ns: Vec<u64> = seed
            .rows
            .iter()
            .filter_map(|r| r.get("n").and_then(Json::as_u64))
            .collect();
        assert!(ns.contains(&1_000_000), "seed entry covers n = 10⁶: {ns:?}");
        assert!(seed
            .rows
            .iter()
            .all(|r| r.get("p99_settle_ms").is_some() && r.get("rounds_per_sec").is_some()));
    }
}
