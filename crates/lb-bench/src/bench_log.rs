//! Append-only `BENCH_*.json` artifact log.
//!
//! Historically each experiments target rewrote its artifact wholesale, so
//! a re-run silently discarded the previous machine's numbers. This module
//! gives every artifact the same schema and an *append* discipline:
//!
//! ```json
//! {
//!   "bench": "payment_scaling",
//!   "unit": "ns/settle-phase",
//!   "entries": [
//!     {"label": "seed", "rows": [ {...}, {...} ]},
//!     {"label": "2026-08-ci", "rows": [ {...} ]}
//!   ]
//! }
//! ```
//!
//! [`BenchLog::parse`] validates the document shape (and migrates the
//! legacy top-level `rows` form into an entry labelled `"seed"`);
//! [`BenchLog::append`] adds or replaces one labelled entry, so re-running
//! under the same label is idempotent while distinct labels accumulate a
//! history. Rendering is deliberately line-per-row so the checked-in
//! artifacts stay reviewable in diffs.

use lb_telemetry::Json;

/// The label legacy top-level `rows` are filed under when an old-format
/// artifact is migrated.
pub const LEGACY_LABEL: &str = "seed";

/// One labelled measurement batch inside an artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Caller-chosen label (a machine, a date, `"seed"` for the checked-in
    /// baseline). Appending under an existing label replaces that entry.
    pub label: String,
    /// The measured rows, one JSON object per grid point.
    pub rows: Vec<Json>,
}

/// A parsed, schema-valid `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLog {
    /// Benchmark identifier (`"payment_scaling"`, `"audit_overhead"`, …).
    pub bench: String,
    /// Unit of the numeric columns.
    pub unit: String,
    /// Labelled entries, in append order.
    pub entries: Vec<BenchEntry>,
}

fn required_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("bench log: missing string field {key:?}"))
}

fn validate_rows(rows: &[Json]) -> Result<(), String> {
    for (i, row) in rows.iter().enumerate() {
        let Json::Obj(fields) = row else {
            return Err(format!("bench log: row {i} is not an object"));
        };
        if fields.is_empty() {
            return Err(format!("bench log: row {i} is empty"));
        }
        if let Some((key, _)) = fields
            .iter()
            .find(|(_, v)| matches!(v, Json::Num(n) if !n.is_finite()))
        {
            return Err(format!("bench log: row {i} field {key:?} is not finite"));
        }
    }
    Ok(())
}

impl BenchLog {
    /// A new, empty log.
    #[must_use]
    pub fn new(bench: impl Into<String>, unit: impl Into<String>) -> Self {
        BenchLog {
            bench: bench.into(),
            unit: unit.into(),
            entries: Vec::new(),
        }
    }

    /// Parses and validates an artifact, migrating the legacy top-level
    /// `rows` form into a single [`LEGACY_LABEL`] entry.
    ///
    /// # Errors
    /// Describes the first schema problem found.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| format!("bench log: {e:?}"))?;
        let bench = required_str(&doc, "bench")?;
        let unit = required_str(&doc, "unit")?;
        let mut entries = Vec::new();
        if let Some(list) = doc.get("entries") {
            let list = list
                .as_array()
                .ok_or("bench log: \"entries\" is not an array")?;
            for (i, entry) in list.iter().enumerate() {
                let label = required_str(entry, "label").map_err(|e| format!("{e} (entry {i})"))?;
                if label.is_empty() {
                    return Err(format!("bench log: entry {i} has an empty label"));
                }
                if entries.iter().any(|e: &BenchEntry| e.label == label) {
                    return Err(format!("bench log: duplicate label {label:?}"));
                }
                let rows = entry
                    .get("rows")
                    .and_then(Json::as_array)
                    .ok_or_else(|| format!("bench log: entry {i} has no \"rows\" array"))?
                    .to_vec();
                validate_rows(&rows)?;
                entries.push(BenchEntry { label, rows });
            }
        } else if let Some(rows) = doc.get("rows").and_then(Json::as_array) {
            let rows = rows.to_vec();
            validate_rows(&rows)?;
            entries.push(BenchEntry {
                label: LEGACY_LABEL.to_string(),
                rows,
            });
        } else {
            return Err("bench log: neither \"entries\" nor legacy \"rows\" present".into());
        }
        Ok(BenchLog {
            bench,
            unit,
            entries,
        })
    }

    /// Appends one labelled batch, replacing any existing entry with the
    /// same label (idempotent re-runs).
    ///
    /// # Errors
    /// Rejects empty labels and malformed rows.
    pub fn append(&mut self, label: impl Into<String>, rows: Vec<Json>) -> Result<(), String> {
        let label = label.into();
        if label.is_empty() {
            return Err("bench log: empty label".into());
        }
        validate_rows(&rows)?;
        if let Some(existing) = self.entries.iter_mut().find(|e| e.label == label) {
            existing.rows = rows;
        } else {
            self.entries.push(BenchEntry { label, rows });
        }
        Ok(())
    }

    /// Renders the artifact, one row per line for reviewable diffs.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"bench\": {},\n  \"unit\": {},\n  \"entries\": [\n",
            Json::Str(self.bench.clone()).render(),
            Json::Str(self.unit.clone()).render()
        ));
        for (i, entry) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": {}, \"rows\": [\n",
                Json::Str(entry.label.clone()).render()
            ));
            for (k, row) in entry.rows.iter().enumerate() {
                out.push_str(&format!(
                    "      {}{}\n",
                    row.render(),
                    if k + 1 < entry.rows.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!(
                "    ]}}{}\n",
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Loads `path` (tolerating a missing file), appends `rows` under `label`,
/// and writes the artifact back — the one-call form the experiments targets
/// use.
///
/// # Errors
/// Propagates schema violations, a bench/unit mismatch with an existing
/// artifact, and I/O failures.
pub fn append_to_file(
    path: &str,
    bench: &str,
    unit: &str,
    label: &str,
    rows: Vec<Json>,
) -> Result<(), String> {
    let mut log = match std::fs::read_to_string(path) {
        Ok(text) => {
            let log = BenchLog::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            if log.bench != bench || log.unit != unit {
                return Err(format!(
                    "{path}: artifact is {:?}/{:?}, refusing to append {bench:?}/{unit:?}",
                    log.bench, log.unit
                ));
            }
            log
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => BenchLog::new(bench, unit),
        Err(e) => return Err(format!("read {path}: {e}")),
    };
    log.append(label, rows)?;
    std::fs::write(path, log.render()).map_err(|e| format!("write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(n: f64) -> Json {
        Json::obj([("n", Json::Num(n)), ("ns", Json::Num(10.0 * n))])
    }

    #[test]
    fn render_parse_round_trips() {
        let mut log = BenchLog::new("payment_scaling", "ns/settle-phase");
        log.append("seed", vec![row(64.0), row(256.0)]).unwrap();
        log.append("ci", vec![row(1024.0)]).unwrap();
        let text = log.render();
        let reparsed = BenchLog::parse(&text).unwrap();
        assert_eq!(reparsed, log);
        // Line-per-row layout: every row starts its own line.
        assert!(text
            .lines()
            .any(|l| l.trim_start().starts_with("{\"n\":64")));
    }

    #[test]
    fn legacy_rows_migrate_under_the_seed_label() {
        let legacy = r#"{"bench": "payment_scaling", "unit": "ns", "rows": [{"n": 64}]}"#;
        let log = BenchLog::parse(legacy).unwrap();
        assert_eq!(log.entries.len(), 1);
        assert_eq!(log.entries[0].label, LEGACY_LABEL);
        assert_eq!(log.entries[0].rows.len(), 1);
    }

    #[test]
    fn same_label_replaces_distinct_labels_accumulate() {
        let mut log = BenchLog::new("b", "u");
        log.append("a", vec![row(1.0)]).unwrap();
        log.append("a", vec![row(2.0), row(3.0)]).unwrap();
        log.append("b", vec![row(4.0)]).unwrap();
        assert_eq!(log.entries.len(), 2);
        assert_eq!(log.entries[0].rows.len(), 2);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(BenchLog::parse("{}").is_err());
        assert!(BenchLog::parse(r#"{"bench": "b", "unit": "u"}"#).is_err());
        assert!(
            BenchLog::parse(r#"{"bench": "b", "unit": "u", "entries": [{"label": ""}]}"#).is_err()
        );
        assert!(BenchLog::parse(
            r#"{"bench": "b", "unit": "u", "entries": [
                {"label": "x", "rows": [1]}]}"#
        )
        .is_err());
        assert!(BenchLog::parse(
            r#"{"bench": "b", "unit": "u", "entries": [
                {"label": "x", "rows": []}, {"label": "x", "rows": []}]}"#
        )
        .is_err());
        let mut log = BenchLog::new("b", "u");
        assert!(log.append("", vec![]).is_err());
        assert!(log
            .append("x", vec![Json::obj([("v", Json::Num(f64::NAN))])])
            .is_err());
    }

    #[test]
    fn the_checked_in_payment_artifact_parses() {
        let text = include_str!("../../../BENCH_payment.json");
        let log = BenchLog::parse(text).unwrap();
        assert_eq!(log.bench, "payment_scaling");
        assert!(!log.entries.is_empty());
        assert!(log.entries[0].rows.iter().all(|r| r.get("n").is_some()));
    }
}
