//! The paper's eight Table 2 experiments.
//!
//! All computers except C1 bid their true values and execute at full
//! capacity; C1's bid factor and execution factor define the experiment
//! (Table 2 of the paper, constants recovered as documented in `DESIGN.md`).

use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE, PAPER_STRATEGIC_MACHINE};
use lb_mechanism::{
    frugality_ratio, run_mechanism, CompensationBonusMechanism, MechanismError, Profile,
};
use lb_sim::driver::{verified_round, SimulationConfig};

/// One of the paper's experiment types (Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name as printed in the paper ("True1" … "Low2").
    pub name: &'static str,
    /// Bid factor applied to C1's true value.
    pub bid_factor: f64,
    /// Execution factor applied to C1's true value.
    pub exec_factor: f64,
    /// Paper's one-line characterisation.
    pub description: &'static str,
}

/// The eight experiments of Table 2, in the paper's order.
#[must_use]
pub fn paper_experiments() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec {
            name: "True1",
            bid_factor: 1.0,
            exec_factor: 1.0,
            description: "all truthful, full capacity (optimum)",
        },
        ExperimentSpec {
            name: "True2",
            bid_factor: 1.0,
            exec_factor: 2.0,
            description: "truthful bid, 2x slower execution",
        },
        ExperimentSpec {
            name: "High1",
            bid_factor: 3.0,
            exec_factor: 3.0,
            description: "bids 3x higher, executes at the bid",
        },
        ExperimentSpec {
            name: "High2",
            bid_factor: 3.0,
            exec_factor: 1.0,
            description: "bids 3x higher, executes at full capacity",
        },
        ExperimentSpec {
            name: "High3",
            bid_factor: 3.0,
            exec_factor: 2.0,
            description: "bids 3x higher, executes faster than the bid",
        },
        ExperimentSpec {
            name: "High4",
            bid_factor: 3.0,
            exec_factor: 6.0,
            description: "bids 3x higher, executes slower than the bid",
        },
        ExperimentSpec {
            name: "Low1",
            bid_factor: 0.5,
            exec_factor: 1.0,
            description: "bids 2x lower, executes at full capacity",
        },
        ExperimentSpec {
            name: "Low2",
            bid_factor: 0.5,
            exec_factor: 2.0,
            description: "bids 2x lower, executes 2x slower",
        },
    ]
}

/// Looks up an experiment by name (case-insensitive).
#[must_use]
pub fn experiment_by_name(name: &str) -> Option<ExperimentSpec> {
    paper_experiments()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
}

/// The full accounting of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Which experiment this is.
    pub spec: ExperimentSpec,
    /// Realised total latency `L`.
    pub total_latency: f64,
    /// Relative degradation against the True1 optimum.
    pub degradation: f64,
    /// Per-computer payments.
    pub payments: Vec<f64>,
    /// Per-computer utilities.
    pub utilities: Vec<f64>,
    /// Total payment / total valuation (Figure 6).
    pub frugality: f64,
    /// Total payment handed out.
    pub total_payment: f64,
    /// Total |valuation|.
    pub total_valuation: f64,
}

impl ExperimentResult {
    /// C1's payment.
    #[must_use]
    pub fn c1_payment(&self) -> f64 {
        self.payments[PAPER_STRATEGIC_MACHINE]
    }

    /// C1's utility.
    #[must_use]
    pub fn c1_utility(&self) -> f64 {
        self.utilities[PAPER_STRATEGIC_MACHINE]
    }
}

/// The profile realising an experiment on the paper system.
///
/// # Errors
/// Propagates profile validation errors.
pub fn experiment_profile(spec: &ExperimentSpec) -> Result<Profile, MechanismError> {
    Profile::with_deviation(
        &paper_system(),
        PAPER_ARRIVAL_RATE,
        PAPER_STRATEGIC_MACHINE,
        spec.bid_factor,
        spec.exec_factor,
    )
}

/// Runs one experiment analytically (exact closed forms — what the paper's
/// own numbers are computed from).
///
/// # Errors
/// Propagates mechanism errors.
pub fn run_experiment(spec: &ExperimentSpec) -> Result<ExperimentResult, MechanismError> {
    let mechanism = CompensationBonusMechanism::paper();
    let profile = experiment_profile(spec)?;
    let outcome = run_mechanism(&mechanism, &profile)?;
    let optimal =
        lb_core::optimal_latency_linear(&paper_system().true_values(), PAPER_ARRIVAL_RATE)?;
    Ok(ExperimentResult {
        spec: *spec,
        total_latency: outcome.total_latency,
        degradation: (outcome.total_latency - optimal) / optimal,
        frugality: frugality_ratio(&outcome),
        total_payment: outcome.total_payment(),
        total_valuation: outcome.total_valuation_abs(),
        payments: outcome.payments,
        utilities: outcome.utilities,
    })
}

/// Runs one experiment through the full simulation + verification pipeline
/// (what an actual deployment would measure).
///
/// # Errors
/// Propagates mechanism/simulation errors.
pub fn run_experiment_simulated(
    spec: &ExperimentSpec,
    config: &SimulationConfig,
) -> Result<ExperimentResult, MechanismError> {
    let mechanism = CompensationBonusMechanism::paper();
    let profile = experiment_profile(spec)?;
    let round = verified_round(&mechanism, &profile, config)?;
    let outcome = round.outcome;
    let optimal =
        lb_core::optimal_latency_linear(&paper_system().true_values(), PAPER_ARRIVAL_RATE)?;
    // Realised latency: from the measurement plane, not the estimates.
    let measured = round.report.estimated_total_latency;
    Ok(ExperimentResult {
        spec: *spec,
        total_latency: measured,
        degradation: (measured - optimal) / optimal,
        frugality: frugality_ratio(&outcome),
        total_payment: outcome.total_payment(),
        total_valuation: outcome.total_valuation_abs(),
        payments: outcome.payments,
        utilities: outcome.utilities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_sim::server::ServiceModel;

    #[test]
    fn there_are_eight_experiments_in_paper_order() {
        let e = paper_experiments();
        assert_eq!(e.len(), 8);
        let names: Vec<&str> = e.iter().map(|x| x.name).collect();
        assert_eq!(
            names,
            ["True1", "True2", "High1", "High2", "High3", "High4", "Low1", "Low2"]
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(experiment_by_name("low2").unwrap().name, "Low2");
        assert!(experiment_by_name("nope").is_none());
    }

    #[test]
    fn true1_reproduces_the_paper_optimum() {
        let r = run_experiment(&experiment_by_name("True1").unwrap()).unwrap();
        assert!(
            (r.total_latency - 78.431_372_549).abs() < 1e-6,
            "L = {}",
            r.total_latency
        );
        assert!(r.degradation.abs() < 1e-9);
    }

    #[test]
    fn low1_and_low2_match_paper_percentages() {
        // Paper: Low1 ≈ +11%, Low2 ≈ +66%.
        let low1 = run_experiment(&experiment_by_name("Low1").unwrap()).unwrap();
        assert!(
            (low1.degradation - 0.110).abs() < 0.005,
            "Low1 {}",
            low1.degradation
        );
        let low2 = run_experiment(&experiment_by_name("Low2").unwrap()).unwrap();
        assert!(
            (low2.degradation - 0.659).abs() < 0.005,
            "Low2 {}",
            low2.degradation
        );
    }

    #[test]
    fn utility_drops_match_paper_percentages() {
        // Paper: C1's utility is 62% lower in High1 and 45% lower in Low1.
        let true1 = run_experiment(&experiment_by_name("True1").unwrap()).unwrap();
        let high1 = run_experiment(&experiment_by_name("High1").unwrap()).unwrap();
        let low1 = run_experiment(&experiment_by_name("Low1").unwrap()).unwrap();
        let drop_high = 1.0 - high1.c1_utility() / true1.c1_utility();
        let drop_low = 1.0 - low1.c1_utility() / true1.c1_utility();
        assert!((drop_high - 0.62).abs() < 0.01, "High1 drop {drop_high}");
        assert!((drop_low - 0.45).abs() < 0.01, "Low1 drop {drop_low}");
    }

    #[test]
    fn true1_maximizes_c1_utility_across_experiments() {
        // Paper: "C1 obtains the highest utility in the experiment True1".
        let results: Vec<ExperimentResult> = paper_experiments()
            .iter()
            .map(|s| run_experiment(s).unwrap())
            .collect();
        let true1_utility = results[0].c1_utility();
        for r in &results[1..] {
            assert!(
                r.c1_utility() < true1_utility,
                "{} beats True1",
                r.spec.name
            );
        }
    }

    #[test]
    fn low2_has_negative_payment_and_utility() {
        let r = run_experiment(&experiment_by_name("Low2").unwrap()).unwrap();
        assert!(r.c1_payment() < 0.0);
        assert!(r.c1_utility() < 0.0);
    }

    #[test]
    fn high_ordering_matches_prose() {
        // High2 (full capacity) < High3 (faster than bid) < High1 (at bid)
        // < High4 (slower than bid) in total latency.
        let l = |n: &str| {
            run_experiment(&experiment_by_name(n).unwrap())
                .unwrap()
                .total_latency
        };
        assert!(l("High2") < l("High3"));
        assert!(l("High3") < l("High1"));
        assert!(l("High1") < l("High4"));
    }

    #[test]
    fn frugality_is_bounded_by_paper_limit_in_the_truthful_regime() {
        // Figure 6: for the truthful profile, total payment stays within
        // 2.5x the total valuation across the evaluated arrival-rate range
        // (it peaks at ~2.42 at the paper's R = 20).
        let sys = paper_system();
        let mech = CompensationBonusMechanism::paper();
        let mut max_ratio = 0.0f64;
        for k in 1..=10 {
            let r = 2.0 * f64::from(k);
            let profile = Profile::truthful(&sys, r).unwrap();
            let out = run_mechanism(&mech, &profile).unwrap();
            let ratio = frugality_ratio(&out);
            assert!(ratio >= 1.0, "R={r}: ratio {ratio} below valuation floor");
            max_ratio = max_ratio.max(ratio);
        }
        assert!(max_ratio <= 2.5, "max ratio {max_ratio} above paper bound");
        assert!((max_ratio - 2.42).abs() < 0.01, "max ratio {max_ratio}");
    }

    #[test]
    fn manipulation_can_push_payments_outside_the_frugal_regime() {
        // The 2.5x bound is a property of the truthful equilibrium; a
        // manipulated round like High2 (over-bid, fast execution) extracts
        // over-payment beyond it — part of why truthfulness matters.
        let high2 = run_experiment(&experiment_by_name("High2").unwrap()).unwrap();
        assert!(high2.frugality > 2.5, "High2 frugality {}", high2.frugality);
    }

    #[test]
    fn simulated_pipeline_matches_analytic_in_deterministic_mode() {
        let config = SimulationConfig {
            horizon: 500.0,
            seed: 11,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: lb_sim::estimator::EstimatorConfig::default(),
        };
        for spec in paper_experiments() {
            let analytic = run_experiment(&spec).unwrap();
            let simulated = run_experiment_simulated(&spec, &config).unwrap();
            assert!(
                (analytic.total_latency - simulated.total_latency).abs() < 1e-6,
                "{}: {} vs {}",
                spec.name,
                analytic.total_latency,
                simulated.total_latency
            );
            assert!(
                (analytic.c1_payment() - simulated.c1_payment()).abs() < 1e-6,
                "{}: payment mismatch",
                spec.name
            );
        }
    }
}
