//! Profiler-overhead study: what the cross-shard telemetry rollup costs on
//! top of a full sharded round.
//!
//! Three arms drive the same bid → allocate → execute/verify → settle round
//! through the hierarchical sharded coordinator on the
//! [`crate::round_scaling`] workload:
//!
//! * **off** — the plain round, no profiler attached: the baseline every
//!   deployment pays anyway;
//! * **attached** — a [`RoundProfiler`] profiling every round: shard
//!   workers sketch their per-machine verification wall-times, ship one
//!   profile frame each to the root, and the root merges the rollup and
//!   phase series;
//! * **sampled** — the same profiler with a 1/[`SAMPLE_PERIOD`] sampling
//!   period, the recommended always-on posture: unsampled rounds take the
//!   detached fast path.
//!
//! The reported number is minimum ns **per settled round**, so
//! `overhead = arm/off − 1` is the fraction of round wall-time the rollup
//! actually costs. The round *outcome* is bit-identical across all three
//! arms (the inertness differentials in `tests/prof.rs` enforce that);
//! this study prices the telemetry, it does not re-check inertness.
//!
//! ```text
//! cargo run -p lb-bench --release --bin experiments -- profile-overhead
//! ```

use lb_mechanism::CompensationBonusMechanism;
use lb_prof::RoundProfiler;
use lb_proto::{drive_sharded_round_profiled, Coordinator, FaultPlan, RoundId};
use lb_telemetry::Json;
use std::time::Instant;

use crate::round_scaling::{config, specs};

/// The `n` grid of the overhead study.
pub const OVERHEAD_NS: &[usize] = &[256, 1024, 4096];

/// Shard count, matching the round-scaling study.
pub const SHARDS: usize = 8;

/// Sampling period of the `sampled` arm: one profiled round in this many.
pub const SAMPLE_PERIOD: u64 = 8;

/// Rounds driven per timing sample — two full sampling periods, so the
/// sampled arm amortises to its steady state.
pub const ROUNDS_PER_SAMPLE: u64 = 2 * SAMPLE_PERIOD;

/// One measured grid point (all times minimum ns per settled round).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileOverheadRow {
    /// Number of machines.
    pub n: usize,
    /// Shard coordinators under the root.
    pub shards: usize,
    /// Baseline: the round with no profiler.
    pub off_ns: f64,
    /// Profiler attached, every round profiled.
    pub attached_ns: f64,
    /// Profiler attached, one round in [`SAMPLE_PERIOD`] profiled.
    pub sampled_ns: f64,
}

impl ProfileOverheadRow {
    /// Fractional overhead of the always-profiling arm over the baseline.
    #[must_use]
    pub fn attached_overhead(&self) -> f64 {
        self.attached_ns / self.off_ns - 1.0
    }

    /// Fractional overhead of the sampled arm over the baseline.
    #[must_use]
    pub fn sampled_overhead(&self) -> f64 {
        self.sampled_ns / self.off_ns - 1.0
    }
}

/// Drives `rounds` sharded rounds (round ids `0..rounds`, so the sampled
/// arm actually skips) and returns ns per round. `every == 0` means no
/// profiler at all; the profiler is fresh per batch so rollup growth
/// cannot leak between samples.
fn time_batch(
    mech: &CompensationBonusMechanism,
    specs: &[lb_proto::NodeSpec],
    rounds: u64,
    every: u64,
) -> f64 {
    let config = config();
    let mut profiler = RoundProfiler::sampled(every.max(1));
    let mut sink = 0.0_f64;
    let start = Instant::now();
    for round in 0..rounds {
        let mut root = Coordinator::try_new(
            mech,
            specs.len(),
            config.total_rate,
            RoundId(round),
            config.simulation,
        )
        .expect("bench coordinator")
        .with_strict(true);
        let attach = (every > 0).then_some(&mut profiler);
        let (stats, _) = drive_sharded_round_profiled(
            &mut root,
            specs,
            &config,
            SHARDS,
            &FaultPlan::none(),
            attach,
        )
        .expect("bench round settles");
        #[allow(clippy::cast_precision_loss)]
        {
            sink += stats.messages as f64;
        }
    }
    let elapsed = start.elapsed().as_nanos();
    assert!(sink > 0.0, "work was optimised away");
    #[allow(clippy::cast_precision_loss)]
    {
        elapsed as f64 / rounds as f64
    }
}

/// Measures the grid. `samples` is the per-arm repetition count; arms are
/// interleaved inside every repetition and each arm reports its *minimum*
/// per-round time, so machine-wide load drift hits all arms alike.
#[must_use]
pub fn measure(ns: &[usize], samples: usize) -> Vec<ProfileOverheadRow> {
    assert!(samples > 0, "profile_overhead: need at least one sample");
    let mech = CompensationBonusMechanism::paper();
    ns.iter()
        .map(|&n| {
            let specs = specs(n);
            let (mut off, mut attached, mut sampled) =
                (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for _ in 0..samples {
                off = off.min(time_batch(&mech, &specs, ROUNDS_PER_SAMPLE, 0));
                attached = attached.min(time_batch(&mech, &specs, ROUNDS_PER_SAMPLE, 1));
                sampled = sampled.min(time_batch(&mech, &specs, ROUNDS_PER_SAMPLE, SAMPLE_PERIOD));
            }
            ProfileOverheadRow {
                n,
                shards: SHARDS,
                off_ns: off,
                attached_ns: attached,
                sampled_ns: sampled,
            }
        })
        .collect()
}

/// Renders the human-readable table the `experiments` target prints.
#[must_use]
pub fn render_table(rows: &[ProfileOverheadRow]) -> String {
    let mut out = String::from(
        "     n | shards |     off (µs) | attached (µs) | sampled (µs) | attached ovh | sampled ovh\n",
    );
    out.push_str(
        "-------+--------+--------------+---------------+--------------+--------------+------------\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:6} |{:7} |{:13.1} |{:14.1} |{:13.1} |{:12.1}% |{:10.1}%\n",
            row.n,
            row.shards,
            row.off_ns / 1e3,
            row.attached_ns / 1e3,
            row.sampled_ns / 1e3,
            100.0 * row.attached_overhead(),
            100.0 * row.sampled_overhead(),
        ));
    }
    out
}

/// The rows as JSON objects for the [`crate::bench_log`] artifact.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn rows_json(rows: &[ProfileOverheadRow]) -> Vec<Json> {
    let r4 = |v: f64| (v * 1e4).round() / 1e4;
    rows.iter()
        .map(|row| {
            Json::obj([
                ("n", Json::Num(row.n as f64)),
                ("shards", Json::Num(row.shards as f64)),
                ("off_ns", Json::Num(row.off_ns.round())),
                ("attached_ns", Json::Num(row.attached_ns.round())),
                ("sampled_ns", Json::Num(row.sampled_ns.round())),
                ("attached_overhead", Json::Num(r4(row.attached_overhead()))),
                ("sampled_overhead", Json::Num(r4(row.sampled_overhead()))),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_log::BenchLog;

    #[test]
    fn measure_smoke_reports_finite_positive_times() {
        let rows = measure(&[24], 1);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.off_ns > 0.0 && row.attached_ns > 0.0 && row.sampled_ns > 0.0);
        assert!(row.attached_overhead().is_finite() && row.sampled_overhead().is_finite());
        let json = rows_json(&rows);
        assert_eq!(json[0].get("n").and_then(Json::as_u64), Some(24));
        assert_eq!(
            json[0].get("shards").and_then(Json::as_u64),
            Some(SHARDS as u64)
        );
    }

    #[test]
    fn rows_render_into_a_schema_valid_bench_log() {
        let rows = measure(&[16], 1);
        let mut log = BenchLog::new("profile_overhead", "ns/round");
        log.append("test", rows_json(&rows)).unwrap();
        let reparsed = BenchLog::parse(&log.render()).unwrap();
        assert_eq!(reparsed, log);
    }

    #[test]
    fn the_checked_in_profile_overhead_artifact_parses() {
        let text = include_str!("../../../BENCH_profile_overhead.json");
        let log = BenchLog::parse(text).unwrap();
        assert_eq!(log.bench, "profile_overhead");
        assert_eq!(log.unit, "ns/round");
        assert!(!log.entries.is_empty());
        // The acceptance point: the seed entry measures n = 1024 and its
        // attached rollup costs under 10% of round time there.
        let seed = &log.entries[0];
        let at_1024 = seed
            .rows
            .iter()
            .find(|r| r.get("n").and_then(Json::as_u64) == Some(1024))
            .expect("seed entry covers n = 1024");
        let ovh = at_1024
            .get("attached_overhead")
            .and_then(Json::as_f64)
            .expect("attached_overhead column");
        assert!(ovh < 0.10, "seed attached overhead at n = 1024: {ovh}");
    }
}
