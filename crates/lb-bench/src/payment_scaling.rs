//! Settle-phase payment scaling: batch leave-one-out kernel vs the legacy
//! per-agent rebuild.
//!
//! The `payment_scaling` Criterion group (`benches/payment.rs`) is the
//! statistically careful instrument; this module is the *experiments-target*
//! twin — a dependency-free `Instant` harness that produces the
//! `BENCH_payment.json` artifact and the EXPERIMENTS.md scaling table from
//! the same workload: one full compensation-and-bonus payment vector
//! (Def. 3.3) over a truthful profile of `n` machines with latency
//! parameters cycling through seven magnitudes.
//!
//! ```text
//! cargo run -p lb-bench --release --bin experiments -- payment-scaling
//! ```

use lb_core::allocation::optimal_latency_excluding_legacy;
use lb_core::{pr_allocate, total_latency_linear, Allocation};
use lb_mechanism::{CompensationBonusMechanism, PaymentBreakdown};
use std::time::Instant;

/// The `n` grid of the scaling study (matches the Criterion group).
pub const SCALING_NS: &[usize] = &[64, 256, 1024, 4096, 16384];

/// Largest `n` the quadratic legacy path is timed at when generating the
/// checked-in artifact (beyond this a single legacy settle takes seconds and
/// the comparison is already decided).
pub const LEGACY_CAP: usize = 4096;

/// One measured grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingRow {
    /// Number of machines in the settle phase.
    pub n: usize,
    /// Median wall time of the O(n) batch payment vector, nanoseconds.
    pub batch_ns: f64,
    /// Median wall time of the legacy O(n²) payment vector, nanoseconds
    /// (`None` above [`LEGACY_CAP`]).
    pub legacy_ns: Option<f64>,
    /// `legacy_ns / batch_ns`, when both were measured.
    pub speedup: Option<f64>,
}

/// The bench workload: `t_i` cycling through seven magnitudes so the
/// harmonic sum spans a realistic spread, plus the PR allocation on it.
#[must_use]
pub fn workload(n: usize) -> (Vec<f64>, Allocation, f64) {
    #[allow(clippy::cast_precision_loss)]
    let values: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let r = 20.0;
    let alloc = pr_allocate(&values, r).expect("bench workload allocates");
    (values, alloc, r)
}

/// The pre-batch settle phase, reconstructed verbatim for differential
/// timing: one `optimal_latency_excluding_legacy` rebuild per agent.
///
/// # Panics
/// Panics on the validated bench workload only if the kernel regresses.
#[must_use]
pub fn legacy_payment_breakdown(
    mech: &CompensationBonusMechanism,
    bids: &[f64],
    alloc: &Allocation,
    exec_values: &[f64],
    r: f64,
) -> Vec<PaymentBreakdown> {
    let actual_latency = total_latency_linear(alloc, exec_values).expect("finite latency");
    (0..bids.len())
        .map(|i| {
            let without_i =
                optimal_latency_excluding_legacy(bids, i, r).expect("legacy L_-i computes");
            PaymentBreakdown {
                compensation: mech.valuation.compensation(alloc.rate(i), exec_values[i]),
                bonus: without_i - actual_latency,
            }
        })
        .collect()
}

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn time_ns<F: FnMut() -> usize>(mut f: F, samples: usize) -> f64 {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let sink = f();
        let elapsed = start.elapsed().as_nanos();
        assert!(sink > 0, "work was optimised away");
        #[allow(clippy::cast_precision_loss)]
        times.push(elapsed as f64);
    }
    median_ns(times)
}

/// Measures the grid. `samples` is the per-point repetition count (median
/// reported); `legacy_cap` bounds the quadratic path.
#[must_use]
pub fn measure(ns: &[usize], samples: usize, legacy_cap: usize) -> Vec<ScalingRow> {
    let mech = CompensationBonusMechanism::paper();
    ns.iter()
        .map(|&n| {
            let (values, alloc, r) = workload(n);
            let batch_ns = time_ns(
                || {
                    mech.payment_breakdown(&values, &alloc, &values, r)
                        .expect("batch settle")
                        .len()
                },
                samples,
            );
            let legacy_ns = (n <= legacy_cap).then(|| {
                time_ns(
                    || legacy_payment_breakdown(&mech, &values, &alloc, &values, r).len(),
                    samples,
                )
            });
            ScalingRow {
                n,
                batch_ns,
                legacy_ns,
                speedup: legacy_ns.map(|l| l / batch_ns),
            }
        })
        .collect()
}

/// Renders the JSON artifact (`BENCH_payment.json`), hand-rolled to keep
/// lb-bench serde-free.
#[must_use]
pub fn to_json(rows: &[ScalingRow]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"payment_scaling\",\n  \"unit\": \"ns/settle-phase\",\n  \"rows\": [\n",
    );
    for (k, row) in rows.iter().enumerate() {
        let legacy = row
            .legacy_ns
            .map_or_else(|| "null".to_string(), |v| format!("{v:.0}"));
        let speedup = row
            .speedup
            .map_or_else(|| "null".to_string(), |v| format!("{v:.1}"));
        out.push_str(&format!(
            "    {{\"n\": {}, \"batch_ns\": {:.0}, \"legacy_ns\": {}, \"speedup\": {}}}{}\n",
            row.n,
            row.batch_ns,
            legacy,
            speedup,
            if k + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The rows as JSON objects for the [`crate::bench_log`] artifact (the
/// append-aware successor of [`to_json`]'s whole-file form).
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn rows_json(rows: &[ScalingRow]) -> Vec<lb_telemetry::Json> {
    use lb_telemetry::Json;
    rows.iter()
        .map(|row| {
            Json::obj([
                ("n", Json::Num(row.n as f64)),
                ("batch_ns", Json::Num(row.batch_ns.round())),
                (
                    "legacy_ns",
                    row.legacy_ns.map_or(Json::Null, |v| Json::Num(v.round())),
                ),
                (
                    "speedup",
                    row.speedup
                        .map_or(Json::Null, |v| Json::Num((v * 10.0).round() / 10.0)),
                ),
            ])
        })
        .collect()
}

/// Renders the human-readable table the `experiments` target prints.
#[must_use]
pub fn render_table(rows: &[ScalingRow]) -> String {
    let mut out = String::from("     n |    batch (µs) |   legacy (µs) | speedup\n");
    out.push_str("-------+---------------+---------------+--------\n");
    for row in rows {
        let legacy = row.legacy_ns.map_or_else(
            || "     (skipped)".to_string(),
            |v| format!("{:14.1}", v / 1e3),
        );
        let speedup = row
            .speedup
            .map_or_else(|| "      —".to_string(), |v| format!("{v:7.1}"));
        out.push_str(&format!(
            "{:6} |{:14.1} |{} |{}\n",
            row.n,
            row.batch_ns / 1e3,
            legacy,
            speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_and_legacy_breakdowns_agree_on_the_bench_workload() {
        let mech = CompensationBonusMechanism::paper();
        let (values, alloc, r) = workload(64);
        let batch = mech.payment_breakdown(&values, &alloc, &values, r).unwrap();
        let legacy = legacy_payment_breakdown(&mech, &values, &alloc, &values, r);
        assert_eq!(batch.len(), legacy.len());
        for (i, (b, l)) in batch.iter().zip(&legacy).enumerate() {
            let scale = l.total().abs().max(1.0);
            assert!(
                (b.total() - l.total()).abs() < 1e-9 * scale,
                "agent {i}: {} vs {}",
                b.total(),
                l.total()
            );
        }
    }

    #[test]
    fn json_artifact_is_well_formed() {
        let rows = vec![
            ScalingRow {
                n: 64,
                batch_ns: 1000.0,
                legacy_ns: Some(50_000.0),
                speedup: Some(50.0),
            },
            ScalingRow {
                n: 16384,
                batch_ns: 300_000.0,
                legacy_ns: None,
                speedup: None,
            },
        ];
        let json = to_json(&rows);
        assert!(json.contains("\"payment_scaling\""));
        assert!(json.contains("\"n\": 64"));
        assert!(json.contains("\"legacy_ns\": null"));
        assert!(json.ends_with("}\n"));
        // Balanced braces/brackets (cheap structural sanity without serde).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn measure_smoke_reports_speedup_at_tiny_n() {
        let rows = measure(&[16, 64], 1, 64);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.batch_ns > 0.0);
            assert!(row.legacy_ns.is_some());
        }
    }
}
