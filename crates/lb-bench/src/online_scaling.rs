//! Online-event scaling study: the O(1) incremental path vs from-scratch
//! per-event recomputation.
//!
//! The online mechanism's claim (DESIGN.md §18) is that a membership event
//! — join, leave, re-bid — costs O(1) amortized: the harmonic sum
//! `S = Σ 1/b_i` is updated in double-double by one add/sub, and every
//! machine's PR rate is available through the factored closed form
//! `x_i = (1/b_i)/S · R` without touching the other machines. The naive
//! alternative recomputes `S` and the materialised allocation from scratch
//! after every event, O(n) each. This study drives the *same*
//! seed-deterministic churn stream ([`lb_sim::churn::ChurnGen`]) through
//! both paths and reports, per live-population size:
//!
//! * **events/sec (incremental)** — the [`lb_mechanism::OnlinePool`] event
//!   path, reading back the affected machine's rate after each event;
//! * **events/sec (scratch)** — full [`lb_core::inv_sum_dd`] +
//!   [`lb_core::pr_allocate_with_sum`] rebuild per event, measured on a
//!   bounded subsample of the stream (the full product would take minutes
//!   at the top grid point — which is the point);
//! * **speedup** — the ratio, the ISSUE-10 acceptance number (≥100× at
//!   10⁵ events);
//! * **re-sums** and the final relative error of the incremental sum
//!   against a from-scratch fold (must sit below 10⁻¹²).
//!
//! ```text
//! cargo run -p lb-bench --release --bin experiments -- online-scaling
//! ```

use lb_core::{inv_sum_dd, pr_allocate_with_sum};
use lb_mechanism::OnlinePool;
use lb_sim::churn::{ChurnConfig, ChurnEvent, ChurnGen};
use lb_telemetry::Json;
use std::time::Instant;

/// The slot-space grid: live population starts at half of each.
pub const SCALING_SLOTS: &[usize] = &[256, 1_024, 4_096, 16_384];

/// Events per grid point in the full study — the ISSUE-10 churn scale.
pub const EVENTS_PER_POINT: usize = 100_000;

/// Scratch-path rebuilds measured per grid point (uniformly sampled from
/// the stream, then extrapolated to events/sec).
pub const SCRATCH_SAMPLE: usize = 1_000;

/// Total arrival rate distributed by the bench pool.
pub const TOTAL_RATE: f64 = 20.0;

/// Churn-stream seed (fixed: the study is deterministic end to end).
pub const STREAM_SEED: u64 = 42;

/// One measured grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineScalingRow {
    /// Slot-space width (live population ≈ half at any moment).
    pub slots: usize,
    /// Events driven through the incremental path.
    pub events: usize,
    /// Incremental-path throughput.
    pub inc_events_per_sec: f64,
    /// From-scratch-rebuild throughput (subsampled, extrapolated).
    pub scratch_events_per_sec: f64,
    /// `inc_events_per_sec / scratch_events_per_sec`.
    pub speedup: f64,
    /// Compensated re-sums the incremental sum needed over the stream.
    pub resums: u64,
    /// Final relative error of the incremental sum vs a from-scratch fold.
    pub s_rel_error: f64,
}

/// The churn shape of the study: half-full slot space, pure event path
/// (no settle ticks — tick cost is a protocol-tier property measured by
/// [`crate::round_scaling`]).
#[must_use]
pub fn churn(slots: usize, events: usize) -> ChurnConfig {
    ChurnConfig {
        slots,
        initial: slots / 2,
        events,
        half_width: 3.0,
        tick_every: 0,
        min_live: 2,
    }
}

/// Applies one event to a mirror membership vector.
fn mirror_apply(mirror: &mut [Option<f64>], event: ChurnEvent) {
    match event {
        ChurnEvent::Join { slot, value } | ChurnEvent::RateChange { slot, value } => {
            mirror[slot] = Some(value);
        }
        ChurnEvent::Leave { slot } => mirror[slot] = None,
        ChurnEvent::Tick => {}
    }
}

fn event_slot(event: ChurnEvent) -> Option<usize> {
    match event {
        ChurnEvent::Join { slot, .. }
        | ChurnEvent::Leave { slot }
        | ChurnEvent::RateChange { slot, .. } => Some(slot),
        ChurnEvent::Tick => None,
    }
}

/// Drives the stream through both paths at each grid size.
///
/// # Panics
/// Panics if an event fails on the validated bench stream — that is a
/// regression in the online pool, not a measurement condition.
#[must_use]
pub fn measure(slot_grid: &[usize], events: usize, scratch_sample: usize) -> Vec<OnlineScalingRow> {
    assert!(
        events > 0 && scratch_sample > 0,
        "online_scaling: empty run"
    );
    slot_grid
        .iter()
        .map(|&slots| {
            let cfg = churn(slots, events);
            let stream: Vec<ChurnEvent> = ChurnGen::new(cfg, STREAM_SEED).collect();

            // Incremental path: apply the event, read back the affected
            // machine's rate through the O(1) factored view.
            let mut pool = OnlinePool::new(TOTAL_RATE).expect("bench rate is valid");
            let mut sink = 0.0f64;
            let start = Instant::now();
            for &event in &stream {
                match event {
                    ChurnEvent::Join { slot, value } => {
                        pool.join(slot, value).expect("bench join");
                        sink += pool.rate_of(slot).unwrap_or(0.0);
                    }
                    ChurnEvent::Leave { slot } => {
                        pool.leave(slot).expect("bench leave");
                    }
                    ChurnEvent::RateChange { slot, value } => {
                        pool.rate_change(slot, value).expect("bench rebid");
                        sink += pool.rate_of(slot).unwrap_or(0.0);
                    }
                    ChurnEvent::Tick => {}
                }
            }
            let inc_elapsed = start.elapsed().as_secs_f64();
            std::hint::black_box(sink);

            // From-scratch path: replay the same stream against a mirror;
            // on a uniform subsample of events, rebuild S and the full
            // materialised allocation, timing only the rebuilds.
            let mut mirror: Vec<Option<f64>> = vec![None; slots];
            let stride = (stream.len() / scratch_sample).max(1);
            let mut rebuilds = 0usize;
            let mut scratch_elapsed = 0.0f64;
            for (k, &event) in stream.iter().enumerate() {
                mirror_apply(&mut mirror, event);
                if k % stride != 0 || event_slot(event).is_none() {
                    continue;
                }
                let live: Vec<f64> = mirror.iter().copied().flatten().collect();
                if live.len() < 2 {
                    continue;
                }
                let t0 = Instant::now();
                let s = inv_sum_dd(&live);
                let alloc = pr_allocate_with_sum(&live, TOTAL_RATE, s).expect("bench allocation");
                scratch_elapsed += t0.elapsed().as_secs_f64();
                std::hint::black_box(alloc.rate(0));
                rebuilds += 1;
            }

            #[allow(clippy::cast_precision_loss)]
            let inc_events_per_sec = stream.len() as f64 / inc_elapsed;
            #[allow(clippy::cast_precision_loss)]
            let scratch_events_per_sec = rebuilds as f64 / scratch_elapsed;

            let live: Vec<f64> = mirror.iter().copied().flatten().collect();
            let scratch_s = inv_sum_dd(&live).value();
            let s_rel_error = (pool.harmonic_sum().value() - scratch_s).abs() / scratch_s.abs();

            OnlineScalingRow {
                slots,
                events: stream.len(),
                inc_events_per_sec,
                scratch_events_per_sec,
                speedup: inc_events_per_sec / scratch_events_per_sec,
                resums: pool.resums(),
                s_rel_error,
            }
        })
        .collect()
}

/// Renders the human-readable table the `experiments` target prints.
#[must_use]
pub fn render_table(rows: &[OnlineScalingRow]) -> String {
    let mut out = String::from(
        "    slots |   events | inc events/s | scratch events/s | speedup | resums | S rel err\n",
    );
    out.push_str(
        "----------+----------+--------------+------------------+---------+--------+----------\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:9} |{:9} |{:13.0} |{:17.0} |{:7.1}x |{:7} | {:8.1e}\n",
            row.slots,
            row.events,
            row.inc_events_per_sec,
            row.scratch_events_per_sec,
            row.speedup,
            row.resums,
            row.s_rel_error,
        ));
    }
    out
}

/// The rows as JSON objects for the [`crate::bench_log`] artifact.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn rows_json(rows: &[OnlineScalingRow]) -> Vec<Json> {
    let r1 = |v: f64| (v * 10.0).round() / 10.0;
    rows.iter()
        .map(|row| {
            Json::obj([
                ("slots", Json::Num(row.slots as f64)),
                ("events", Json::Num(row.events as f64)),
                ("inc_events_per_sec", Json::Num(r1(row.inc_events_per_sec))),
                (
                    "scratch_events_per_sec",
                    Json::Num(r1(row.scratch_events_per_sec)),
                ),
                ("speedup", Json::Num(r1(row.speedup))),
                ("resums", Json::Num(row.resums as f64)),
                ("s_rel_error", Json::Num(row.s_rel_error)),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_log::BenchLog;

    #[test]
    fn measure_smoke_reports_finite_positive_numbers() {
        let rows = measure(&[64], 2_000, 50);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.events, 2_000);
        assert!(row.inc_events_per_sec > 0.0 && row.inc_events_per_sec.is_finite());
        assert!(row.scratch_events_per_sec > 0.0 && row.scratch_events_per_sec.is_finite());
        assert!(row.speedup > 0.0 && row.speedup.is_finite());
        assert!(
            row.s_rel_error <= 1e-12,
            "incremental sum drifted {:e}",
            row.s_rel_error
        );
        let json = rows_json(&rows);
        assert_eq!(json[0].get("slots").and_then(Json::as_u64), Some(64));
        assert!(json[0].get("speedup").is_some());
    }

    #[test]
    fn rows_render_into_a_schema_valid_bench_log() {
        let rows = measure(&[32], 500, 25);
        let mut log = BenchLog::new("online_scaling", "events/sec");
        log.append("test", rows_json(&rows)).unwrap();
        let reparsed = BenchLog::parse(&log.render()).unwrap();
        assert_eq!(reparsed, log);
    }

    #[test]
    fn the_checked_in_online_scaling_artifact_parses() {
        let text = include_str!("../../../BENCH_online.json");
        let log = BenchLog::parse(text).unwrap();
        assert_eq!(log.bench, "online_scaling");
        assert_eq!(log.unit, "events/sec");
        assert!(!log.entries.is_empty());
        // The acceptance claim: at the 10⁵-event churn scale the
        // incremental path beats per-event recomputation by ≥100×.
        let seed = &log.entries[0];
        assert!(seed
            .rows
            .iter()
            .filter_map(|r| r.get("events").and_then(Json::as_u64))
            .any(|e| e >= 100_000));
        assert!(
            seed.rows
                .iter()
                .filter_map(|r| r.get("speedup").and_then(Json::as_f64))
                .any(|s| s >= 100.0),
            "no grid point reached the 100x acceptance speedup"
        );
    }
}
