//! Minimal fixed-width ASCII table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple left-aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row arity does not match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "Table: row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of display-formatted cells.
    ///
    /// # Panics
    /// Panics if the row arity does not match the header.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(ToString::to_string).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let hline = |out: &mut String| {
            for w in &widths {
                let _ = write!(out, "+{}", "-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        hline(&mut out);
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, "| {h:<width$} ", width = widths[i]);
        }
        out.push_str("|\n");
        hline(&mut out);
        for row in &self.rows {
            for i in 0..cols {
                let _ = write!(out, "| {:<width$} ", row[i], width = widths[i]);
            }
            out.push_str("|\n");
        }
        hline(&mut out);
        out
    }
}

/// Formats a float with 2 decimal places (the paper's precision).
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a signed percentage with one decimal place.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1.00".into()]);
        t.row(&["longer".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| name   | value |"));
        assert!(s.contains("| longer | 2     |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // All lines same width.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(78.4313), "78.43");
        assert_eq!(pct(0.1103), "+11.0%");
        assert_eq!(pct(-0.5), "-50.0%");
    }
}
