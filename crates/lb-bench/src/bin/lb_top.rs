//! `lb-top` — a terminal dashboard over lbmv telemetry recordings.
//!
//! Reads a JSONL trace recording (the [`lb_telemetry::to_jsonl`] format every
//! instrumented driver can produce) from a file or from a live
//! [`lb_telemetry::ExposeServer`] `/trace` endpoint, rebuilds the span forest
//! and metric registry, and renders per-round phase timings, per-machine
//! allocation and payment gauges, per-shard phase gauges for sharded rounds,
//! the critical-path round profile, network counters and retransmission
//! histograms as plain ANSI text. In `--url` mode the live `/profile` and
//! `/regressions` documents (published by `lb-prof`) are fetched alongside
//! the trace and rendered as extra panels.
//!
//! ```text
//! lb_top --file round_trace.jsonl --once        # one frame (CI mode)
//! lb_top --url 127.0.0.1:9100                   # live, refresh every second
//! lb_top --url 127.0.0.1:9100 --interval 0.25   # faster refresh
//! ```
//!
//! `--once` renders exactly one frame with no cursor control, so output is
//! pipe- and CI-friendly; live mode redraws in place until interrupted.

use lb_prof::PHASES;
use lb_telemetry::{
    from_jsonl, replay_spans, CompletedSpan, FieldValue, Json, MetricsRegistry, MetricsSnapshot,
    TelemetryEvent,
};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

/// Where the recording comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Source {
    /// A JSONL file on disk.
    File(String),
    /// `host:port` of a live exposition server; `/trace` is fetched.
    Url(String),
}

#[derive(Debug, Clone, PartialEq)]
struct Args {
    source: Source,
    once: bool,
    interval: f64,
}

const USAGE: &str = "usage: lb_top (--file PATH | --url HOST:PORT) [--once] [--interval SECS]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut file = None;
    let mut url = None;
    let mut once = false;
    let mut interval = 1.0f64;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--file" => file = Some(value("--file")?),
            "--url" => url = Some(value("--url")?),
            "--once" => once = true,
            "--interval" => {
                interval = value("--interval")?
                    .parse()
                    .map_err(|e| format!("--interval: {e}"))?;
                if !(interval > 0.0 && interval.is_finite()) {
                    return Err("--interval must be a positive number".into());
                }
            }
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    let source = match (file, url) {
        (Some(f), None) => Source::File(f),
        (None, Some(u)) => Source::Url(u),
        _ => return Err(format!("exactly one of --file/--url required\n{USAGE}")),
    };
    Ok(Args {
        source,
        once,
        interval,
    })
}

/// Minimal HTTP/1.0 GET against the std-only exposition server: one request,
/// read to EOF, split off the headers.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("socket timeout: {e}"))?;
    let request = format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let (status, rest) = response
        .split_once("\r\n")
        .ok_or_else(|| format!("malformed response from {addr}"))?;
    if !status.contains("200") {
        return Err(format!("GET {path}: {status}"));
    }
    let body = rest
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or_default();
    Ok(body.to_string())
}

fn load_events(source: &Source) -> Result<Vec<TelemetryEvent>, String> {
    let text = match source {
        Source::File(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?
        }
        Source::Url(addr) => http_get(addr, "/trace")?,
    };
    from_jsonl(&text).map_err(|e| format!("parse recording: {e}"))
}

/// Live documents only an exposition server can provide: the `lb-prof`
/// rollup at `/profile` and the regression-sentinel verdicts at
/// `/regressions`. Both endpoints serve `{}` until a profiler publishes,
/// so "nothing yet" and "fetch failed" alike render as an absent panel.
#[derive(Debug, Default)]
struct LiveDocs {
    profile: Option<Json>,
    regressions: Option<Json>,
}

impl LiveDocs {
    /// Fetches both documents, tolerating any failure: a dashboard must
    /// keep rendering the trace even against an older server without the
    /// profile endpoints.
    fn fetch(addr: &str) -> Self {
        let doc = |path: &str| {
            http_get(addr, path)
                .ok()
                .and_then(|body| Json::parse(&body).ok())
        };
        Self {
            profile: doc("/profile"),
            regressions: doc("/regressions"),
        }
    }
}

fn field_u64(span: &CompletedSpan, key: &str) -> Option<u64> {
    span.fields.iter().find(|f| f.key == key).and_then(|f| {
        if let FieldValue::U64(v) = f.value {
            Some(v)
        } else {
            None
        }
    })
}

fn bar(fraction: f64, width: usize) -> String {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let filled = ((fraction.clamp(0.0, 1.0) * width as f64).round() as usize).min(width);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

fn phase_line(out: &mut String, spans: &[CompletedSpan], round: &CompletedSpan) {
    let phases: Vec<&CompletedSpan> = spans
        .iter()
        .filter(|s| s.parent == Some(round.id) && s.name.starts_with("phase."))
        .collect();
    let total = (round.end - round.start).max(f64::EPSILON);
    for phase in phases {
        let dur = phase.end - phase.start;
        out.push_str(&format!(
            "    {:<22} {:>10.6}s  {}\n",
            phase.name,
            dur,
            bar(dur / total, 24)
        ));
    }
}

/// Renders one dashboard frame from a parsed recording. `live` carries the
/// `/profile` and `/regressions` documents in `--url` mode; file mode
/// passes `None` and those panels are simply absent.
fn render(events: &[TelemetryEvent], source_label: &str, live: Option<&LiveDocs>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "lb-top — {source_label} — {} events\n\n",
        events.len()
    ));

    let mut registry = MetricsRegistry::new();
    registry.ingest(events);
    let snapshot = registry.snapshot();

    match replay_spans(events) {
        Ok(spans) => {
            let rounds: Vec<&CompletedSpan> = spans.iter().filter(|s| s.name == "round").collect();
            out.push_str(&format!("ROUNDS ({})\n", rounds.len()));
            for round in rounds {
                let id = field_u64(round, "round").unwrap_or(0);
                let n = field_u64(round, "n").unwrap_or(0);
                let trace = match (field_u64(round, "trace_hi"), field_u64(round, "trace_lo")) {
                    (Some(hi), Some(lo)) => format!("  trace {hi:016x}{lo:016x}"),
                    _ => String::new(),
                };
                out.push_str(&format!(
                    "  round {id}  n={n}  {:.6}s{trace}\n",
                    round.end - round.start
                ));
                phase_line(&mut out, &spans, round);
            }
            let node_spans = spans.iter().filter(|s| s.name.starts_with("node.")).count();
            out.push_str(&format!("  node spans: {node_spans}\n"));
        }
        Err(e) => out.push_str(&format!("ROUNDS — trace does not replay: {e}\n")),
    }

    render_machines(&mut out, &snapshot);
    render_shards(&mut out, &snapshot);
    render_profile(&mut out, events);
    render_verification(&mut out, &snapshot);
    render_durability(&mut out, &snapshot);
    render_metrics(&mut out, &snapshot);
    if let Some(live) = live {
        render_live(&mut out, live);
    }
    out
}

/// The per-shard panel of a sharded round: the `shard.<s>.<phase>.seconds`
/// gauges the registry derives from shard workers' `shard.phase.seconds`
/// events, one row per shard with phases in protocol order and a bar over
/// the shard's total.
fn render_shards(out: &mut String, snapshot: &MetricsSnapshot) {
    let mut rows: Vec<(u64, [f64; 4])> = Vec::new();
    for (name, value) in &snapshot.gauges {
        let Some(rest) = name.strip_prefix("shard.") else {
            continue;
        };
        let Some((shard, phase)) = rest.split_once('.') else {
            continue;
        };
        let (Ok(shard), Some(phase)) = (shard.parse::<u64>(), phase.strip_suffix(".seconds"))
        else {
            continue;
        };
        let Some(slot) = PHASES.iter().position(|p| *p == phase) else {
            continue;
        };
        match rows.iter_mut().find(|r| r.0 == shard) {
            Some(row) => row.1[slot] = *value,
            None => {
                let mut walls = [f64::NAN; 4];
                walls[slot] = *value;
                rows.push((shard, walls));
            }
        }
    }
    if rows.is_empty() {
        return;
    }
    rows.sort_by_key(|r| r.0);
    let total = |walls: &[f64; 4]| walls.iter().filter(|w| w.is_finite()).sum::<f64>();
    let max_total = rows
        .iter()
        .map(|r| total(&r.1))
        .fold(0.0f64, f64::max)
        .max(1e-300);
    out.push_str(&format!("\nSHARDS ({})\n", rows.len()));
    out.push_str(&format!(
        "  shard  {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        PHASES[0], PHASES[1], PHASES[2], PHASES[3], "total"
    ));
    for (shard, walls) in &rows {
        let total = total(walls);
        out.push_str(&format!(
            "  s{shard:<5} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {total:>10.6}  {}\n",
            walls[0],
            walls[1],
            walls[2],
            walls[3],
            bar(total / max_total, 16)
        ));
    }
}

/// The critical-path panel: the recording's round span forest analysed by
/// `lb-prof`. A recording without a round span (or one that does not
/// replay) simply has no panel.
fn render_profile(out: &mut String, events: &[TelemetryEvent]) {
    let Ok(profile) = lb_prof::profile_events(events) else {
        return;
    };
    out.push_str("\nPROFILE (critical path)\n");
    for line in profile.render_text().lines() {
        out.push_str(&format!("  {line}\n"));
    }
}

/// The live panels: `/profile` (cross-shard rollup) and `/regressions`
/// (sentinel verdicts), rendered only once a profiler has published — the
/// endpoints serve `{}` before that.
fn render_live(out: &mut String, live: &LiveDocs) {
    if let Some(doc) = live
        .profile
        .as_ref()
        .filter(|d| d.get("rounds_profiled").is_some())
    {
        out.push_str("\nLIVE PROFILE\n");
        for key in [
            "rounds_profiled",
            "sampling_period",
            "profile_frames",
            "profile_bytes",
        ] {
            if let Some(v) = doc.get(key).and_then(Json::as_f64) {
                out.push_str(&format!("  {key:<18} {v:>12.0}\n"));
            }
        }
        if let Some(fleet) = doc.get("fleet") {
            out.push_str(&format!(
                "  {:<12} {:>8} {:>12} {:>12} {:>12}\n",
                "fleet phase", "count", "mean ms", "p99 ms", "max ms"
            ));
            for phase in PHASES.iter().chain(["machine_wall"].iter()) {
                let Some(s) = fleet.get(phase) else { continue };
                let ms = |key: &str| s.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN) * 1e3;
                out.push_str(&format!(
                    "  {phase:<12} {:>8.0} {:>12.3} {:>12.3} {:>12.3}\n",
                    s.get("count").and_then(Json::as_f64).unwrap_or(0.0),
                    ms("mean_s"),
                    ms("p99_s"),
                    ms("max_s"),
                ));
            }
        }
    }
    if let Some(doc) = live
        .regressions
        .as_ref()
        .filter(|d| d.get("verdicts").is_some())
    {
        let regressed = doc.get("regressed").and_then(Json::as_bool) == Some(true);
        out.push_str(&format!(
            "\nREGRESSIONS vs {:?} ({})\n",
            doc.get("label").and_then(Json::as_str).unwrap_or("?"),
            if regressed { "REGRESSED" } else { "ok" }
        ));
        for v in doc.get("verdicts").and_then(Json::as_array).unwrap_or(&[]) {
            let num = |key: &str| v.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
            out.push_str(&format!(
                "  {:<10} mean {:>10.3} ms  ci-lo {:>10.3} ms  threshold {:>10.3} ms  {}\n",
                v.get("phase").and_then(Json::as_str).unwrap_or("?"),
                num("observed_mean_ms"),
                num("ci_lo_ms"),
                num("threshold_ms"),
                if v.get("regressed").and_then(Json::as_bool) == Some(true) {
                    "REGRESSED"
                } else {
                    "ok"
                }
            ));
        }
    }
}

/// The verification panel: per-invariant pass/fail from the
/// `audit.check.*` gauges the `lb-audit` monitor re-emits, plus the
/// headline margin/drift gauges and per-check violation counters.
fn render_verification(out: &mut String, snapshot: &MetricsSnapshot) {
    let mut checks: Vec<(&str, f64)> = snapshot
        .gauges
        .iter()
        .filter_map(|(name, value)| name.strip_prefix("audit.check.").map(|c| (c, *value)))
        .collect();
    if checks.is_empty() {
        return;
    }
    checks.sort_by_key(|(name, _)| *name);
    let rounds = snapshot
        .counters
        .iter()
        .find(|(name, _)| name == "audit.rounds")
        .map_or(0, |(_, v)| *v);
    out.push_str(&format!("\nVERIFICATION ({rounds} rounds audited)\n"));
    for (name, value) in checks {
        let verdict = if value == 1.0 { "ok" } else { "VIOLATED" };
        let marker = if value == 1.0 { "#" } else { "!" };
        out.push_str(&format!("  {marker} audit.check.{name:<14} {verdict}\n"));
    }
    for gauge in ["audit.margin.last", "audit.margin.min", "audit.drift.max"] {
        if let Some(value) = snapshot
            .gauges
            .iter()
            .find(|(name, _)| name == gauge)
            .map(|(_, v)| *v)
        {
            out.push_str(&format!("    {gauge:<22} {value:>14.6e}\n"));
        }
    }
    for (name, count) in &snapshot.counters {
        if let Some(check) = name.strip_prefix("audit.violation.") {
            out.push_str(&format!("    violations[{check}]: {count}\n"));
        }
    }
}

/// The durability panel: the crash-recovery gauges a durable session
/// exports (`durable.crashes`, `durable.recovered_rounds`, …).
fn render_durability(out: &mut String, snapshot: &MetricsSnapshot) {
    let mut rows: Vec<(&str, f64)> = snapshot
        .gauges
        .iter()
        .filter_map(|(name, value)| name.strip_prefix("durable.").map(|c| (c, *value)))
        .collect();
    if rows.is_empty() {
        return;
    }
    rows.sort_by_key(|(name, _)| *name);
    out.push_str("\nDURABILITY\n");
    for (name, value) in rows {
        out.push_str(&format!("  durable.{name:<24} {value:>12.0}\n"));
    }
}

fn render_machines(out: &mut String, snapshot: &MetricsSnapshot) {
    let mut rows: Vec<(u64, f64, f64)> = Vec::new();
    for (name, value) in &snapshot.gauges {
        if let Some(m) = name
            .strip_prefix("alloc.rate.m")
            .and_then(|m| m.parse().ok())
        {
            rows.push((m, *value, f64::NAN));
        }
    }
    for (name, value) in &snapshot.gauges {
        if let Some(m) = name
            .strip_prefix("payment.m")
            .and_then(|m| m.parse::<u64>().ok())
        {
            if let Some(row) = rows.iter_mut().find(|r| r.0 == m) {
                row.2 = *value;
            } else {
                rows.push((m, f64::NAN, *value));
            }
        }
    }
    if rows.is_empty() {
        return;
    }
    rows.sort_by_key(|r| r.0);
    let max_rate = rows.iter().map(|r| r.1).fold(0.0f64, f64::max).max(1e-300);
    out.push_str(&format!("\nMACHINES ({})\n", rows.len()));
    out.push_str("  machine        rate                              payment\n");
    for (m, rate, payment) in rows {
        out.push_str(&format!(
            "  m{m:<4} {rate:>12.6}  {}  {payment:>12.6}\n",
            bar(rate / max_rate, 24)
        ));
    }
    if let Some(total) = snapshot
        .gauges
        .iter()
        .find(|(n, _)| n == "round.payment.total")
        .map(|(_, v)| *v)
    {
        out.push_str(&format!("  total payment: {total:.6}\n"));
    }
}

fn render_metrics(out: &mut String, snapshot: &MetricsSnapshot) {
    if !snapshot.counters.is_empty() {
        out.push_str("\nCOUNTERS\n");
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("  {name:<32} {value:>12}\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("\nHISTOGRAMS (count / mean / p50 / p95 / p99)\n");
        for (name, h) in &snapshot.histograms {
            out.push_str(&format!(
                "  {name:<32} {:>8}  {:>10.6} {:>10.6} {:>10.6} {:>10.6}\n",
                h.count, h.mean, h.p50, h.p95, h.p99
            ));
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    let label = match &args.source {
        Source::File(path) => path.clone(),
        Source::Url(addr) => format!("http://{addr}/trace"),
    };
    loop {
        let events = load_events(&args.source)?;
        let live = match &args.source {
            Source::File(_) => None,
            Source::Url(addr) => Some(LiveDocs::fetch(addr)),
        };
        let frame = render(&events, &label, live.as_ref());
        if args.once {
            print!("{frame}");
            return Ok(());
        }
        // Live mode: clear and home, redraw, sleep. Plain ANSI, no raw mode.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_secs_f64(args.interval));
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if let Err(message) = run(&args) {
        eprintln!("lb_top: {message}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = include_str!("../../fixtures/round_trace.jsonl");

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn args_parse_and_reject() {
        let a = parse_args(&strings(&["--file", "x.jsonl", "--once"])).unwrap();
        assert_eq!(a.source, Source::File("x.jsonl".into()));
        assert!(a.once);
        let a = parse_args(&strings(&["--url", "127.0.0.1:9", "--interval", "0.5"])).unwrap();
        assert_eq!(a.source, Source::Url("127.0.0.1:9".into()));
        assert!((a.interval - 0.5).abs() < 1e-12);
        assert!(parse_args(&strings(&[])).is_err());
        assert!(parse_args(&strings(&["--file", "a", "--url", "b"])).is_err());
        assert!(parse_args(&strings(&["--file", "a", "--interval", "-1"])).is_err());
        assert!(parse_args(&strings(&["--bogus"])).is_err());
    }

    #[test]
    fn fixture_renders_every_section() {
        let events = from_jsonl(FIXTURE).expect("fixture parses");
        let frame = render(&events, "fixture", None);
        for needle in [
            "ROUNDS",
            "phase.collect_bids",
            "phase.settle",
            "MACHINES",
            "total payment:",
            "SHARDS (2)",
            "PROFILE (critical path)",
            "critical-path coverage",
            "VERIFICATION (1 rounds audited)",
            "audit.check.conservation",
            "audit.margin.min",
            "violations[drift]: 1",
            "DURABILITY",
            "durable.crashes",
            "durable.truncated_tail_bytes",
            "COUNTERS",
            "net.messages",
            "HISTOGRAMS",
            "chaos.backoff",
        ] {
            assert!(frame.contains(needle), "missing {needle:?} in:\n{frame}");
        }
    }

    #[test]
    fn verification_panel_marks_failed_checks() {
        let events = from_jsonl(FIXTURE).expect("fixture parses");
        let frame = render(&events, "fixture", None);
        // The fixture's drift check is violated, every other check passes.
        assert!(frame.contains("! audit.check.drift"), "{frame}");
        assert!(frame.contains("VIOLATED"), "{frame}");
        assert!(frame.contains("# audit.check.conservation"), "{frame}");
        // Panels are absent entirely when a recording has no audit events.
        let plain: Vec<TelemetryEvent> = events
            .into_iter()
            .filter(|e| !e.name.starts_with("audit.") && !e.name.starts_with("durable."))
            .collect();
        let frame = render(&plain, "fixture", None);
        assert!(!frame.contains("VERIFICATION"), "{frame}");
        assert!(!frame.contains("DURABILITY"), "{frame}");
    }

    #[test]
    fn shard_panel_orders_shards_and_scales_bars() {
        let events = from_jsonl(FIXTURE).expect("fixture parses");
        let frame = render(&events, "fixture", None);
        // Both fixture shards render, in index order, with phase columns.
        let s0 = frame.find("  s0").expect("shard 0 row");
        let s1 = frame.find("  s1").expect("shard 1 row");
        assert!(s0 < s1, "shard rows out of order:\n{frame}");
        assert!(frame.contains("collect"), "{frame}");
        assert!(frame.contains("settle"), "{frame}");
        // A recording with no shard gauges has no panel at all.
        let unsharded: Vec<TelemetryEvent> = from_jsonl(FIXTURE)
            .unwrap()
            .into_iter()
            .filter(|e| !e.name.starts_with("shard."))
            .collect();
        let frame = render(&unsharded, "fixture", None);
        assert!(!frame.contains("SHARDS"), "{frame}");
    }

    #[test]
    fn live_docs_render_profile_and_regressions_panels() {
        let events = from_jsonl(FIXTURE).expect("fixture parses");
        // Unpublished endpoints serve `{}`: no live panels.
        let empty = LiveDocs {
            profile: Some(Json::parse("{}").unwrap()),
            regressions: Some(Json::parse("{}").unwrap()),
        };
        let frame = render(&events, "fixture", Some(&empty));
        assert!(!frame.contains("LIVE PROFILE"), "{frame}");
        assert!(!frame.contains("REGRESSIONS"), "{frame}");
        // Published documents render both panels with their headline rows.
        let live = LiveDocs {
            profile: Some(
                Json::parse(
                    r#"{"rounds_profiled": 3, "sampling_period": 1, "profile_frames": 24,
                        "profile_bytes": 960,
                        "fleet": {"settle": {"count": 3, "mean_s": 0.004, "p50_s": 0.004,
                                             "p99_s": 0.005, "max_s": 0.005}}}"#,
                )
                .unwrap(),
            ),
            regressions: Some(
                Json::parse(
                    r#"{"bench": "round_scaling", "label": "seed", "n": 1024,
                        "confidence": 0.99, "slack": 0.25, "regressed": true,
                        "verdicts": [{"phase": "settle", "rounds": 8,
                                      "observed_mean_ms": 9.1, "ci_lo_ms": 8.7,
                                      "ci_hi_ms": 9.5, "baseline_p99_ms": 4.0,
                                      "threshold_ms": 5.0, "regressed": true}]}"#,
                )
                .unwrap(),
            ),
        };
        let frame = render(&events, "fixture", Some(&live));
        assert!(frame.contains("LIVE PROFILE"), "{frame}");
        assert!(frame.contains("rounds_profiled"), "{frame}");
        assert!(frame.contains("fleet phase"), "{frame}");
        assert!(
            frame.contains("REGRESSIONS vs \"seed\" (REGRESSED)"),
            "{frame}"
        );
        assert!(frame.contains("settle"), "{frame}");
    }

    #[test]
    fn fixture_replays_into_a_clean_span_forest() {
        let events = from_jsonl(FIXTURE).expect("fixture parses");
        let spans = replay_spans(&events).expect("fixture replays");
        assert!(spans.iter().any(|s| s.name == "round"));
        assert!(spans.iter().any(|s| s.name == "node.bid"));
    }

    #[test]
    fn bars_are_clamped_and_sized() {
        assert_eq!(bar(0.0, 8), "........");
        assert_eq!(bar(1.0, 8), "########");
        assert_eq!(bar(2.0, 8), "########");
        assert_eq!(bar(0.5, 8), "####....");
        assert_eq!(bar(-1.0, 8), "........");
    }
}
