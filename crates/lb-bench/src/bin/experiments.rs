//! Experiment harness CLI: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p lb-bench --bin experiments -- all
//! cargo run -p lb-bench --bin experiments -- fig1
//! ```

use lb_bench::{
    audit_overhead, bench_log, figures, online_scaling, payment_scaling, profile_overhead,
    round_scaling,
};

/// Label new `BENCH_*.json` entries are appended under: `BENCH_LABEL` from
/// the environment, or the stable default for local runs.
fn bench_label() -> String {
    std::env::var("BENCH_LABEL").unwrap_or_else(|_| "local".to_string())
}

fn print_section(title: &str, body: &str) {
    println!("== {title} ==");
    println!("{body}");
}

fn run(target: &str) -> Result<(), Box<dyn std::error::Error>> {
    match target {
        "table1" => print_section("Table 1: system configuration", &figures::table1().render()),
        "table2" => print_section("Table 2: experiment types", &figures::table2().render()),
        "fig1" => print_section(
            "Figure 1: performance degradation (total latency per experiment)",
            &figures::figure1()?.render(),
        ),
        "fig2" => print_section(
            "Figure 2: payment and utility of computer C1",
            &figures::figure2()?.render(),
        ),
        "fig3" => print_section(
            "Figure 3: payment and utility per computer (True1)",
            &figures::per_computer_figure("True1")?.render(),
        ),
        "fig4" => print_section(
            "Figure 4: payment and utility per computer (High1)",
            &figures::per_computer_figure("High1")?.render(),
        ),
        "fig5" => print_section(
            "Figure 5: payment and utility per computer (Low1)",
            &figures::per_computer_figure("Low1")?.render(),
        ),
        "fig6" => {
            let (sweep, per_exp) = figures::figure6()?;
            print_section(
                "Figure 6: payment structure (truthful profile, arrival-rate sweep)",
                &sweep.render(),
            );
            print_section(
                "Figure 6 (supplement): payment structure per experiment",
                &per_exp.render(),
            );
        }
        "fig1-sim" => print_section(
            "Figure 1 via discrete-event simulation (stochastic service, estimated latency)",
            &figures::figure1_simulated(2_000.0, 3)?.render(),
        ),
        "messages" => print_section(
            "Protocol message counts (paper Sec. 3: O(n) messages per round)",
            &figures::message_counts()?.render(),
        ),
        "faults" => print_section(
            "Fault tolerance: lost bids / partitions / lost acks",
            &figures::fault_tolerance()?.render(),
        ),
        "audit" => print_section(
            "Distributed payment audit (paper's future work)",
            &figures::audit_demo()?.render(),
        ),
        "learning" => print_section(
            "Adaptive agents: epsilon-greedy learners discover truthfulness",
            &figures::learning_demo()?.render(),
        ),
        "mm1" => print_section(
            "Generalized mechanism on M/M/1 latencies (companion model, [ref.&nbsp;8])",
            &figures::mm1_demo()?.render(),
        ),
        "bursty" => print_section(
            "Bursty (MMPP) workloads vs the verification estimator",
            &figures::bursty_demo()?.render(),
        ),
        "chart-fig1" => {
            println!("{}", figures::figure1_chart()?.render());
        }
        "chart-fig2" => {
            let (p, u) = figures::figure2_chart()?;
            println!("{}", p.render());
            println!("{}", u.render());
        }
        "multi-liar" => print_section(
            "Multi-liar sweep (the paper's conjecture: more liars, more degradation)",
            &figures::multi_liar_demo()?.render(),
        ),
        "sensitivity" => print_section(
            "Lie-magnitude sensitivity of C1's utility (peak at the truthful bid)",
            &figures::sensitivity_demo()?.render(),
        ),
        "churn" => print_section(
            "Machine churn across protocol rounds",
            &figures::churn_demo()?.render(),
        ),
        "baselines" => print_section(
            "Classical allocation baselines vs the PR optimum",
            &figures::baselines_demo()?.render(),
        ),
        "percentiles" => print_section(
            "Per-job latency percentiles per experiment (P2 streaming quantiles)",
            &figures::percentiles_demo()?.render(),
        ),
        "fees" => print_section(
            "Fee-adjusted payments: deficit vs voluntary participation",
            &figures::fees_demo()?.render(),
        ),
        "dynamic" => print_section(
            "Dynamic load: static shares vs per-epoch reallocation",
            &figures::dynamic_demo()?.render(),
        ),
        "telemetry" => print_section(
            "Telemetry: chaotic session timeline and metrics snapshot",
            &figures::telemetry_demo()?,
        ),
        "ablation" => {
            print_section(
                "Ablation: verification on/off (C1 payment per experiment)",
                &figures::ablation_verification()?.render(),
            );
            print_section(
                "Ablation: estimator robustness (noise x horizon)",
                &figures::ablation_estimator()?.render(),
            );
        }
        "payment-scaling" => {
            let rows = payment_scaling::measure(
                payment_scaling::SCALING_NS,
                5,
                payment_scaling::LEGACY_CAP,
            );
            print_section(
                "Payment scaling: O(n) batch leave-one-out kernel vs legacy O(n²) settle",
                &payment_scaling::render_table(&rows),
            );
            let label = bench_label();
            bench_log::append_to_file(
                "BENCH_payment.json",
                "payment_scaling",
                "ns/settle-phase",
                &label,
                payment_scaling::rows_json(&rows),
            )?;
            println!("appended entry {label:?} to BENCH_payment.json");
        }
        "payment-scaling-smoke" => {
            // CI-sized: small grid, one sample, no artifact rewrite.
            let rows = payment_scaling::measure(&[64, 256, 1024], 1, 1024);
            print_section(
                "Payment scaling (smoke): batch vs legacy settle",
                &payment_scaling::render_table(&rows),
            );
            // At small n constant factors dominate; the asymptotic claim is
            // checked where it is unambiguous even on a noisy runner.
            for row in rows.iter().filter(|row| row.n >= 256) {
                let speedup = row.speedup.expect("legacy measured in smoke grid");
                assert!(
                    speedup > 1.0,
                    "batch settle slower than legacy at n = {}: {speedup:.2}x",
                    row.n
                );
            }
        }
        "round-scaling" => {
            let rows =
                round_scaling::measure(round_scaling::SCALING_NS, round_scaling::ROUNDS_PER_POINT);
            print_section(
                "Round scaling: sharded hierarchical rounds at 10^4..10^6 machines",
                &round_scaling::render_table(&rows),
            );
            let label = bench_label();
            bench_log::append_to_file(
                "BENCH_round_scaling.json",
                "round_scaling",
                "rounds/sec",
                &label,
                round_scaling::rows_json(&rows),
            )?;
            println!("appended entry {label:?} to BENCH_round_scaling.json");
        }
        "round-scaling-smoke" => {
            // CI-sized: small populations, few rounds, artifact written to a
            // scratch path and schema-checked instead of touching the
            // checked-in history.
            let rows = round_scaling::measure(&[1_000, 10_000], 3);
            print_section(
                "Round scaling (smoke): sharded rounds at small populations",
                &round_scaling::render_table(&rows),
            );
            for row in &rows {
                assert!(
                    row.rounds_per_sec > 0.0 && row.rounds_per_sec.is_finite(),
                    "degenerate throughput at n = {}",
                    row.n
                );
            }
            let scratch = std::env::temp_dir().join("BENCH_round_scaling.smoke.json");
            let scratch = scratch.to_str().expect("temp path is utf-8");
            let _ = std::fs::remove_file(scratch);
            bench_log::append_to_file(
                scratch,
                "round_scaling",
                "rounds/sec",
                "smoke",
                round_scaling::rows_json(&rows),
            )?;
            let written = std::fs::read_to_string(scratch)?;
            bench_log::BenchLog::parse(&written).map_err(std::io::Error::other)?;
            println!("schema-valid smoke artifact at {scratch}");
        }
        "online-scaling" => {
            let rows = online_scaling::measure(
                online_scaling::SCALING_SLOTS,
                online_scaling::EVENTS_PER_POINT,
                online_scaling::SCRATCH_SAMPLE,
            );
            print_section(
                "Online scaling: incremental event path vs from-scratch recompute",
                &online_scaling::render_table(&rows),
            );
            for row in &rows {
                assert!(
                    row.s_rel_error <= 1e-12,
                    "incremental sum drifted {:e} at slots = {}",
                    row.s_rel_error,
                    row.slots
                );
            }
            let label = bench_label();
            bench_log::append_to_file(
                "BENCH_online.json",
                "online_scaling",
                "events/sec",
                &label,
                online_scaling::rows_json(&rows),
            )?;
            println!("appended entry {label:?} to BENCH_online.json");
        }
        "online-scaling-smoke" => {
            // CI-sized: one small grid point, artifact written to a scratch
            // path and schema-checked instead of touching the checked-in
            // history. The 100x acceptance speedup is only asserted in the
            // full study, where the O(n) scratch path is unambiguous.
            let rows = online_scaling::measure(&[256], 5_000, 100);
            print_section(
                "Online scaling (smoke): incremental vs scratch at 256 slots",
                &online_scaling::render_table(&rows),
            );
            for row in &rows {
                assert!(
                    row.inc_events_per_sec > 0.0 && row.inc_events_per_sec.is_finite(),
                    "degenerate event throughput at slots = {}",
                    row.slots
                );
                assert!(
                    row.s_rel_error <= 1e-12,
                    "incremental sum drifted {:e} at slots = {}",
                    row.s_rel_error,
                    row.slots
                );
                assert!(
                    row.speedup > 1.0,
                    "incremental path slower than scratch at slots = {}: {:.2}x",
                    row.slots,
                    row.speedup
                );
            }
            let scratch = std::env::temp_dir().join("BENCH_online.smoke.json");
            let scratch = scratch.to_str().expect("temp path is utf-8");
            let _ = std::fs::remove_file(scratch);
            bench_log::append_to_file(
                scratch,
                "online_scaling",
                "events/sec",
                "smoke",
                online_scaling::rows_json(&rows),
            )?;
            let written = std::fs::read_to_string(scratch)?;
            bench_log::BenchLog::parse(&written).map_err(std::io::Error::other)?;
            println!("schema-valid smoke artifact at {scratch}");
        }
        "audit-overhead" => {
            let rows = audit_overhead::measure(audit_overhead::OVERHEAD_NS, 5);
            print_section(
                "Monitor overhead: settle + gauges, off vs full vs sampled invariant monitor",
                &audit_overhead::render_table(&rows),
            );
            let label = bench_label();
            bench_log::append_to_file(
                "BENCH_audit_overhead.json",
                "audit_overhead",
                "ns/round",
                &label,
                audit_overhead::rows_json(&rows),
            )?;
            println!("appended entry {label:?} to BENCH_audit_overhead.json");
        }
        "audit-overhead-smoke" => {
            // CI-sized: small grid, no artifact write. Overhead asserted
            // only where amortisation makes it stable on a noisy runner.
            let rows = audit_overhead::measure(&[64, 1024], 3);
            print_section(
                "Monitor overhead (smoke): off vs full vs sampled",
                &audit_overhead::render_table(&rows),
            );
            for row in rows.iter().filter(|row| row.n >= 1024) {
                assert!(
                    row.sampled_overhead() < 0.5,
                    "sampled monitor overhead at n = {} is {:.1}%",
                    row.n,
                    100.0 * row.sampled_overhead()
                );
            }
        }
        "profile-overhead" => {
            let rows = profile_overhead::measure(profile_overhead::OVERHEAD_NS, 5);
            print_section(
                "Profiler overhead: full sharded round, off vs attached vs sampled rollup",
                &profile_overhead::render_table(&rows),
            );
            let label = bench_label();
            bench_log::append_to_file(
                "BENCH_profile_overhead.json",
                "profile_overhead",
                "ns/round",
                &label,
                profile_overhead::rows_json(&rows),
            )?;
            println!("appended entry {label:?} to BENCH_profile_overhead.json");
        }
        "profile-overhead-smoke" => {
            // CI-sized: the acceptance point only, few samples, artifact
            // written to a scratch path and schema-checked instead of
            // touching the checked-in history.
            let rows = profile_overhead::measure(&[1024], 2);
            print_section(
                "Profiler overhead (smoke): off vs attached vs sampled at n = 1024",
                &profile_overhead::render_table(&rows),
            );
            for row in rows.iter().filter(|row| row.n >= 1024) {
                assert!(
                    row.attached_overhead() < 0.10,
                    "rollup overhead at n = {} is {:.1}% of round time",
                    row.n,
                    100.0 * row.attached_overhead()
                );
            }
            let scratch = std::env::temp_dir().join("BENCH_profile_overhead.smoke.json");
            let scratch = scratch.to_str().expect("temp path is utf-8");
            let _ = std::fs::remove_file(scratch);
            bench_log::append_to_file(
                scratch,
                "profile_overhead",
                "ns/round",
                "smoke",
                profile_overhead::rows_json(&rows),
            )?;
            let written = std::fs::read_to_string(scratch)?;
            bench_log::BenchLog::parse(&written).map_err(std::io::Error::other)?;
            println!("schema-valid smoke artifact at {scratch}");
        }
        "all" => {
            for t in [
                "table1",
                "table2",
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig1-sim",
                "messages",
                "ablation",
                "faults",
                "audit",
                "learning",
                "mm1",
                "bursty",
                "dynamic",
                "multi-liar",
                "sensitivity",
                "churn",
                "fees",
                "percentiles",
                "baselines",
                "telemetry",
                "chart-fig1",
                "chart-fig2",
            ] {
                run(t)?;
            }
        }
        other => {
            eprintln!("unknown target '{other}'");
            eprintln!(
                "targets: table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig1-sim messages ablation faults audit learning mm1 bursty dynamic telemetry payment-scaling payment-scaling-smoke online-scaling online-scaling-smoke audit-overhead audit-overhead-smoke round-scaling round-scaling-smoke profile-overhead profile-overhead-smoke all"
            );
            std::process::exit(2);
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    run(&target)
}
