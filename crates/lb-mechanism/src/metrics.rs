//! Mechanism quality metrics: frugality and performance degradation.
//!
//! Figure 6 of the paper compares the mechanism's **total payment** against
//! the **total valuation** and observes a ratio of at most ~2.5 on the
//! Table 1 system — the paper's frugality argument. Figure 1 reports the
//! **performance degradation** of each manipulation experiment relative to
//! the truthful optimum.

use crate::traits::MechanismOutcome;

/// Frugality ratio: total payment / total |valuation|.
///
/// The paper's lower bound is 1 (the mechanism must at least refund costs to
/// preserve voluntary participation); it reports an upper bound of ~2.5 for
/// the evaluated system.
///
/// Returns `f64::INFINITY` when the total valuation is zero.
#[must_use]
pub fn frugality_ratio(outcome: &MechanismOutcome) -> f64 {
    let valuation = outcome.total_valuation_abs();
    if valuation == 0.0 {
        f64::INFINITY
    } else {
        outcome.total_payment() / valuation
    }
}

/// Relative performance degradation of a realised latency against the
/// optimum: `(L − L*) / L*`.
///
/// # Panics
/// Panics if `optimal` is not strictly positive.
#[must_use]
pub fn degradation(actual: f64, optimal: f64) -> f64 {
    assert!(
        optimal > 0.0,
        "degradation: optimal latency must be positive"
    );
    (actual - optimal) / optimal
}

/// Aggregate payment-structure summary used by the Figure 6 harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaymentStructure {
    /// Sum of payments handed out.
    pub total_payment: f64,
    /// Sum of |valuations| (the realised total latency).
    pub total_valuation: f64,
    /// Sum of agent utilities.
    pub total_utility: f64,
    /// `total_payment / total_valuation`.
    pub frugality: f64,
}

impl PaymentStructure {
    /// Summarises a mechanism outcome.
    #[must_use]
    pub fn from_outcome(outcome: &MechanismOutcome) -> Self {
        Self {
            total_payment: outcome.total_payment(),
            total_valuation: outcome.total_valuation_abs(),
            total_utility: outcome.total_utility(),
            frugality: frugality_ratio(outcome),
        }
    }
}

/// Closed-form frugality of the truthful profile on a *uniform* system of
/// `n` identical machines, under the contributed-latency valuation:
///
/// ```text
/// L* = R²t/n,   L_{-i} = R²t/(n−1),   Σ B = n(L_{-i} − L*) = R²t/(n−1)
/// ratio = 1 + ΣB / L* = 1 + n/(n−1)
/// ```
///
/// → 3 at `n = 2`, decreasing to 2 as `n → ∞`: the paper's ≤ 2.5 bound is a
/// *heterogeneity* effect of its 16-machine system, not a universal one
/// (uniform pairs pay 3×). Property-tested against the empirical ratio.
///
/// # Panics
/// Panics if `n < 2`.
#[must_use]
pub fn analytic_frugality_uniform_contributed(n: usize) -> f64 {
    assert!(
        n >= 2,
        "analytic_frugality_uniform_contributed: need n >= 2"
    );
    1.0 + n as f64 / (n as f64 - 1.0)
}

/// Closed-form frugality of the truthful profile on a uniform system under
/// the per-job valuation (the paper-faithful default): the valuation is
/// `Σ t·x_i = tR` while the bonus sum is `R²t/(n−1)`, so
///
/// ```text
/// ratio = 1 + R / (n − 1)
/// ```
///
/// — unlike the contributed model it *grows with the load* `R`, which is why
/// Figure 6's sweep peaks at the evaluated `R = 20`.
///
/// # Panics
/// Panics if `n < 2` or `r` is not positive.
#[must_use]
pub fn analytic_frugality_uniform_per_job(n: usize, r: f64) -> f64 {
    assert!(n >= 2, "analytic_frugality_uniform_per_job: need n >= 2");
    assert!(
        r.is_finite() && r > 0.0,
        "analytic_frugality_uniform_per_job: invalid rate"
    );
    1.0 + r / (n as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cb::CompensationBonusMechanism;
    use crate::profile::Profile;
    use crate::traits::run_mechanism;
    use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};

    #[test]
    fn analytic_uniform_frugality_matches_empirical() {
        for n in [2usize, 3, 8, 32] {
            let sys = lb_core::System::from_true_values(&vec![2.0; n]).unwrap();
            let r = 5.0;
            let profile = Profile::truthful(&sys, r).unwrap();

            let contributed =
                run_mechanism(&CompensationBonusMechanism::contributed(), &profile).unwrap();
            let want = analytic_frugality_uniform_contributed(n);
            let got = frugality_ratio(&contributed);
            assert!(
                (got - want).abs() < 1e-9,
                "contributed n={n}: {got} vs {want}"
            );

            let per_job = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
            let want = analytic_frugality_uniform_per_job(n, r);
            let got = frugality_ratio(&per_job);
            assert!((got - want).abs() < 1e-9, "per-job n={n}: {got} vs {want}");
        }
    }

    #[test]
    fn uniform_pair_pays_three_times_valuation() {
        assert!((analytic_frugality_uniform_contributed(2) - 3.0).abs() < 1e-12);
        assert!((analytic_frugality_uniform_contributed(1000) - 2.001_001).abs() < 1e-6);
    }

    #[test]
    fn truthful_paper_frugality_is_within_paper_bound() {
        let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
        let out = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
        let ratio = frugality_ratio(&out);
        // Analytic under the per-job valuation: total valuation = 16·(20/5.1)
        // = 62.75, total bonus = Σ L_{-i} − 16·L* = 89.27, so the ratio is
        // (62.75 + 89.27)/62.75 = 2.42 — within the paper's ≤ 2.5 bound.
        assert!(ratio > 1.0, "ratio {ratio}");
        assert!(ratio <= 2.5, "ratio {ratio} above paper bound");
        assert!((ratio - 2.4226).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn degradation_of_optimum_is_zero() {
        assert_eq!(degradation(78.43, 78.43), 0.0);
        assert!((degradation(87.08, 78.43) - 0.1103).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "optimal latency must be positive")]
    fn degradation_rejects_bad_optimum() {
        let _ = degradation(1.0, 0.0);
    }

    #[test]
    fn payment_structure_is_consistent() {
        let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
        let out = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
        let ps = PaymentStructure::from_outcome(&out);
        assert!((ps.total_payment - out.total_payment()).abs() < 1e-12);
        assert!((ps.total_utility - (ps.total_payment - ps.total_valuation)).abs() < 1e-9);
        assert!((ps.frugality - ps.total_payment / ps.total_valuation).abs() < 1e-12);
    }
}
