//! The paper's compensation-and-bonus mechanism with verification (Def. 3.3).
//!
//! * **Allocation:** the PR algorithm applied to the *bids*.
//! * **Payment:** `P_i = C_i + B_i` with compensation `C_i = −V_i(t̃_i, x_i)`
//!   (refunds the agent's realised latency cost exactly; see
//!   [`ValuationModel`] for the two cost readings) and bonus
//!   `B_i = L_{-i}(b_{-i}) − L(x(b), t̃)` — the optimal total latency of the
//!   system *without* agent `i` minus the *actual* total latency with it.
//!   The bonus equals the agent's contribution to reducing total latency,
//!   which is what makes truth-telling + full-speed execution dominant
//!   (Theorem 3.1) and keeps truthful utilities non-negative against
//!   consistent opponents (Theorem 3.2).
//!
//! The bonus can be *negative* (payment below compensation, possibly below
//! zero) when an agent's lie makes the system slower than not having the
//! agent at all — exactly the paper's Low2 experiment, where C1 under-bids
//! to grab jobs and then executes them at half speed.
//!
//! **Scope of the theorems.** Both theorems, as proved in the paper, compare
//! against opponents that are *consistent* — each opponent `j` executes at
//! its bid (`t̃_j = b_j ≥ t_j`). Against an opponent that, say, bids high
//! and then executes even slower, the constant `L_{-i}(b_{-i})` no longer
//! upper-bounds the realised latency and a truthful agent can be dragged to
//! negative utility. The property checkers in [`crate::properties`] encode
//! this precondition explicitly.

use crate::error::MechanismError;
use crate::traits::{ValuationModel, VerifiedMechanism};
use lb_core::allocation::{validate_rate, LeaveOneOut};
use lb_core::machine::validate_values;
use lb_core::{
    inv_sum_dd, pr_allocate, pr_allocate_with_sum, total_latency_linear, Allocation, TwoF64,
};
use serde::{Deserialize, Serialize};

/// The load balancing mechanism with verification of Grosu & Chronopoulos.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompensationBonusMechanism {
    /// Valuation/compensation model (see [`ValuationModel`]).
    pub valuation: ValuationModel,
}

/// Per-agent decomposition of a compensation-and-bonus payment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaymentBreakdown {
    /// Compensation `C_i = −V_i` (refunds the realised cost).
    pub compensation: f64,
    /// Bonus `B_i = L_{-i}(b_{-i}) − L(x(b), t̃)`.
    pub bonus: f64,
}

impl PaymentBreakdown {
    /// Total payment `C_i + B_i`.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.compensation + self.bonus
    }
}

impl CompensationBonusMechanism {
    /// The paper-faithful configuration (per-job-latency valuation).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            valuation: ValuationModel::PerJobLatency,
        }
    }

    /// The contributed-latency configuration (`V_i = −t̃_i x_i²`).
    #[must_use]
    pub fn contributed() -> Self {
        Self {
            valuation: ValuationModel::ContributedLatency,
        }
    }

    /// Computes the per-agent compensation/bonus decomposition.
    ///
    /// Bids, execution values and the rate are validated at entry — a
    /// degenerate input (subnormal bid, non-finite rate) answers with a
    /// typed error here instead of NaN-poisoning `1/b_i` and every `L_{-i}`
    /// bonus term downstream.
    ///
    /// All `n` bonus terms share one [`LeaveOneOut`] batch call, so a full
    /// settle phase is O(n) — the pre-batch path rebuilt the bid vector for
    /// every agent, O(n²) time and allocations.
    ///
    /// # Errors
    /// Returns [`MechanismError::NeedTwoAgents`] for singleton systems
    /// (the `L_{-i}` term is undefined), or arity/validation errors.
    pub fn payment_breakdown(
        &self,
        bids: &[f64],
        allocation: &Allocation,
        exec_values: &[f64],
        total_rate: f64,
    ) -> Result<Vec<PaymentBreakdown>, MechanismError> {
        if bids.len() < 2 {
            return Err(MechanismError::NeedTwoAgents);
        }
        validate_values("bid", bids)?;
        self.payment_breakdown_with_sum(bids, allocation, exec_values, total_rate, inv_sum_dd(bids))
    }

    /// [`CompensationBonusMechanism::payment_breakdown`] against a
    /// pre-aggregated double-double harmonic sum `s = Σ 1/b_j` (merged from
    /// per-shard partials by the hierarchical coordinator). The bonus terms
    /// consume `s` through [`LeaveOneOut::compute_with_sum`], so sharded and
    /// single-coordinator settles run bit-identical arithmetic.
    ///
    /// # Errors
    /// Returns [`MechanismError::NeedTwoAgents`] for singleton systems
    /// (the `L_{-i}` term is undefined), or arity/validation errors.
    pub fn payment_breakdown_with_sum(
        &self,
        bids: &[f64],
        allocation: &Allocation,
        exec_values: &[f64],
        total_rate: f64,
        s: TwoF64,
    ) -> Result<Vec<PaymentBreakdown>, MechanismError> {
        if bids.len() < 2 {
            return Err(MechanismError::NeedTwoAgents);
        }
        validate_values("bid", bids)?;
        validate_values("execution value", exec_values)?;
        validate_rate(total_rate)?;
        if allocation.len() != bids.len() || exec_values.len() != bids.len() {
            return Err(lb_core::CoreError::LengthMismatch {
                expected: bids.len(),
                actual: allocation.len().min(exec_values.len()),
            }
            .into());
        }
        let actual_latency = total_latency_linear(allocation, exec_values)?;
        let loo = LeaveOneOut::compute_with_sum(bids, total_rate, s)?;
        (0..bids.len())
            .map(|i| {
                let x = allocation.rate(i);
                let compensation = self.valuation.compensation(x, exec_values[i]);
                if !compensation.is_finite() {
                    return Err(lb_core::CoreError::NumericalOverflow {
                        what: "compensation term C_i",
                    }
                    .into());
                }
                Ok(PaymentBreakdown {
                    compensation,
                    bonus: loo.excluding(i) - actual_latency,
                })
            })
            .collect()
    }
}

impl VerifiedMechanism for CompensationBonusMechanism {
    fn name(&self) -> &'static str {
        "compensation-bonus (verified)"
    }

    fn valuation_model(&self) -> ValuationModel {
        self.valuation
    }

    fn allocate(&self, bids: &[f64], total_rate: f64) -> Result<Allocation, MechanismError> {
        Ok(pr_allocate(bids, total_rate)?)
    }

    fn payments(
        &self,
        bids: &[f64],
        allocation: &Allocation,
        exec_values: &[f64],
        total_rate: f64,
    ) -> Result<Vec<f64>, MechanismError> {
        Ok(self
            .payment_breakdown(bids, allocation, exec_values, total_rate)?
            .iter()
            .map(PaymentBreakdown::total)
            .collect())
    }

    fn allocate_with_sum(
        &self,
        bids: &[f64],
        total_rate: f64,
        s: TwoF64,
    ) -> Result<Allocation, MechanismError> {
        validate_values("bid", bids)?;
        Ok(pr_allocate_with_sum(bids, total_rate, s)?)
    }

    fn payments_with_sum(
        &self,
        bids: &[f64],
        allocation: &Allocation,
        exec_values: &[f64],
        total_rate: f64,
        s: TwoF64,
    ) -> Result<Vec<f64>, MechanismError> {
        Ok(self
            .payment_breakdown_with_sum(bids, allocation, exec_values, total_rate, s)?
            .iter()
            .map(PaymentBreakdown::total)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::traits::run_mechanism;
    use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
    use proptest::prelude::*;

    fn mech() -> CompensationBonusMechanism {
        CompensationBonusMechanism::paper()
    }

    #[test]
    fn truthful_utility_equals_marginal_contribution() {
        // U_i = L_{-i} − L* for the truthful profile; check C1 on the paper
        // system: 400/4.1 − 400/5.1 = 19.13...
        let sys = paper_system();
        let profile = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let out = run_mechanism(&mech(), &profile).unwrap();
        let expected = 400.0 / 4.1 - 400.0 / 5.1;
        assert!(
            (out.utilities[0] - expected).abs() < 1e-9,
            "U1 = {}",
            out.utilities[0]
        );
    }

    #[test]
    fn truthful_paper_latency_is_78_43() {
        let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
        let out = run_mechanism(&mech(), &profile).unwrap();
        assert!((out.total_latency - 78.431_372_549).abs() < 1e-6);
    }

    #[test]
    fn compensation_exactly_cancels_valuation() {
        let sys = paper_system();
        let profile = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, 3.0, 3.0).unwrap();
        for m in [
            CompensationBonusMechanism::paper(),
            CompensationBonusMechanism::contributed(),
        ] {
            let alloc = m.allocate(profile.bids(), PAPER_ARRIVAL_RATE).unwrap();
            let breakdown = m
                .payment_breakdown(
                    profile.bids(),
                    &alloc,
                    profile.exec_values(),
                    PAPER_ARRIVAL_RATE,
                )
                .unwrap();
            for (i, b) in breakdown.iter().enumerate() {
                let x = alloc.rate(i);
                let valuation = m.valuation.valuation(x, profile.exec_values()[i]);
                assert!((b.compensation + valuation).abs() < 1e-9, "agent {i}");
            }
        }
    }

    #[test]
    fn utility_equals_bonus() {
        let sys = paper_system();
        let profile = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, 0.5, 2.0).unwrap();
        let out = run_mechanism(&mech(), &profile).unwrap();
        let breakdown = mech()
            .payment_breakdown(
                profile.bids(),
                &out.allocation,
                profile.exec_values(),
                PAPER_ARRIVAL_RATE,
            )
            .unwrap();
        for i in 0..profile.len() {
            assert!((out.utilities[i] - breakdown[i].bonus).abs() < 1e-9);
        }
    }

    #[test]
    fn low2_payment_and_utility_are_negative_for_c1() {
        // Paper Sec. 4: in Low2 (bid t/2, execute 2t) C1's bonus outweighs its
        // compensation and both payment and utility go negative.
        let sys = paper_system();
        let profile = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, 0.5, 2.0).unwrap();
        let out = run_mechanism(&mech(), &profile).unwrap();
        assert!(out.payments[0] < 0.0, "payment = {}", out.payments[0]);
        assert!(out.utilities[0] < 0.0, "utility = {}", out.utilities[0]);
        // Analytic: x1 = 40/6.1, C = 2·x1, L = 2·x1² + (20/6.1)²·4.1,
        // B = 400/4.1 − L.
        let x1 = 40.0 / 6.1;
        let l_actual = 2.0 * x1 * x1 + (20.0 / 6.1) * (20.0 / 6.1) * 4.1;
        let expected = 2.0 * x1 + (400.0 / 4.1 - l_actual);
        assert!(
            (out.payments[0] - expected).abs() < 1e-9,
            "{} vs {expected}",
            out.payments[0]
        );
    }

    #[test]
    fn true2_payment_drops_relative_to_true1() {
        // Paper Fig. 2: C1 is "penalized for lying": the payment in True2
        // (honest bid, 2x slower execution) is below the True1 payment.
        let sys = paper_system();
        let true1 = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let true2 = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, 1.0, 2.0).unwrap();
        let p1 = run_mechanism(&mech(), &true1).unwrap().payments[0];
        let p2 = run_mechanism(&mech(), &true2).unwrap().payments[0];
        assert!(p2 < p1, "True2 payment {p2} not below True1 payment {p1}");
    }

    #[test]
    fn with_sum_entry_points_match_the_plain_mechanism_bitwise() {
        // Shard-count invariance at the mechanism layer: feeding the merged
        // per-shard TwoF64 harmonic partials into the *_with_sum entry points
        // must reproduce the single-coordinator allocation and payments bit
        // for bit, for every shard count.
        use lb_core::merge_inv_sums;
        let n: usize = 4096;
        #[allow(clippy::cast_precision_loss)]
        let bids: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.37).collect();
        #[allow(clippy::cast_precision_loss)]
        let exec: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.61).collect();
        let r = 20.0;
        let m = mech();
        let ref_alloc = m.allocate(&bids, r).unwrap();
        let ref_pay = m.payments(&bids, &ref_alloc, &exec, r).unwrap();
        for k in [1usize, 2, 7, 64] {
            let chunk = n.div_ceil(k);
            let partials: Vec<_> = bids.chunks(chunk).map(|c| inv_sum_dd(c)).collect();
            let s = merge_inv_sums(&partials);
            let alloc = m.allocate_with_sum(&bids, r, s).unwrap();
            let pay = m.payments_with_sum(&bids, &alloc, &exec, r, s).unwrap();
            for i in 0..n {
                assert_eq!(
                    alloc.rate(i).to_bits(),
                    ref_alloc.rate(i).to_bits(),
                    "k = {k}, agent {i}: allocation diverged"
                );
                assert_eq!(
                    pay[i].to_bits(),
                    ref_pay[i].to_bits(),
                    "k = {k}, agent {i}: payment diverged"
                );
            }
        }
    }

    #[test]
    fn default_with_sum_methods_fall_back_to_the_plain_path() {
        // A mechanism that does not override the *_with_sum hooks ignores the
        // merged sum and recomputes from the bid vector — still well-defined
        // and shard-count invariant (same full vector either way).
        let m = crate::unverified::UnverifiedCompensationBonus::default();
        let bids = [1.0, 2.0, 4.0];
        let exec = [1.0, 2.5, 4.0];
        let r = 10.0;
        let s = inv_sum_dd(&bids);
        let plain = m.allocate(&bids, r).unwrap();
        let with_sum = m.allocate_with_sum(&bids, r, s).unwrap();
        for i in 0..bids.len() {
            assert_eq!(plain.rate(i).to_bits(), with_sum.rate(i).to_bits());
        }
        let p_plain = m.payments(&bids, &plain, &exec, r).unwrap();
        let p_sum = m.payments_with_sum(&bids, &plain, &exec, r, s).unwrap();
        for i in 0..bids.len() {
            assert_eq!(p_plain[i].to_bits(), p_sum[i].to_bits());
        }
    }

    #[test]
    fn singleton_system_is_rejected() {
        let profile = Profile::new(vec![1.0], vec![1.0], vec![1.0], 5.0).unwrap();
        let err = run_mechanism(&mech(), &profile).unwrap_err();
        assert!(matches!(err, MechanismError::NeedTwoAgents));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let m = mech();
        let alloc = m.allocate(&[1.0, 2.0], 5.0).unwrap();
        assert!(m.payments(&[1.0, 2.0], &alloc, &[1.0], 5.0).is_err());
        assert!(m
            .payments(&[1.0, 2.0, 3.0], &alloc, &[1.0, 2.0, 3.0], 5.0)
            .is_err());
    }

    #[test]
    fn degenerate_bids_yield_typed_errors_not_nan() {
        // Regression for the `payment` fuzz-oracle class: a subnormal bid
        // used to reach 1/b_i, turn the allocation infinite and NaN-poison
        // every bonus. Now each degenerate input answers with a typed error.
        let m = mech();
        let alloc = m.allocate(&[1.0, 2.0], 5.0).unwrap();
        let subnormal = f64::MIN_POSITIVE / 2.0;
        assert!(matches!(
            m.payment_breakdown(&[subnormal, 2.0], &alloc, &[1.0, 2.0], 5.0),
            Err(MechanismError::Core(
                lb_core::CoreError::InvalidParameter { .. }
            ))
        ));
        assert!(matches!(
            m.payment_breakdown(&[1.0, 2.0], &alloc, &[subnormal, 2.0], 5.0),
            Err(MechanismError::Core(
                lb_core::CoreError::InvalidParameter { .. }
            ))
        ));
        assert!(matches!(
            m.payment_breakdown(&[1.0, 2.0], &alloc, &[1.0, 2.0], f64::NAN),
            Err(MechanismError::Core(lb_core::CoreError::InvalidRate(_)))
        ));
        assert!(m.allocate(&[subnormal, 2.0], 5.0).is_err());
        // A valid wide-spread profile still computes finite payments.
        let wide = [1e-6, 1e6];
        let alloc = m.allocate(&wide, 5.0).unwrap();
        let breakdown = m.payment_breakdown(&wide, &alloc, &wide, 5.0).unwrap();
        for b in &breakdown {
            assert!(b.total().is_finite());
        }
    }

    proptest! {
        /// Theorem 3.2 (voluntary participation): a truthful agent's utility
        /// is non-negative whatever the *consistent* others bid (consistent:
        /// execution equals bid, which must be at least the true value).
        #[test]
        fn prop_voluntary_participation(
            trues in proptest::collection::vec(0.1f64..10.0, 2..10),
            other_factors in proptest::collection::vec(1.0f64..5.0, 2..10),
            r in 0.5f64..50.0,
        ) {
            let n = trues.len().min(other_factors.len());
            let trues = &trues[..n];
            let factors = &other_factors[..n];
            let mut bids = vec![trues[0]];
            let mut exec = vec![trues[0]];
            for i in 1..n {
                let b = trues[i] * factors[i];
                bids.push(b);
                exec.push(b);
            }
            let profile = Profile::new(trues.to_vec(), bids, exec, r).unwrap();
            let out = run_mechanism(&mech(), &profile).unwrap();
            prop_assert!(out.utilities[0] >= -1e-9, "truthful agent lost: {}", out.utilities[0]);
        }

        /// Theorem 3.1 (truthfulness): with the other agents consistent
        /// (executing at their bid), no (bid, exec) deviation beats truth.
        #[test]
        fn prop_truthfulness_dominant(
            trues in proptest::collection::vec(0.1f64..10.0, 2..8),
            bid_factor in 0.2f64..5.0,
            exec_factor in 1.0f64..4.0,
            other_factor in 1.0f64..2.0,
            r in 0.5f64..50.0,
        ) {
            // Others: consistent (exec == bid >= true).
            let mut bids: Vec<f64> = trues.iter().map(|&t| t * other_factor).collect();
            let mut exec = bids.clone();
            // Truthful utility of agent 0.
            bids[0] = trues[0];
            exec[0] = trues[0];
            let truthful = run_mechanism(
                &mech(),
                &Profile::new(trues.clone(), bids.clone(), exec.clone(), r).unwrap(),
            ).unwrap().utilities[0];
            // Deviating utility of agent 0.
            bids[0] = trues[0] * bid_factor;
            exec[0] = trues[0] * exec_factor;
            let deviating = run_mechanism(
                &mech(),
                &Profile::new(trues.clone(), bids, exec, r).unwrap(),
            ).unwrap().utilities[0];
            prop_assert!(deviating <= truthful + 1e-7 * truthful.abs().max(1.0),
                "deviation gained: {} > {}", deviating, truthful);
        }

        /// Theorem 3.1 under extreme magnitudes: true values sampled
        /// log-uniformly over 1e-6..1e6 (twelve orders of magnitude), others
        /// consistent — truth still dominates every (bid, exec) deviation.
        #[test]
        fn prop_truthfulness_extreme_magnitudes(
            exponents in proptest::collection::vec(-6.0f64..6.0, 2..8),
            bid_factor in 0.2f64..5.0,
            exec_factor in 1.0f64..4.0,
            other_factor in 1.0f64..2.0,
            r_exp in -3.0f64..3.0,
        ) {
            let trues: Vec<f64> = exponents.iter().map(|&e| 10f64.powf(e)).collect();
            let r = 10f64.powf(r_exp);
            let mut bids: Vec<f64> = trues.iter().map(|&t| t * other_factor).collect();
            let mut exec = bids.clone();
            bids[0] = trues[0];
            exec[0] = trues[0];
            let truthful = run_mechanism(
                &mech(),
                &Profile::new(trues.clone(), bids.clone(), exec.clone(), r).unwrap(),
            ).unwrap().utilities[0];
            bids[0] = trues[0] * bid_factor;
            exec[0] = trues[0] * exec_factor;
            let deviating = run_mechanism(
                &mech(),
                &Profile::new(trues.clone(), bids, exec, r).unwrap(),
            ).unwrap().utilities[0];
            prop_assert!(deviating <= truthful + 1e-7 * truthful.abs().max(1.0),
                "deviation gained: {} > {}", deviating, truthful);
        }

        /// Theorem 3.2 under extreme magnitudes: truthful utility stays
        /// non-negative against consistent opponents across 1e-6..1e6 spreads.
        #[test]
        fn prop_participation_extreme_magnitudes(
            exponents in proptest::collection::vec(-6.0f64..6.0, 2..8),
            other_factors in proptest::collection::vec(1.0f64..5.0, 2..8),
            r_exp in -3.0f64..3.0,
        ) {
            let n = exponents.len().min(other_factors.len());
            let trues: Vec<f64> = exponents[..n].iter().map(|&e| 10f64.powf(e)).collect();
            let r = 10f64.powf(r_exp);
            let mut bids = vec![trues[0]];
            let mut exec = vec![trues[0]];
            for i in 1..n {
                let b = trues[i] * other_factors[i];
                bids.push(b);
                exec.push(b);
            }
            let profile = Profile::new(trues.clone(), bids, exec, r).unwrap();
            let out = run_mechanism(&mech(), &profile).unwrap();
            // Utilities here scale like r²·t, so the acceptance floor must
            // be relative to the magnitude of the terms being cancelled.
            let scale = out.utilities[0].abs().max(out.total_latency.abs()).max(1.0);
            prop_assert!(out.utilities[0] >= -1e-9 * scale,
                "truthful agent lost: {}", out.utilities[0]);
        }

        /// Payments decompose exactly: P = C + B and U = B, under both
        /// valuation models.
        #[test]
        fn prop_payment_decomposition(
            trues in proptest::collection::vec(0.1f64..10.0, 2..8),
            bid_factor in 0.2f64..5.0,
            exec_factor in 1.0f64..4.0,
            r in 0.5f64..50.0,
            contributed in proptest::bool::ANY,
        ) {
            let m = if contributed {
                CompensationBonusMechanism::contributed()
            } else {
                CompensationBonusMechanism::paper()
            };
            let sys = lb_core::System::from_true_values(&trues).unwrap();
            let profile = Profile::with_deviation(&sys, r, 0, bid_factor, exec_factor).unwrap();
            let out = run_mechanism(&m, &profile).unwrap();
            let breakdown = m.payment_breakdown(
                profile.bids(), &out.allocation, profile.exec_values(), r,
            ).unwrap();
            for i in 0..trues.len() {
                prop_assert!((out.payments[i] - breakdown[i].total()).abs() < 1e-9);
                prop_assert!((out.utilities[i] - breakdown[i].bonus).abs() < 1e-9);
            }
        }
    }
}
