//! Adaptive quadrature for payment integrals.
//!
//! The Archer–Tardos payment rule integrates the work curve
//! `w_i(u, b_{-i})` over all bids `u ≥ b_i` (an improper integral). For the
//! linear latency family this has a closed form; this module provides an
//! independent numerical path so the closed form can be cross-checked and so
//! non-linear latency families can reuse the same payment rule.

use crate::error::MechanismError;
use lb_core::CoreError;

/// Adaptive Simpson quadrature of `f` over `[a, b]` to absolute tolerance
/// `tol`.
///
/// # Errors
/// Returns [`MechanismError::QuadratureFailed`] if the recursion depth limit
/// is reached before the error estimate falls below `tol` or the integrand
/// produces non-finite values, and a typed validation error for an invalid
/// interval or tolerance (fuzzed inputs must never abort).
pub fn integrate<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    tol: f64,
) -> Result<f64, MechanismError> {
    if !(a.is_finite() && b.is_finite() && a <= b) {
        return Err(CoreError::InvalidParameter {
            name: "integration bound",
            value: b - a,
        }
        .into());
    }
    if !(tol.is_finite() && tol > 0.0) {
        return Err(CoreError::InvalidParameter {
            name: "integration tolerance",
            value: tol,
        }
        .into());
    }
    if a == b {
        return Ok(0.0);
    }
    let m = 0.5 * (a + b);
    let fa = f(a);
    let fb = f(b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    adaptive(f, a, b, fa, fm, fb, whole, tol, 60)
}

/// Improper integral of `f` over `[a, ∞)` via the substitution
/// `u = a + s/(1−s)`, `du = ds/(1−s)²`, mapping the half-line onto `[0, 1)`.
///
/// `f` must decay fast enough for the integral to exist (the Archer–Tardos
/// work curves decay like `1/u²`).
///
/// # Errors
/// Returns [`MechanismError::QuadratureFailed`] if the transformed integral
/// does not converge within the depth limit, or a typed validation error for
/// a non-finite lower bound.
pub fn integrate_to_infinity<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    tol: f64,
) -> Result<f64, MechanismError> {
    if !a.is_finite() {
        return Err(CoreError::InvalidParameter {
            name: "integration bound",
            value: a,
        }
        .into());
    }
    let g = |s: f64| -> f64 {
        if s >= 1.0 {
            return 0.0;
        }
        let one_minus = 1.0 - s;
        let u = a + s / one_minus;
        f(u) / (one_minus * one_minus)
    };
    // Stop slightly short of 1 to avoid the (removable, decaying) endpoint.
    integrate(&g, 0.0, 1.0 - 1e-12, tol)
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> Result<f64, MechanismError> {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if !delta.is_finite() {
        // A non-finite integrand can never converge; bail out immediately
        // instead of recursing the full depth on poisoned estimates.
        return Err(MechanismError::QuadratureFailed {
            estimate: delta.abs(),
        });
    }
    if delta.abs() <= 15.0 * tol || (b - a) < 1e-14 {
        // Richardson extrapolation term improves the estimate one order.
        return Ok(left + right + delta / 15.0);
    }
    if depth == 0 {
        return Err(MechanismError::QuadratureFailed {
            estimate: delta.abs(),
        });
    }
    let l = adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)?;
    let r = adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)?;
    Ok(l + r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_polynomials_exactly() {
        // Simpson is exact for cubics.
        let f = |x: f64| 3.0 * x * x * x - x + 2.0;
        let got = integrate(&f, 0.0, 2.0, 1e-12).unwrap();
        // Antiderivative: 3/4 x^4 - x²/2 + 2x -> 12 - 2 + 4 = 14.
        assert!((got - 14.0).abs() < 1e-10, "got {got}");
    }

    #[test]
    fn integrates_transcendentals() {
        let got = integrate(&f64::sin, 0.0, std::f64::consts::PI, 1e-12).unwrap();
        assert!((got - 2.0).abs() < 1e-9, "got {got}");
        let got = integrate(&|x: f64| x.exp(), 0.0, 1.0, 1e-12).unwrap();
        assert!((got - (std::f64::consts::E - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_interval_is_zero() {
        assert_eq!(integrate(&|x: f64| x, 3.0, 3.0, 1e-9).unwrap(), 0.0);
    }

    #[test]
    fn improper_integral_of_inverse_square() {
        // ∫_1^∞ du/u² = 1.
        let got = integrate_to_infinity(&|u: f64| 1.0 / (u * u), 1.0, 1e-12).unwrap();
        assert!((got - 1.0).abs() < 1e-8, "got {got}");
    }

    #[test]
    fn improper_integral_of_archer_tardos_shape() {
        // ∫_b^∞ R²/(1+Su)² du = R²/(S(1+Sb)); check with R=20, S=4.1, b=1.
        let r2 = 400.0;
        let s = 4.1;
        let b = 1.0;
        let f = |u: f64| r2 / ((1.0 + s * u) * (1.0 + s * u));
        let got = integrate_to_infinity(&f, b, 1e-10).unwrap();
        let want = r2 / (s * (1.0 + s * b));
        assert!((got - want).abs() < 1e-6, "{got} vs {want}");
    }

    #[test]
    fn improper_integral_exponential_decay() {
        // ∫_0^∞ e^-u du = 1.
        let got = integrate_to_infinity(&|u: f64| (-u).exp(), 0.0, 1e-10).unwrap();
        assert!((got - 1.0).abs() < 1e-7, "got {got}");
    }

    #[test]
    fn invalid_inputs_yield_typed_errors_not_panics() {
        // Regression for the fuzz no-abort policy: these used to assert.
        assert!(integrate(&|x: f64| x, 1.0, 0.0, 1e-9).is_err());
        assert!(integrate(&|x: f64| x, 0.0, f64::INFINITY, 1e-9).is_err());
        assert!(integrate(&|x: f64| x, 0.0, 1.0, 0.0).is_err());
        assert!(integrate(&|x: f64| x, 0.0, 1.0, f64::NAN).is_err());
        assert!(integrate_to_infinity(&|u: f64| (-u).exp(), f64::NAN, 1e-9).is_err());
    }

    #[test]
    fn non_finite_integrand_fails_fast() {
        // A pole inside the interval poisons the Simpson estimates with
        // inf/NaN; the integrator must answer QuadratureFailed, not recurse
        // forever or return a poisoned value.
        let got = integrate(&|x: f64| 1.0 / x, -1.0, 1.0, 1e-9);
        assert!(
            matches!(got, Err(MechanismError::QuadratureFailed { .. })),
            "{got:?}"
        );
    }
}
