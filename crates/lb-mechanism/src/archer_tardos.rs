//! Archer–Tardos one-parameter mechanism for load balancing.
//!
//! The authors' companion paper (Grosu & Chronopoulos, Cluster 2002 — ref.
//! [ref.&nbsp;8] of the IPPS paper) designs a truthful load balancing mechanism through
//! the Archer–Tardos framework for *one-parameter agents*: agent `i`'s cost
//! is `t_i · w_i(b)` for a per-agent "work" measure `w_i` that must be
//! non-increasing in `i`'s own bid. For linear latencies the natural work is
//!
//! ```text
//! w_i(b) = x_i(b)²      so that   cost_i = t_i x_i² = realised latency.
//! ```
//!
//! Under the PR allocation, `x_i(b) = R·(1/b_i)/(1/b_i + S_i)` with
//! `S_i = Σ_{j≠i} 1/b_j`, hence `w_i(u, b_{-i}) = R²/(1 + S_i u)²`, which is
//! decreasing in `u` — the monotonicity Archer–Tardos require. Their payment
//!
//! ```text
//! P_i(b) = b_i w_i(b) + ∫_{b_i}^{∞} w_i(u, b_{-i}) du
//!        = b_i w_i(b) + R² / (S_i (1 + S_i b_i))
//! ```
//!
//! makes truthful *bidding* a dominant strategy. Contrast with the paper's
//! compensation-and-bonus mechanism: Archer–Tardos payments are computed
//! from bids alone (no verification), so like
//! [`crate::unverified::UnverifiedCompensationBonus`] they cannot react to
//! the realised execution values; they also pay agents even when their
//! presence does not help the system, which shows up as worse frugality in
//! Figure 6-style comparisons.
//!
//! Both the closed-form payment and an adaptive-quadrature evaluation of the
//! integral are provided; tests pin them against each other.

use crate::error::MechanismError;
use crate::quad::integrate_to_infinity;
use crate::traits::VerifiedMechanism;
use lb_core::{pr_allocate, Allocation};
use serde::{Deserialize, Serialize};

/// How the Archer–Tardos payment integral is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PaymentEvaluation {
    /// Closed-form `R²/(S(1+Sb))` (exact, fast).
    #[default]
    ClosedForm,
    /// Adaptive Simpson quadrature of the work curve (general, slower) —
    /// used to cross-check the closed form and to support non-linear work
    /// curves in extensions.
    Quadrature,
}

/// The Archer–Tardos one-parameter mechanism over the PR allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ArcherTardosMechanism {
    /// Selected payment-integral evaluation strategy.
    pub evaluation: PaymentEvaluation,
}

impl ArcherTardosMechanism {
    /// Closed-form variant (the default).
    #[must_use]
    pub fn closed_form() -> Self {
        Self {
            evaluation: PaymentEvaluation::ClosedForm,
        }
    }

    /// Quadrature variant (cross-check / extensions).
    #[must_use]
    pub fn quadrature() -> Self {
        Self {
            evaluation: PaymentEvaluation::Quadrature,
        }
    }

    /// The work measure `w_i(b) = x_i(b)²` under the PR allocation, as a
    /// function of agent `i`'s own bid `u` with the others fixed.
    fn work(u: f64, others_inv_sum: f64, total_rate: f64) -> f64 {
        let x = total_rate * (1.0 / u) / (1.0 / u + others_inv_sum);
        x * x
    }
}

impl VerifiedMechanism for ArcherTardosMechanism {
    fn name(&self) -> &'static str {
        match self.evaluation {
            PaymentEvaluation::ClosedForm => "archer-tardos (closed form)",
            PaymentEvaluation::Quadrature => "archer-tardos (quadrature)",
        }
    }

    fn valuation_model(&self) -> crate::traits::ValuationModel {
        // The one-parameter cost the payment rule is designed for is
        // t_i · w_i = t_i x_i², i.e. the contributed-latency valuation.
        crate::traits::ValuationModel::ContributedLatency
    }

    fn allocate(&self, bids: &[f64], total_rate: f64) -> Result<Allocation, MechanismError> {
        Ok(pr_allocate(bids, total_rate)?)
    }

    fn payments(
        &self,
        bids: &[f64],
        allocation: &Allocation,
        _exec_values: &[f64],
        total_rate: f64,
    ) -> Result<Vec<f64>, MechanismError> {
        if bids.len() < 2 {
            // With a single agent the work curve w(u) = R² is constant and the
            // payment integral diverges.
            return Err(MechanismError::NeedTwoAgents);
        }
        if allocation.len() != bids.len() {
            return Err(lb_core::CoreError::LengthMismatch {
                expected: bids.len(),
                actual: allocation.len(),
            }
            .into());
        }
        let inv_sum: f64 = bids.iter().map(|b| 1.0 / b).sum();
        bids.iter()
            .enumerate()
            .map(|(i, &b_i)| {
                let s_i = inv_sum - 1.0 / b_i;
                let w_i = {
                    let x = allocation.rate(i);
                    x * x
                };
                let integral = match self.evaluation {
                    PaymentEvaluation::ClosedForm => {
                        total_rate * total_rate / (s_i * (1.0 + s_i * b_i))
                    }
                    PaymentEvaluation::Quadrature => {
                        let f = |u: f64| Self::work(u, s_i, total_rate);
                        integrate_to_infinity(&f, b_i, 1e-10)?
                    }
                };
                Ok(b_i * w_i + integral)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use crate::traits::run_mechanism;
    use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
    use proptest::prelude::*;

    #[test]
    fn closed_form_matches_quadrature() {
        let sys = paper_system();
        let profile = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let cf = run_mechanism(&ArcherTardosMechanism::closed_form(), &profile).unwrap();
        let q = run_mechanism(&ArcherTardosMechanism::quadrature(), &profile).unwrap();
        for (a, b) in cf.payments.iter().zip(&q.payments) {
            assert!((a - b).abs() < 1e-5 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn payment_exceeds_declared_cost() {
        // P_i = b_i w_i + positive integral, so truthful agents profit.
        let sys = paper_system();
        let profile = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let mech = ArcherTardosMechanism::closed_form();
        let out = run_mechanism(&mech, &profile).unwrap();
        for i in 0..profile.len() {
            let x = out.allocation.rate(i);
            let declared = profile.bids()[i] * x * x;
            assert!(out.payments[i] > declared, "agent {i}");
            assert!(
                out.utilities[i] > 0.0,
                "agent {i} utility {}",
                out.utilities[i]
            );
        }
    }

    #[test]
    fn singleton_rejected() {
        let profile = Profile::new(vec![1.0], vec![1.0], vec![1.0], 2.0).unwrap();
        assert!(matches!(
            run_mechanism(&ArcherTardosMechanism::closed_form(), &profile),
            Err(MechanismError::NeedTwoAgents)
        ));
    }

    #[test]
    fn payments_ignore_execution_values() {
        let sys = paper_system();
        let honest = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let lazy = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, 1.0, 3.0).unwrap();
        let mech = ArcherTardosMechanism::closed_form();
        let p1 = run_mechanism(&mech, &honest).unwrap().payments;
        let p2 = run_mechanism(&mech, &lazy).unwrap().payments;
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    proptest! {
        /// Bid-truthfulness of the Archer–Tardos payment with full-capacity
        /// execution: no bid deviation beats truth.
        #[test]
        fn prop_bid_truthful(
            trues in proptest::collection::vec(0.1f64..10.0, 2..8),
            bid_factor in 0.2f64..5.0,
            r in 0.5f64..50.0,
        ) {
            let sys = lb_core::System::from_true_values(&trues).unwrap();
            let mech = ArcherTardosMechanism::closed_form();
            let truthful = run_mechanism(&mech, &Profile::truthful(&sys, r).unwrap())
                .unwrap().utilities[0];
            let deviating = run_mechanism(
                &mech,
                &Profile::with_deviation(&sys, r, 0, bid_factor, 1.0).unwrap(),
            ).unwrap().utilities[0];
            prop_assert!(deviating <= truthful + 1e-7 * truthful.abs().max(1.0),
                "gain: {} > {}", deviating, truthful);
        }

        /// The work curve is monotone non-increasing in the own bid — the
        /// Archer–Tardos prerequisite.
        #[test]
        fn prop_work_monotone(
            others in proptest::collection::vec(0.1f64..10.0, 1..8),
            b_lo in 0.1f64..10.0,
            delta in 0.01f64..10.0,
            r in 0.5f64..50.0,
        ) {
            let s: f64 = others.iter().map(|b| 1.0 / b).sum();
            let w_lo = ArcherTardosMechanism::work(b_lo, s, r);
            let w_hi = ArcherTardosMechanism::work(b_lo + delta, s, r);
            prop_assert!(w_hi <= w_lo + 1e-12);
        }

        /// Closed form equals quadrature on random instances.
        #[test]
        fn prop_closed_form_vs_quadrature(
            trues in proptest::collection::vec(0.2f64..5.0, 2..6),
            r in 1.0f64..30.0,
        ) {
            let sys = lb_core::System::from_true_values(&trues).unwrap();
            let profile = Profile::truthful(&sys, r).unwrap();
            let cf = run_mechanism(&ArcherTardosMechanism::closed_form(), &profile).unwrap();
            let q = run_mechanism(&ArcherTardosMechanism::quadrature(), &profile).unwrap();
            for (a, b) in cf.payments.iter().zip(&q.payments) {
                prop_assert!((a - b).abs() < 1e-4 * a.abs().max(1.0), "{} vs {}", a, b);
            }
        }
    }
}
