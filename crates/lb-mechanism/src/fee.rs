//! Budget reduction through participation fees.
//!
//! The compensation-and-bonus mechanism runs a deficit: total payments
//! exceed total valuations by the sum of bonuses (Figure 6's ratio above 1).
//! A classic lever reduces it without touching incentives: subtract from
//! each agent's payment a **fee that depends only on the others' bids**,
//! `h_i(b_{-i})`. Since agent `i` cannot influence its own fee, every
//! deviation comparison in Theorem 3.1's proof shifts by the same constant —
//! truthfulness is *exactly* preserved. What is sacrificed is voluntary
//! participation: a fee larger than an agent's bonus makes its truthful
//! utility negative. The tests pin down both sides of that trade-off, and
//! [`FeeAdjusted::break_even_fraction`] computes the largest uniform fee
//! that keeps every truthful agent whole.

use crate::error::MechanismError;
use crate::traits::{ValuationModel, VerifiedMechanism};
use lb_core::allocation::{optimal_latency_excluding, LeaveOneOut};
use lb_core::Allocation;

/// A wrapped mechanism whose payments are reduced by a fee
/// `h_i(b_{-i}) = fraction · [L_{-i}(b_{-i}) − R²/Σ_j(1/b_j)]`-style bonus
/// proxy. Concretely we charge `fraction` of the agent's *benchmark*
/// advantage `L_{-i}(b_{-i}) − L_opt(b)`, which is a function of the full
/// bid vector's others-part only through `L_{-i}` and of `b_i` through
/// `L_opt` — so to keep strategyproofness exact we charge
/// `fraction · L_{-i}(b_{-i})`-relative form detailed in [`Self::fee`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeeAdjusted<M> {
    /// The underlying mechanism.
    pub inner: M,
    /// Fraction of the fee base charged to every agent (≥ 0).
    pub fraction: f64,
}

impl<M> FeeAdjusted<M> {
    /// Wraps `inner`, charging `fraction` of each agent's fee base.
    ///
    /// # Panics
    /// Panics if `fraction` is negative or non-finite.
    #[must_use]
    pub fn new(inner: M, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "FeeAdjusted: invalid fraction"
        );
        Self { inner, fraction }
    }

    /// The fee charged to agent `i`: `fraction × [L_{-i}(b_{-i}) − L̂_{-i}]`
    /// where `L̂_{-i}` is the optimal latency of the others *at their own
    /// load share* — algebraically `L_{-i}·(1 − s_i)²/1` with
    /// `s_i = (1/b_i)/Σ(1/b_j)`… any function of `b` that is constant in
    /// `b_i` works; we use the simplest sound choice: a fraction of
    /// `L_{-i}(b_{-i})` scaled by the *others-only* machine count, i.e.
    /// `fraction · L_{-i}(b_{-i}) / n`. It depends only on `b_{-i}` (and the
    /// public `n`, `R`), never on agent `i`'s own report.
    ///
    /// # Errors
    /// Propagates benchmark computation errors.
    pub fn fee(&self, bids: &[f64], i: usize, total_rate: f64) -> Result<f64, MechanismError> {
        let l_minus_i = optimal_latency_excluding(bids, i, total_rate)?;
        Ok(self.fraction * l_minus_i / bids.len() as f64)
    }

    /// The fees of *all* agents from one [`LeaveOneOut`] batch call.
    ///
    /// [`Self::fee`] in a per-agent loop re-derives the harmonic sum for
    /// every agent — O(n²) for a payment vector. This is the O(n) path
    /// [`Self::payments`] takes; the single-index method stays for callers
    /// that genuinely need one fee.
    ///
    /// # Errors
    /// Propagates benchmark computation errors.
    pub fn fees(&self, bids: &[f64], total_rate: f64) -> Result<Vec<f64>, MechanismError> {
        let loo = LeaveOneOut::compute(bids, total_rate)?;
        #[allow(clippy::cast_precision_loss)]
        let n = bids.len() as f64;
        Ok(loo
            .all_excluding()
            .iter()
            .map(|&l_minus_i| self.fraction * l_minus_i / n)
            .collect())
    }

    /// The largest uniform `fraction` that keeps every *truthful* agent's
    /// utility non-negative on the given system: the minimum over agents of
    /// `bonus_i / fee_base_i`.
    ///
    /// One batch call covers every agent (this used to be the *second*
    /// quadratic sweep in this module, re-deriving `L_{-i}` over the true
    /// values after [`Self::payments`] had already done so over the bids),
    /// and the truthful bonus comes from the batch kernel's
    /// cancellation-free closed form rather than the subtractive
    /// `L_{-i} − L*` — at large `n` the subtraction loses every significant
    /// digit of a slow machine's bonus and with it the minimum this
    /// function exists to find.
    ///
    /// # Errors
    /// Propagates benchmark computation errors.
    pub fn break_even_fraction(
        true_values: &[f64],
        total_rate: f64,
    ) -> Result<f64, MechanismError> {
        let loo = LeaveOneOut::compute(true_values, total_rate)?;
        #[allow(clippy::cast_precision_loss)]
        let n = true_values.len() as f64;
        let mut best = f64::INFINITY;
        for i in 0..true_values.len() {
            let bonus = loo.marginal(i);
            let base = loo.excluding(i) / n;
            best = best.min(bonus / base);
        }
        Ok(best)
    }
}

impl<M: VerifiedMechanism> VerifiedMechanism for FeeAdjusted<M> {
    fn name(&self) -> &'static str {
        "fee-adjusted"
    }

    fn valuation_model(&self) -> ValuationModel {
        self.inner.valuation_model()
    }

    fn valuation(&self, rate: f64, exec_value: f64) -> f64 {
        self.inner.valuation(rate, exec_value)
    }

    fn realised_latency(
        &self,
        allocation: &Allocation,
        exec_values: &[f64],
    ) -> Result<f64, MechanismError> {
        self.inner.realised_latency(allocation, exec_values)
    }

    fn allocate(&self, bids: &[f64], total_rate: f64) -> Result<Allocation, MechanismError> {
        self.inner.allocate(bids, total_rate)
    }

    fn payments(
        &self,
        bids: &[f64],
        allocation: &Allocation,
        exec_values: &[f64],
        total_rate: f64,
    ) -> Result<Vec<f64>, MechanismError> {
        let base = self
            .inner
            .payments(bids, allocation, exec_values, total_rate)?;
        let fees = self.fees(bids, total_rate)?;
        Ok(base.into_iter().zip(fees).map(|(p, f)| p - f).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cb::CompensationBonusMechanism;
    use crate::profile::Profile;
    use crate::traits::run_mechanism;
    use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
    use proptest::prelude::*;

    fn mech(fraction: f64) -> FeeAdjusted<CompensationBonusMechanism> {
        FeeAdjusted::new(CompensationBonusMechanism::paper(), fraction)
    }

    #[test]
    fn zero_fee_is_the_identity() {
        let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
        let base = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
        let wrapped = run_mechanism(&mech(0.0), &profile).unwrap();
        assert_eq!(base.payments, wrapped.payments);
    }

    #[test]
    fn fees_shrink_the_deficit() {
        let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
        let base = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
        let wrapped = run_mechanism(&mech(0.2), &profile).unwrap();
        let base_deficit = base.total_payment() - base.total_valuation_abs();
        let wrapped_deficit = wrapped.total_payment() - wrapped.total_valuation_abs();
        assert!(wrapped_deficit < base_deficit - 1e-9);
    }

    #[test]
    fn batch_fees_match_the_single_index_path() {
        let m = mech(0.3);
        let bids: Vec<f64> = paper_system().true_values();
        let batch = m.fees(&bids, PAPER_ARRIVAL_RATE).unwrap();
        assert_eq!(batch.len(), bids.len());
        for (i, &f) in batch.iter().enumerate() {
            let single = m.fee(&bids, i, PAPER_ARRIVAL_RATE).unwrap();
            assert!(
                (f - single).abs() <= 1e-12 * single.abs().max(1.0),
                "agent {i}: {f} vs {single}"
            );
        }
    }

    #[test]
    fn break_even_keeps_everyone_whole_and_beyond_breaks_participation() {
        let sys = paper_system();
        let trues = sys.true_values();
        let fraction = FeeAdjusted::<CompensationBonusMechanism>::break_even_fraction(
            &trues,
            PAPER_ARRIVAL_RATE,
        )
        .unwrap();
        assert!(fraction > 0.0);

        let profile = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let at_break_even = run_mechanism(&mech(fraction * 0.999), &profile).unwrap();
        for (i, u) in at_break_even.utilities.iter().enumerate() {
            assert!(*u >= -1e-9, "agent {i} lost at break-even: {u}");
        }
        let beyond = run_mechanism(&mech(fraction * 1.5), &profile).unwrap();
        assert!(
            beyond.utilities.iter().any(|&u| u < -1e-9),
            "some agent must lose beyond break-even"
        );
    }

    proptest! {
        /// The fee never depends on the agent's own bid (exact
        /// strategyproofness-preservation certificate).
        #[test]
        fn prop_fee_is_own_bid_independent(
            trues in proptest::collection::vec(0.1f64..10.0, 2..10),
            own_bid_a in 0.1f64..10.0,
            own_bid_b in 0.1f64..10.0,
            rate in 0.5f64..50.0,
        ) {
            let m = mech(0.3);
            let mut bids_a = trues.clone();
            let mut bids_b = trues.clone();
            bids_a[0] = own_bid_a;
            bids_b[0] = own_bid_b;
            let fa = m.fee(&bids_a, 0, rate).unwrap();
            let fb = m.fee(&bids_b, 0, rate).unwrap();
            prop_assert!((fa - fb).abs() < 1e-12, "fee moved with own bid: {} vs {}", fa, fb);
        }

        /// Truthfulness is preserved for any fee fraction.
        #[test]
        fn prop_fee_preserves_truthfulness(
            trues in proptest::collection::vec(0.1f64..10.0, 2..8),
            fraction in 0.0f64..2.0,
            bid_factor in 0.2f64..5.0,
            exec_factor in 1.0f64..4.0,
            rate in 0.5f64..50.0,
        ) {
            let m = mech(fraction);
            let sys = lb_core::System::from_true_values(&trues).unwrap();
            let truthful = run_mechanism(&m, &Profile::truthful(&sys, rate).unwrap())
                .unwrap().utilities[0];
            let deviating = run_mechanism(
                &m,
                &Profile::with_deviation(&sys, rate, 0, bid_factor, exec_factor).unwrap(),
            ).unwrap().utilities[0];
            prop_assert!(deviating <= truthful + 1e-7 * truthful.abs().max(1.0));
        }
    }
}
