//! Strategic profiles: the complete state of one mechanism round.

use crate::error::MechanismError;
use lb_core::machine::validate_values;
use lb_core::{allocation::validate_rate, System};
use serde::{Deserialize, Serialize};

/// The strategic state of one round: who the agents really are
/// (`true_values`), what they claimed (`bids`), how they actually executed
/// (`exec_values`) and the total job arrival rate.
///
/// Invariants enforced at construction:
/// * all three vectors share one length `n ≥ 1`,
/// * every entry is finite and strictly positive,
/// * `exec_values[i] ≥ true_values[i]` — Def. 3.1 of the paper: a machine can
///   execute *slower* than its capability, never faster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    true_values: Vec<f64>,
    bids: Vec<f64>,
    exec_values: Vec<f64>,
    total_rate: f64,
}

impl Profile {
    /// Creates a validated profile.
    ///
    /// # Errors
    /// Returns a [`MechanismError`] describing the violated invariant.
    pub fn new(
        true_values: Vec<f64>,
        bids: Vec<f64>,
        exec_values: Vec<f64>,
        total_rate: f64,
    ) -> Result<Self, MechanismError> {
        validate_values("true value", &true_values)?;
        validate_values("bid", &bids)?;
        validate_values("execution value", &exec_values)?;
        validate_rate(total_rate)?;
        if bids.len() != true_values.len() {
            return Err(lb_core::CoreError::LengthMismatch {
                expected: true_values.len(),
                actual: bids.len(),
            }
            .into());
        }
        if exec_values.len() != true_values.len() {
            return Err(lb_core::CoreError::LengthMismatch {
                expected: true_values.len(),
                actual: exec_values.len(),
            }
            .into());
        }
        for (i, (&t, &e)) in true_values.iter().zip(&exec_values).enumerate() {
            if e < t {
                return Err(MechanismError::ExecutionFasterThanTruth {
                    agent: i,
                    true_value: t,
                    exec_value: e,
                });
            }
        }
        Ok(Self {
            true_values,
            bids,
            exec_values,
            total_rate,
        })
    }

    /// The fully truthful profile for a system: `b = t̃ = t`.
    ///
    /// # Errors
    /// Propagates validation errors (e.g. invalid rate).
    pub fn truthful(system: &System, total_rate: f64) -> Result<Self, MechanismError> {
        let t = system.true_values();
        Self::new(t.clone(), t.clone(), t, total_rate)
    }

    /// A truthful profile with a single deviating agent.
    ///
    /// `bid_factor` scales the deviator's bid relative to its true value;
    /// `exec_factor` scales its execution value (clamped up to ≥ 1 since
    /// machines cannot beat their capacity).
    ///
    /// # Errors
    /// Propagates validation errors; `agent` out of range yields a
    /// length-mismatch error.
    pub fn with_deviation(
        system: &System,
        total_rate: f64,
        agent: usize,
        bid_factor: f64,
        exec_factor: f64,
    ) -> Result<Self, MechanismError> {
        let t = system.true_values();
        if agent >= t.len() {
            return Err(lb_core::CoreError::LengthMismatch {
                expected: t.len(),
                actual: agent,
            }
            .into());
        }
        let mut bids = t.clone();
        let mut exec = t.clone();
        bids[agent] = t[agent] * bid_factor;
        exec[agent] = t[agent] * exec_factor.max(1.0);
        Self::new(t, bids, exec, total_rate)
    }

    /// Number of agents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.true_values.len()
    }

    /// Whether the profile is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.true_values.is_empty()
    }

    /// Private true values `t`.
    #[must_use]
    pub fn true_values(&self) -> &[f64] {
        &self.true_values
    }

    /// Declared bids `b`.
    #[must_use]
    pub fn bids(&self) -> &[f64] {
        &self.bids
    }

    /// Observed execution values `t̃`.
    #[must_use]
    pub fn exec_values(&self) -> &[f64] {
        &self.exec_values
    }

    /// Total job arrival rate `R`.
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.total_rate
    }

    /// Whether every agent bids truthfully and executes at full capacity.
    #[must_use]
    pub fn is_fully_truthful(&self) -> bool {
        self.true_values
            .iter()
            .zip(&self.bids)
            .zip(&self.exec_values)
            .all(|((&t, &b), &e)| (b - t).abs() < 1e-12 && (e - t).abs() < 1e-12)
    }

    /// Returns a copy with agent `agent`'s bid and execution value replaced.
    ///
    /// # Errors
    /// Propagates validation errors (invalid values, exec below truth).
    pub fn replace_agent(
        &self,
        agent: usize,
        bid: f64,
        exec_value: f64,
    ) -> Result<Self, MechanismError> {
        if agent >= self.len() {
            return Err(lb_core::CoreError::LengthMismatch {
                expected: self.len(),
                actual: agent,
            }
            .into());
        }
        let mut bids = self.bids.clone();
        let mut exec = self.exec_values.clone();
        bids[agent] = bid;
        exec[agent] = exec_value;
        Self::new(self.true_values.clone(), bids, exec, self.total_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::scenario::paper_system;

    #[test]
    fn truthful_profile_is_truthful() {
        let p = Profile::truthful(&paper_system(), 20.0).unwrap();
        assert_eq!(p.len(), 16);
        assert!(p.is_fully_truthful());
        assert_eq!(p.bids(), p.true_values());
        assert_eq!(p.total_rate(), 20.0);
    }

    #[test]
    fn execution_faster_than_truth_is_rejected() {
        let err = Profile::new(vec![2.0, 2.0], vec![2.0, 2.0], vec![1.9, 2.0], 5.0).unwrap_err();
        assert!(matches!(
            err,
            MechanismError::ExecutionFasterThanTruth { agent: 0, .. }
        ));
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        assert!(Profile::new(vec![1.0, 2.0], vec![1.0], vec![1.0, 2.0], 5.0).is_err());
        assert!(Profile::new(vec![1.0, 2.0], vec![1.0, 2.0], vec![1.0], 5.0).is_err());
    }

    #[test]
    fn invalid_entries_are_rejected() {
        assert!(Profile::new(vec![0.0], vec![1.0], vec![1.0], 5.0).is_err());
        assert!(Profile::new(vec![1.0], vec![-1.0], vec![1.0], 5.0).is_err());
        assert!(Profile::new(vec![1.0], vec![1.0], vec![f64::NAN], 5.0).is_err());
        assert!(Profile::new(vec![1.0], vec![1.0], vec![1.0], 0.0).is_err());
    }

    #[test]
    fn deviation_builder_clamps_exec_to_capacity() {
        let sys = paper_system();
        // exec_factor 0.5 would be faster than capacity; it must clamp to 1.0.
        let p = Profile::with_deviation(&sys, 20.0, 0, 3.0, 0.5).unwrap();
        assert_eq!(p.exec_values()[0], 1.0);
        assert_eq!(p.bids()[0], 3.0);
        assert!(!p.is_fully_truthful());
        // All other agents untouched.
        assert_eq!(p.bids()[1..], p.true_values()[1..]);
    }

    #[test]
    fn deviation_out_of_range_errors() {
        assert!(Profile::with_deviation(&paper_system(), 20.0, 99, 1.0, 1.0).is_err());
    }

    #[test]
    fn replace_agent_roundtrip() {
        let sys = paper_system();
        let p = Profile::truthful(&sys, 20.0).unwrap();
        let q = p.replace_agent(2, 4.0, 2.5).unwrap();
        assert_eq!(q.bids()[2], 4.0);
        assert_eq!(q.exec_values()[2], 2.5);
        assert!(q.replace_agent(2, 4.0, 1.0).is_err()); // exec < true=2.0
        assert!(q.replace_agent(99, 1.0, 1.0).is_err());
    }
}
