//! Incremental re-allocation for the online mechanism.
//!
//! The batch mechanism recomputes the harmonic sum `S = Σ 1/b_i` and every
//! rate from scratch each round — O(n) per change. [`OnlinePool`] instead
//! keeps the membership in *factored form*: a per-slot bid `b_i` plus the
//! incrementally maintained double-double `S`
//! ([`lb_core::IncrementalInvSum`]). A Join adds `1/b_i` to `S`, a Leave
//! subtracts it, a rate change replaces it — O(1) amortized — and the PR
//! rates `x_i = (1/b_i)/S · R` never need storing at all: every machine's
//! rate is implicitly rescaled by the updated `S`, and
//! [`OnlinePool::rate_of`] evaluates any one of them on demand with the
//! *identical* expression [`lb_core::pr_allocate_with_sum`] uses, so a
//! materialized [`OnlinePool::allocation`] agrees with the factored view
//! bit for bit.
//!
//! Drift from the incremental updates is bounded explicitly: once the
//! tracked bound crosses [`DRIFT_REL_TOL`] relative (heavy cancellation) or
//! the event count since the last re-found reaches the live-machine count
//! (amortization), the pool re-founds `S` with one compensated from-scratch
//! fold — keeping the state within `1e-12` relative of a batch rebuild at
//! *every* event, the contract the `online` fuzz oracle enforces.

use crate::error::MechanismError;
use lb_core::{pr_allocate_with_sum, Allocation, CoreError, IncrementalInvSum, TwoF64};
use std::fmt;

/// Relative drift at which the pool re-founds `S` from the live bids. Two
/// decades of headroom under the `1e-12` equivalence bar the oracle checks.
pub const DRIFT_REL_TOL: f64 = 1e-14;

/// Floor on the re-sum period, so tiny pools do not re-found on every event.
const MIN_RESUM_PERIOD: u64 = 64;

/// Errors from online membership events.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// A Join named a slot that is already live.
    SlotOccupied {
        /// The offending slot.
        slot: usize,
    },
    /// A Leave or rate change named a slot with no live machine.
    SlotVacant {
        /// The offending slot.
        slot: usize,
    },
    /// The underlying mechanism or problem model rejected the event.
    Mechanism(MechanismError),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SlotOccupied { slot } => write!(f, "slot {slot} already holds a live machine"),
            Self::SlotVacant { slot } => write!(f, "slot {slot} holds no live machine"),
            Self::Mechanism(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OnlineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Mechanism(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MechanismError> for OnlineError {
    fn from(e: MechanismError) -> Self {
        Self::Mechanism(e)
    }
}

impl From<CoreError> for OnlineError {
    fn from(e: CoreError) -> Self {
        Self::Mechanism(MechanismError::Core(e))
    }
}

/// Streaming machine membership with an incrementally maintained harmonic
/// sum — the O(1)-per-event core of the online mechanism.
#[derive(Debug, Clone)]
pub struct OnlinePool {
    /// Slot-indexed bids; `None` marks a vacant slot. The vector grows on
    /// demand, so slot ids are stable across the whole stream.
    bids: Vec<Option<f64>>,
    live: usize,
    total_rate: f64,
    s: IncrementalInvSum,
}

impl OnlinePool {
    /// An empty pool distributing total arrival rate `r`.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidRate`] (as [`OnlineError::Mechanism`])
    /// unless `r` is finite and positive.
    pub fn new(r: f64) -> Result<Self, OnlineError> {
        lb_core::allocation::validate_rate(r)?;
        Ok(Self {
            bids: Vec::new(),
            live: 0,
            total_rate: r,
            s: IncrementalInvSum::new(),
        })
    }

    fn validate_bid(bid: f64) -> Result<(), OnlineError> {
        if bid.is_finite() && bid > 0.0 {
            Ok(())
        } else {
            Err(CoreError::InvalidParameter {
                name: "bid",
                value: bid,
            }
            .into())
        }
    }

    /// Joins a machine at `slot` with bid `bid`: adds `1/bid` to `S`. O(1)
    /// amortized (the slot vector grows to cover `slot` on first use).
    ///
    /// # Errors
    /// Rejects occupied slots and non-positive/non-finite bids.
    pub fn join(&mut self, slot: usize, bid: f64) -> Result<(), OnlineError> {
        Self::validate_bid(bid)?;
        if self.bids.len() <= slot {
            self.bids.resize(slot + 1, None);
        }
        if self.bids[slot].is_some() {
            return Err(OnlineError::SlotOccupied { slot });
        }
        self.bids[slot] = Some(bid);
        self.live += 1;
        self.s.insert(bid);
        self.maybe_resum();
        Ok(())
    }

    /// Removes the machine at `slot`: subtracts its `1/bid` from `S`.
    /// Returns the bid that was live. O(1) amortized.
    ///
    /// # Errors
    /// Rejects vacant slots.
    pub fn leave(&mut self, slot: usize) -> Result<f64, OnlineError> {
        let bid = self
            .bids
            .get_mut(slot)
            .and_then(Option::take)
            .ok_or(OnlineError::SlotVacant { slot })?;
        self.live -= 1;
        self.s.remove(bid);
        self.maybe_resum();
        Ok(bid)
    }

    /// Changes the bid of the machine at `slot` (remove-then-insert on
    /// `S`). Returns the previous bid. O(1) amortized.
    ///
    /// # Errors
    /// Rejects vacant slots and invalid bids.
    pub fn rate_change(&mut self, slot: usize, bid: f64) -> Result<f64, OnlineError> {
        Self::validate_bid(bid)?;
        // Confirm occupancy before writing: an erroring rate_change must
        // leave the pool untouched, so the vacant-slot check cannot ride on
        // `Option::replace` (which would deposit the bid first).
        let Some(Some(live_bid)) = self.bids.get_mut(slot) else {
            return Err(OnlineError::SlotVacant { slot });
        };
        let old = std::mem::replace(live_bid, bid);
        self.s.replace(old, bid);
        self.maybe_resum();
        Ok(old)
    }

    /// Re-founds `S` when the drift bound crosses [`DRIFT_REL_TOL`]
    /// relative (cancellation guard) or one period of events has elapsed
    /// (amortization: the period is at least the live count, so the O(live)
    /// fold costs O(1) per event).
    fn maybe_resum(&mut self) {
        let period = (self.live as u64).max(MIN_RESUM_PERIOD);
        if self.s.needs_resum(DRIFT_REL_TOL) || self.s.ops_since_resum() >= period {
            self.resum();
        }
    }

    /// Unconditionally re-founds `S` with a compensated from-scratch fold
    /// over the live bids in slot order — afterwards `S` is bit-identical
    /// to what a batch rebuild computes.
    pub fn resum(&mut self) {
        let values = self.live_bids();
        self.s.resum(&values);
    }

    /// The incrementally maintained harmonic sum `S = Σ 1/b_i`.
    #[must_use]
    pub fn harmonic_sum(&self) -> TwoF64 {
        self.s.value()
    }

    /// Compensated re-sums performed so far (telemetry).
    #[must_use]
    pub fn resums(&self) -> u64 {
        self.s.resums()
    }

    /// Current upper bound on the absolute drift of `S` (telemetry).
    #[must_use]
    pub fn drift_bound(&self) -> f64 {
        self.s.drift_bound()
    }

    /// The total arrival rate `R` the pool distributes.
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.total_rate
    }

    /// Number of live machines.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Width of the slot space (highest slot ever joined, plus one).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.bids.len()
    }

    /// The bid at `slot`, if live.
    #[must_use]
    pub fn bid_of(&self, slot: usize) -> Option<f64> {
        self.bids.get(slot).copied().flatten()
    }

    /// The PR rate of the machine at `slot`, evaluated on demand against
    /// the incremental `S` — the identical expression
    /// [`pr_allocate_with_sum`] uses, so the factored and materialized
    /// views agree bit for bit. O(1).
    #[must_use]
    pub fn rate_of(&self, slot: usize) -> Option<f64> {
        let b = self.bid_of(slot)?;
        let inv_sum = self.s.value().value();
        Some((1.0 / b) / inv_sum * self.total_rate)
    }

    /// Live bids in slot order — the dense bid vector a batch settle or a
    /// from-scratch rebuild consumes. O(slots).
    #[must_use]
    pub fn live_bids(&self) -> Vec<f64> {
        self.bids.iter().copied().flatten().collect()
    }

    /// Live slot ids in slot order, aligned with [`OnlinePool::live_bids`].
    #[must_use]
    pub fn live_slots(&self) -> Vec<usize> {
        self.bids
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.map(|_| i))
            .collect()
    }

    /// Materializes the dense allocation over the live machines (slot
    /// order) against the incremental `S` — the settle-on-tick entry point.
    /// O(live).
    ///
    /// # Errors
    /// Returns [`MechanismError::NeedTwoAgents`] with fewer than two live
    /// machines (the bonus term is undefined otherwise), or numeric errors
    /// from [`pr_allocate_with_sum`].
    pub fn allocation(&self) -> Result<Allocation, OnlineError> {
        if self.live < 2 {
            return Err(MechanismError::NeedTwoAgents.into());
        }
        let values = self.live_bids();
        Ok(pr_allocate_with_sum(
            &values,
            self.total_rate,
            self.s.value(),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::inv_sum_dd;

    fn rel(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(f64::MIN_POSITIVE)
    }

    #[test]
    fn join_leave_rate_change_track_a_batch_rebuild() {
        let mut pool = OnlinePool::new(10.0).unwrap();
        pool.join(0, 1.0).unwrap();
        pool.join(1, 2.0).unwrap();
        pool.join(3, 4.0).unwrap();
        assert_eq!(pool.live(), 3);
        assert_eq!(pool.live_slots(), vec![0, 1, 3]);

        let scratch = inv_sum_dd(&[1.0, 2.0, 4.0]);
        assert!(rel(pool.harmonic_sum().value(), scratch.value()) <= 1e-15);

        pool.rate_change(1, 0.5).unwrap();
        pool.leave(0).unwrap();
        let scratch = inv_sum_dd(&[0.5, 4.0]);
        assert!(rel(pool.harmonic_sum().value(), scratch.value()) <= 1e-14);

        // The factored rate equals the materialized allocation bit for bit.
        let alloc = pool.allocation().unwrap();
        assert_eq!(pool.rate_of(1).unwrap().to_bits(), alloc.rate(0).to_bits());
        assert_eq!(pool.rate_of(3).unwrap().to_bits(), alloc.rate(1).to_bits());
        // Conservation: the two rates sum to R within feasibility noise.
        assert!(alloc.is_feasible(10.0, 1e-9));
    }

    #[test]
    fn slot_conflicts_and_bad_bids_are_typed_errors() {
        let mut pool = OnlinePool::new(5.0).unwrap();
        pool.join(2, 1.0).unwrap();
        assert_eq!(
            pool.join(2, 1.0).unwrap_err(),
            OnlineError::SlotOccupied { slot: 2 }
        );
        assert_eq!(
            pool.leave(7).unwrap_err(),
            OnlineError::SlotVacant { slot: 7 }
        );
        assert_eq!(
            pool.rate_change(0, 2.0).unwrap_err(),
            OnlineError::SlotVacant { slot: 0 }
        );
        assert!(matches!(
            pool.join(3, -1.0).unwrap_err(),
            OnlineError::Mechanism(MechanismError::Core(CoreError::InvalidParameter { .. }))
        ));
        assert!(OnlinePool::new(f64::NAN).is_err());
        // One live machine cannot settle.
        assert!(matches!(
            pool.allocation().unwrap_err(),
            OnlineError::Mechanism(MechanismError::NeedTwoAgents)
        ));
    }

    #[test]
    fn rate_change_on_vacant_slot_leaves_pool_untouched() {
        let mut pool = OnlinePool::new(5.0).unwrap();
        pool.join(0, 1.0).unwrap();
        pool.join(2, 4.0).unwrap();
        // Slot 1 is allocated (inside the slot vector) but vacant — the
        // regression wrote the bid into it before reporting SlotVacant.
        let sum_before = pool.harmonic_sum();
        assert_eq!(
            pool.rate_change(1, 2.0).unwrap_err(),
            OnlineError::SlotVacant { slot: 1 }
        );
        assert_eq!(pool.bid_of(1), None, "no phantom bid after error");
        assert_eq!(pool.live(), 2);
        assert_eq!(pool.live_slots(), vec![0, 2]);
        assert_eq!(
            pool.harmonic_sum().value().to_bits(),
            sum_before.value().to_bits(),
            "S untouched by the failed event"
        );
        // The slot is still joinable and the pool still settles.
        pool.join(1, 2.0).unwrap();
        let scratch = inv_sum_dd(&[1.0, 2.0, 4.0]);
        assert!(rel(pool.harmonic_sum().value(), scratch.value()) <= 1e-14);
        assert!(pool.allocation().is_ok());
    }

    #[test]
    fn cancellation_guard_triggers_resum() {
        let mut pool = OnlinePool::new(1.0).unwrap();
        pool.join(0, 1e6).unwrap();
        pool.join(1, 2e6).unwrap();
        // A dominant machine churning in and out forces the guard well
        // before the periodic re-sum would fire.
        for _ in 0..40 {
            pool.join(2, 1e-9).unwrap();
            pool.leave(2).unwrap();
        }
        assert!(pool.resums() >= 1, "guard or period re-founded S");
        let scratch = inv_sum_dd(&pool.live_bids());
        assert!(rel(pool.harmonic_sum().value(), scratch.value()) <= 1e-12);
    }
}
