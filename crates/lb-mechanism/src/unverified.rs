//! Ablation baseline: compensation-and-bonus **without** verification.
//!
//! Identical to [`crate::cb::CompensationBonusMechanism`] except that the
//! payment is computed from the *bids only* — the mechanism never observes
//! how fast the jobs were actually executed:
//!
//! ```text
//! P_i(b) = C_i(b_i, x_i) + L_{-i}(b_{-i}) − L(x(b), b)
//! ```
//!
//! (with `C_i(b_i, x_i)` the compensation formula evaluated at the *declared*
//! value). This is a VCG-style payment over the declared problem, and it
//! remains *bid*-truthful under the paper's valuation. What it loses — and
//! what the paper's verification buys — is any coupling between payments and
//! the **realised** execution:
//!
//! 1. **No execution response.** The payment is completely insensitive to
//!    the observed execution values `t̃`. An agent that executes arbitrarily
//!    slowly (paper experiments True2, High4, Low2) is paid exactly as if it
//!    had run at full capacity, and the damage it causes to the other
//!    agents' latency is never charged to anyone.
//! 2. **Compensation drift.** The compensation refunds the *declared* cost,
//!    not the realised cost. Any execution degradation (strategic or
//!    accidental — overload, faults) leaves an uncompensated gap, and the
//!    mechanism is blind to it.
//!
//! The integration tests and the `ablation` bench quantify both effects;
//! that payment-responsiveness gap is the paper's motivation for paying only
//! after execution has been observed.

use crate::error::MechanismError;
use crate::traits::{ValuationModel, VerifiedMechanism};
use lb_core::allocation::LeaveOneOut;
use lb_core::{pr_allocate, total_latency_linear, Allocation};
use serde::{Deserialize, Serialize};

/// Compensation-and-bonus payments computed from bids alone (no verification).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnverifiedCompensationBonus {
    /// Valuation/compensation model (see [`ValuationModel`]).
    pub valuation: ValuationModel,
}

impl UnverifiedCompensationBonus {
    /// Paper-faithful valuation configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            valuation: ValuationModel::PerJobLatency,
        }
    }
}

impl VerifiedMechanism for UnverifiedCompensationBonus {
    fn name(&self) -> &'static str {
        "compensation-bonus (unverified)"
    }

    fn valuation_model(&self) -> ValuationModel {
        self.valuation
    }

    fn allocate(&self, bids: &[f64], total_rate: f64) -> Result<Allocation, MechanismError> {
        Ok(pr_allocate(bids, total_rate)?)
    }

    fn payments(
        &self,
        bids: &[f64],
        allocation: &Allocation,
        _exec_values: &[f64],
        total_rate: f64,
    ) -> Result<Vec<f64>, MechanismError> {
        if bids.len() < 2 {
            return Err(MechanismError::NeedTwoAgents);
        }
        if allocation.len() != bids.len() {
            return Err(lb_core::CoreError::LengthMismatch {
                expected: bids.len(),
                actual: allocation.len(),
            }
            .into());
        }
        // The declared latency: what the mechanism *believes* happened. All
        // n leave-one-out terms come from one O(n) batch call.
        let declared_latency = total_latency_linear(allocation, bids)?;
        let loo = LeaveOneOut::compute(bids, total_rate)?;
        (0..bids.len())
            .map(|i| {
                let x = allocation.rate(i);
                let compensation = self.valuation.compensation(x, bids[i]);
                Ok(compensation + loo.excluding(i) - declared_latency)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cb::CompensationBonusMechanism;
    use crate::profile::Profile;
    use crate::traits::run_mechanism;
    use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};

    #[test]
    fn agrees_with_verified_on_fully_truthful_profiles() {
        let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
        let verified = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
        let unverified = run_mechanism(&UnverifiedCompensationBonus::paper(), &profile).unwrap();
        for (a, b) in verified.payments.iter().zip(&unverified.payments) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn payment_is_insensitive_to_execution_without_verification() {
        // Agent 0 bids truthfully but executes slower and slower. The
        // unverified mechanism pays it exactly the same every time; the
        // verified mechanism's payment strictly decreases (C1 carries a load
        // x1 ≈ 3.9 > 1, so the bonus drop dominates the compensation rise).
        let sys = paper_system();
        let honest = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let mech = UnverifiedCompensationBonus::paper();
        let p_honest = run_mechanism(&mech, &honest).unwrap().payments[0];

        let mut prev_verified = f64::INFINITY;
        for exec_factor in [1.5, 2.0, 3.0] {
            let lazy =
                Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, 1.0, exec_factor).unwrap();
            let p_lazy = run_mechanism(&mech, &lazy).unwrap().payments[0];
            assert!((p_honest - p_lazy).abs() < 1e-9, "{p_honest} vs {p_lazy}");

            let v_lazy = run_mechanism(&CompensationBonusMechanism::paper(), &lazy)
                .unwrap()
                .payments[0];
            assert!(
                v_lazy < p_lazy - 1e-6,
                "verified {v_lazy} !< unverified {p_lazy}"
            );
            assert!(v_lazy < prev_verified, "verified payment must keep falling");
            prev_verified = v_lazy;
        }
    }

    #[test]
    fn other_agents_payments_ignore_the_damage_without_verification() {
        // When C1 goes lazy, every other agent's realised bonus shrinks under
        // the verified mechanism (the shared latency term grew), but the
        // unverified mechanism keeps paying them as if nothing happened.
        let sys = paper_system();
        let honest = Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap();
        let lazy = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, 1.0, 3.0).unwrap();

        let unv = UnverifiedCompensationBonus::paper();
        let ver = CompensationBonusMechanism::paper();
        let u_honest = run_mechanism(&unv, &honest).unwrap().payments;
        let u_lazy = run_mechanism(&unv, &lazy).unwrap().payments;
        let v_honest = run_mechanism(&ver, &honest).unwrap().payments;
        let v_lazy = run_mechanism(&ver, &lazy).unwrap().payments;
        for j in 1..16 {
            assert!(
                (u_honest[j] - u_lazy[j]).abs() < 1e-9,
                "unverified payment moved for {j}"
            );
            assert!(
                v_lazy[j] < v_honest[j] - 1e-9,
                "verified payment did not react for {j}"
            );
        }
    }

    #[test]
    fn compensation_drifts_from_realised_cost_without_verification() {
        // A machine degrades (t̃ = 2t) while bidding honestly. Verified
        // compensation still refunds the realised cost exactly; unverified
        // compensation refunds only the declared cost — half the real one.
        let sys = paper_system();
        let degraded = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, 1.0, 2.0).unwrap();

        let ver = CompensationBonusMechanism::paper();
        let alloc = ver.allocate(degraded.bids(), PAPER_ARRIVAL_RATE).unwrap();
        let x0 = alloc.rate(0);
        let realised_cost = ver.valuation.compensation(x0, degraded.exec_values()[0]);

        let breakdown = ver
            .payment_breakdown(
                degraded.bids(),
                &alloc,
                degraded.exec_values(),
                PAPER_ARRIVAL_RATE,
            )
            .unwrap();
        assert!((breakdown[0].compensation - realised_cost).abs() < 1e-9);

        let declared_cost = ver.valuation.compensation(x0, degraded.bids()[0]);
        assert!((declared_cost - realised_cost / 2.0).abs() < 1e-9);
    }

    #[test]
    fn bid_truthfulness_still_holds_without_verification() {
        // The unverified variant is VCG over the declared problem: with full
        // capacity execution, no bid deviation beats truth under the
        // contributed-latency valuation (whose cost function the VCG payment
        // aligns with). What it cannot do is react to execution.
        let sys = paper_system();
        let mech = UnverifiedCompensationBonus {
            valuation: ValuationModel::ContributedLatency,
        };
        let truthful = run_mechanism(&mech, &Profile::truthful(&sys, PAPER_ARRIVAL_RATE).unwrap())
            .unwrap()
            .utilities[0];
        for bid_factor in [0.25, 0.5, 0.8, 1.2, 2.0, 4.0] {
            let p = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, bid_factor, 1.0).unwrap();
            let u = run_mechanism(&mech, &p).unwrap().utilities[0];
            assert!(
                u <= truthful + 1e-9,
                "bid deviation {bid_factor} gained: {u} > {truthful}"
            );
        }
    }

    #[test]
    fn singleton_rejected() {
        let profile = Profile::new(vec![1.0], vec![1.0], vec![1.0], 2.0).unwrap();
        assert!(matches!(
            run_mechanism(&UnverifiedCompensationBonus::paper(), &profile),
            Err(MechanismError::NeedTwoAgents)
        ));
    }
}
