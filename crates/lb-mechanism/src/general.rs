//! Generalized compensation-and-bonus mechanism over arbitrary convex
//! latency families.
//!
//! The paper proves its results for linear latencies; the construction is
//! more general: all it needs is (a) an allocation rule that minimises the
//! total latency given declared parameters, and (b) the `L_{-i}` benchmark
//! for the same family. This module lifts the mechanism to any
//! [`LatencyFamily`] — a one-parameter family of convex latency functions —
//! using the KKT solver from `lb-core` for both. Instantiated with
//! [`LinearFamily`] it reproduces [`crate::cb::CompensationBonusMechanism`]
//! exactly (tested); instantiated with [`Mm1Family`] it covers the M/M/1
//! model of the authors' companion paper (Grosu & Chronopoulos, Cluster
//! 2002, [ref.&nbsp;8]).

use crate::error::MechanismError;
use crate::traits::{ValuationModel, VerifiedMechanism};
use lb_core::latency::{LatencyFunction, Linear, Mm1};
use lb_core::{solve_convex, Allocation, ConvexSolverOptions};

/// A one-parameter family of latency functions, indexed by the agents'
/// scalar type `t` (small `t` = fast machine, exactly as in the paper).
pub trait LatencyFamily {
    /// The concrete latency function type.
    type Fn: LatencyFunction;

    /// Builds the latency function for a machine with parameter `t`.
    ///
    /// # Errors
    /// Returns an error for invalid parameters.
    fn make(&self, t: f64) -> Result<Self::Fn, MechanismError>;

    /// Family name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's linear family: `l(x) = t·x`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinearFamily;

impl LatencyFamily for LinearFamily {
    type Fn = Linear;
    fn make(&self, t: f64) -> Result<Linear, MechanismError> {
        if !(t.is_finite() && t > 0.0) {
            return Err(lb_core::CoreError::InvalidParameter {
                name: "linear t",
                value: t,
            }
            .into());
        }
        Ok(Linear::new(t))
    }
    fn name(&self) -> &'static str {
        "linear"
    }
}

/// M/M/1 family: parameter `t = 1/μ` (mean service time), `l(x) = 1/(μ−x)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mm1Family;

impl LatencyFamily for Mm1Family {
    type Fn = Mm1;
    fn make(&self, t: f64) -> Result<Mm1, MechanismError> {
        if !(t.is_finite() && t > 0.0) {
            return Err(lb_core::CoreError::InvalidParameter {
                name: "mm1 t",
                value: t,
            }
            .into());
        }
        Ok(Mm1::new(1.0 / t))
    }
    fn name(&self) -> &'static str {
        "mm1"
    }
}

/// Compensation-and-bonus mechanism with verification over a latency family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeneralizedCompensationBonus<F> {
    /// The latency family.
    pub family: F,
    /// Valuation/compensation model.
    pub valuation: ValuationModel,
    /// Convex-solver options used for allocation and benchmarks.
    pub solver: SolverOptionsWrapper,
}

/// Wrapper giving `ConvexSolverOptions` `Eq` semantics for derive purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptionsWrapper(pub ConvexSolverOptions);

impl Eq for SolverOptionsWrapper {}

impl Default for SolverOptionsWrapper {
    fn default() -> Self {
        Self(ConvexSolverOptions::default())
    }
}

impl<F: LatencyFamily> GeneralizedCompensationBonus<F> {
    /// Creates the mechanism with default options.
    #[must_use]
    pub fn new(family: F) -> Self {
        Self {
            family,
            valuation: ValuationModel::default(),
            solver: SolverOptionsWrapper::default(),
        }
    }

    fn fns(&self, values: &[f64]) -> Result<Vec<F::Fn>, MechanismError> {
        values.iter().map(|&v| self.family.make(v)).collect()
    }

    fn optimal_latency(&self, values: &[f64], rate: f64) -> Result<f64, MechanismError> {
        let fns = self.fns(values)?;
        let refs: Vec<&F::Fn> = fns.iter().collect();
        let alloc = solve_convex(&refs, rate, self.solver.0)?;
        Ok(alloc
            .rates()
            .iter()
            .zip(&fns)
            .map(|(&x, f)| f.total(x))
            .sum())
    }

    /// Actual total latency of `allocation` under execution parameters.
    ///
    /// For capacitated families a machine may have *attracted* (via its bid)
    /// more load than it can actually serve; its stationary latency then
    /// diverges and the round has no well-defined settlement — reported as
    /// an [`lb_core::CoreError::Infeasible`] error rather than a NaN payment.
    fn actual_latency(&self, allocation: &Allocation, exec: &[f64]) -> Result<f64, MechanismError> {
        let fns = self.fns(exec)?;
        let total: f64 = allocation
            .rates()
            .iter()
            .zip(&fns)
            .map(|(&x, f)| f.total(x))
            .sum();
        if !total.is_finite() {
            return Err(lb_core::CoreError::Infeasible {
                reason:
                    "realised latency diverges: a machine was allocated beyond its actual capacity"
                        .to_string(),
            }
            .into());
        }
        Ok(total)
    }

    fn valuation_of(&self, f: &F::Fn, x: f64) -> f64 {
        match self.valuation {
            ValuationModel::PerJobLatency => -f.per_job(x),
            ValuationModel::ContributedLatency => -f.total(x),
        }
    }
}

impl<F: LatencyFamily> VerifiedMechanism for GeneralizedCompensationBonus<F> {
    fn name(&self) -> &'static str {
        "generalized compensation-bonus"
    }

    fn valuation_model(&self) -> ValuationModel {
        self.valuation
    }

    fn valuation(&self, rate: f64, exec_value: f64) -> f64 {
        match self.family.make(exec_value) {
            Ok(f) => self.valuation_of(&f, rate),
            Err(_) => f64::NAN,
        }
    }

    fn realised_latency(
        &self,
        allocation: &Allocation,
        exec_values: &[f64],
    ) -> Result<f64, MechanismError> {
        self.actual_latency(allocation, exec_values)
    }

    fn allocate(&self, bids: &[f64], total_rate: f64) -> Result<Allocation, MechanismError> {
        let fns = self.fns(bids)?;
        let refs: Vec<&F::Fn> = fns.iter().collect();
        Ok(solve_convex(&refs, total_rate, self.solver.0)?)
    }

    fn payments(
        &self,
        bids: &[f64],
        allocation: &Allocation,
        exec_values: &[f64],
        total_rate: f64,
    ) -> Result<Vec<f64>, MechanismError> {
        if bids.len() < 2 {
            return Err(MechanismError::NeedTwoAgents);
        }
        if allocation.len() != bids.len() || exec_values.len() != bids.len() {
            return Err(lb_core::CoreError::LengthMismatch {
                expected: bids.len(),
                actual: allocation.len().min(exec_values.len()),
            }
            .into());
        }
        let actual = self.actual_latency(allocation, exec_values)?;
        let exec_fns = self.fns(exec_values)?;
        (0..bids.len())
            .map(|i| {
                let x = allocation.rate(i);
                let compensation = -self.valuation_of(&exec_fns[i], x);
                let others: Vec<f64> = bids
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &b)| b)
                    .collect();
                let without_i = self.optimal_latency(&others, total_rate)?;
                Ok(compensation + without_i - actual)
            })
            .collect()
    }
}

/// Note on the valuation in the generalized setting: the per-job cost of a
/// machine is its latency `l(x; t̃)` and the contributed cost is
/// `x·l(x; t̃)`; for the linear family these reduce to `t̃·x` and `t̃·x²`,
/// recovering the paper's formulas exactly.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::cb::CompensationBonusMechanism;
    use crate::profile::Profile;
    use crate::traits::run_mechanism;
    use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};
    use lb_core::System;

    #[test]
    fn linear_family_reduces_to_paper_mechanism() {
        let gen = GeneralizedCompensationBonus::new(LinearFamily);
        let cb = CompensationBonusMechanism::paper();
        for (bid_f, exec_f) in [(1.0, 1.0), (3.0, 3.0), (0.5, 2.0)] {
            let profile =
                Profile::with_deviation(&paper_system(), PAPER_ARRIVAL_RATE, 0, bid_f, exec_f)
                    .unwrap();
            let a = run_mechanism(&gen, &profile).unwrap();
            let b = run_mechanism(&cb, &profile).unwrap();
            for i in 0..16 {
                assert!(
                    (a.payments[i] - b.payments[i]).abs() < 1e-5 * b.payments[i].abs().max(1.0),
                    "agent {i}: {} vs {}",
                    a.payments[i],
                    b.payments[i]
                );
                assert!(
                    (a.utilities[i] - b.utilities[i]).abs() < 1e-5 * b.utilities[i].abs().max(1.0)
                );
            }
        }
    }

    fn mm1_system() -> System {
        // Mean service times t = 1/mu; capacities mu = [10, 5, 2].
        System::from_true_values(&[0.1, 0.2, 0.5]).unwrap()
    }

    #[test]
    fn mm1_truthful_round_is_feasible_and_optimal() {
        let gen = GeneralizedCompensationBonus::new(Mm1Family);
        let sys = mm1_system();
        // Capacities mu = [10, 5, 2]; the bonus benchmark L_{-i} must stay
        // feasible for every i, so the load must be below the smallest
        // leave-one-out capacity (7 here) — the "no monopolist" condition.
        let profile = Profile::truthful(&sys, 5.0).unwrap();
        let out = run_mechanism(&gen, &profile).unwrap();
        // Allocation below each capacity.
        for (x, t) in out.allocation.rates().iter().zip(&sys.true_values()) {
            assert!(*x < 1.0 / t, "x {x} vs capacity {}", 1.0 / t);
        }
        // Voluntary participation: no truthful agent loses; loaded agents
        // strictly profit. (At this load the slowest machine is optimally
        // idle — its marginal latency at zero exceeds the KKT multiplier —
        // so its marginal contribution, and hence its bonus, is exactly 0.)
        for (i, u) in out.utilities.iter().enumerate() {
            assert!(*u >= -1e-9, "agent {i}: {u}");
            if out.allocation.rate(i) > 1e-9 {
                assert!(*u > 1e-9, "loaded agent {i} did not profit: {u}");
            }
        }
    }

    #[test]
    fn mm1_truthfulness_on_deviation_grid() {
        let gen = GeneralizedCompensationBonus::new(Mm1Family);
        let sys = mm1_system();
        let rate = 5.0;
        let truthful = run_mechanism(&gen, &Profile::truthful(&sys, rate).unwrap())
            .unwrap()
            .utilities[0];
        for bid_f in [0.5, 0.8, 1.2, 1.5, 2.5] {
            for exec_f in [1.0, 1.3, 2.0] {
                let p = Profile::with_deviation(&sys, rate, 0, bid_f, exec_f).unwrap();
                match run_mechanism(&gen, &p) {
                    Ok(out) => {
                        assert!(
                            out.utilities[0] <= truthful + 1e-6 * truthful.abs().max(1.0),
                            "deviation ({bid_f},{exec_f}) gained: {} > {truthful}",
                            out.utilities[0]
                        );
                    }
                    Err(MechanismError::Core(lb_core::CoreError::InsufficientCapacity {
                        ..
                    })) => {
                        // A deviation that makes the declared system unable to
                        // carry the load is rejected outright — also no gain.
                    }
                    Err(MechanismError::Core(lb_core::CoreError::Infeasible { .. })) => {
                        // Under-bidding can attract more load than the machine
                        // can actually serve: its queue diverges, which is the
                        // opposite of a profitable deviation.
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
    }

    #[test]
    fn mm1_monopolist_load_is_rejected() {
        // At R = 10 the system cannot do without machine 0 (remaining
        // capacity 7): the L_{-0} benchmark is undefined and the mechanism
        // refuses the round instead of inventing a payment.
        let gen = GeneralizedCompensationBonus::new(Mm1Family);
        let profile = Profile::truthful(&mm1_system(), 10.0).unwrap();
        assert!(matches!(
            run_mechanism(&gen, &profile),
            Err(MechanismError::Core(
                lb_core::CoreError::InsufficientCapacity { .. }
            ))
        ));
    }

    #[test]
    fn mm1_over_capacity_bids_are_rejected() {
        let gen = GeneralizedCompensationBonus::new(Mm1Family);
        // Declared capacities sum to 3 < rate 5.
        let err = gen.allocate(&[1.0, 2.0], 5.0).unwrap_err();
        assert!(matches!(
            err,
            MechanismError::Core(lb_core::CoreError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn singleton_rejected() {
        let gen = GeneralizedCompensationBonus::new(LinearFamily);
        let profile = Profile::new(vec![1.0], vec![1.0], vec![1.0], 2.0).unwrap();
        assert!(matches!(
            run_mechanism(&gen, &profile),
            Err(MechanismError::NeedTwoAgents)
        ));
    }

    #[test]
    fn family_constructors_validate() {
        assert!(LinearFamily.make(0.0).is_err());
        assert!(Mm1Family.make(-1.0).is_err());
        assert!(Mm1Family.make(0.5).is_ok());
        assert_eq!(LinearFamily.name(), "linear");
        assert_eq!(Mm1Family.name(), "mm1");
    }
}
