//! The mechanism abstraction and outcome accounting.

use crate::error::MechanismError;
use crate::profile::Profile;
use lb_core::{Allocation, TwoF64};
use serde::{Deserialize, Serialize};

/// How an agent's valuation (its "benefit or loss", Def. 3.1) is modelled.
///
/// The paper defines the valuation as "the negation of its latency". Two
/// readings are arithmetically consistent with different parts of the paper
/// (the published formulae are OCR-damaged; see `DESIGN.md`):
///
/// * [`ValuationModel::PerJobLatency`] — `V_i = −t̃_i·x_i`, the per-job
///   latency `l_i(x_i)` a job experiences at machine `i`. This is the only
///   reading consistent with the paper's *numerical* claims: the negative
///   payment of C1 in experiment Low2 and the payment drop in True2 both
///   require the compensation `C_i = t̃_i·x_i`. **Paper-faithful default.**
/// * [`ValuationModel::ContributedLatency`] — `V_i = −t̃_i·x_i²`, machine
///   `i`'s contribution to the total latency objective (so `Σ V_i = −L`).
///   This matches the printed `x²` glyphs in Defs. 3.1/3.3.
///
/// The choice only shifts payment *levels* (compensation always exactly
/// cancels the valuation, so utility = bonus under both): every incentive
/// theorem is unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ValuationModel {
    /// `V_i = −t̃_i·x_i` (per-job latency; matches the paper's numbers).
    #[default]
    PerJobLatency,
    /// `V_i = −t̃_i·x_i²` (contribution to total latency; matches the
    /// printed formulae).
    ContributedLatency,
}

impl ValuationModel {
    /// Evaluates the valuation of an agent with execution value `exec_value`
    /// serving jobs at rate `rate`.
    #[must_use]
    pub fn valuation(self, rate: f64, exec_value: f64) -> f64 {
        match self {
            Self::PerJobLatency => -exec_value * rate,
            Self::ContributedLatency => -exec_value * rate * rate,
        }
    }

    /// The compensation that exactly cancels the valuation (`C = −V`).
    #[must_use]
    pub fn compensation(self, rate: f64, exec_value: f64) -> f64 {
        -self.valuation(rate, exec_value)
    }
}

/// A direct-revelation load balancing mechanism with verification
/// (Def. 3.2 of the paper): an allocation function over bids plus a payment
/// function over bids *and observed execution values*.
pub trait VerifiedMechanism {
    /// Human-readable mechanism name (for reports and tables).
    fn name(&self) -> &'static str;

    /// The valuation model this mechanism's payments are designed around.
    fn valuation_model(&self) -> ValuationModel {
        ValuationModel::default()
    }

    /// An agent's valuation when serving at `rate` with execution value
    /// `exec_value`.
    ///
    /// Defaults to the linear-latency formula of [`ValuationModel`];
    /// mechanisms over other latency families
    /// ([`crate::general::GeneralizedCompensationBonus`]) override it so the
    /// valuation, the compensation and the realised latency all speak the
    /// same cost language.
    fn valuation(&self, rate: f64, exec_value: f64) -> f64 {
        self.valuation_model().valuation(rate, exec_value)
    }

    /// Realised total latency of `allocation` under the execution values,
    /// in this mechanism's latency family (linear by default).
    ///
    /// # Errors
    /// Returns an error on arity mismatches.
    fn realised_latency(
        &self,
        allocation: &Allocation,
        exec_values: &[f64],
    ) -> Result<f64, MechanismError> {
        Ok(lb_core::total_latency_linear(allocation, exec_values)?)
    }

    /// The allocation function `x(b)` — jobs are assigned from bids alone,
    /// before any execution happens.
    ///
    /// # Errors
    /// Returns a [`MechanismError`] for invalid bids or rate.
    fn allocate(&self, bids: &[f64], total_rate: f64) -> Result<Allocation, MechanismError>;

    /// The payment function `P(b, t̃)`, evaluated after execution when the
    /// execution values `t̃` have been observed.
    ///
    /// Mechanisms without verification simply ignore `exec_values` here —
    /// that is precisely what [`crate::unverified::UnverifiedCompensationBonus`]
    /// does, and the ablation experiments quantify the consequences.
    ///
    /// # Errors
    /// Returns a [`MechanismError`] for arity mismatches or degenerate
    /// systems (fewer than two agents).
    fn payments(
        &self,
        bids: &[f64],
        allocation: &Allocation,
        exec_values: &[f64],
        total_rate: f64,
    ) -> Result<Vec<f64>, MechanismError>;

    /// [`VerifiedMechanism::allocate`] against a pre-aggregated harmonic sum
    /// `s = Σ 1/b_j` in double-double precision.
    ///
    /// The sharded coordinator merges per-shard `TwoF64` partials into one
    /// `s` and hands it down here so that allocation never re-reduces the
    /// full bid vector. The default ignores `s` and recomputes from `bids` —
    /// still shard-count invariant (the same full vector is re-reduced the
    /// same way regardless of `k`), just without the O(n)-scan saving.
    /// Mechanisms whose allocation is a function of the harmonic sum
    /// ([`crate::cb::CompensationBonusMechanism`]) override this to consume
    /// `s` directly, which keeps the sharded and single-coordinator paths on
    /// bit-identical arithmetic.
    ///
    /// # Errors
    /// Returns a [`MechanismError`] for invalid bids or rate.
    fn allocate_with_sum(
        &self,
        bids: &[f64],
        total_rate: f64,
        s: TwoF64,
    ) -> Result<Allocation, MechanismError> {
        let _ = s;
        self.allocate(bids, total_rate)
    }

    /// [`VerifiedMechanism::payments`] against a pre-aggregated harmonic sum
    /// `s = Σ 1/b_j` in double-double precision.
    ///
    /// Same contract as [`VerifiedMechanism::allocate_with_sum`]: the default
    /// ignores `s` and defers to [`VerifiedMechanism::payments`]; mechanisms
    /// built on the leave-one-out kernel override it so the settle phase
    /// reuses the merged shard sum instead of re-reducing all `n` bids.
    ///
    /// # Errors
    /// Returns a [`MechanismError`] for arity mismatches or degenerate
    /// systems (fewer than two agents).
    fn payments_with_sum(
        &self,
        bids: &[f64],
        allocation: &Allocation,
        exec_values: &[f64],
        total_rate: f64,
        s: TwoF64,
    ) -> Result<Vec<f64>, MechanismError> {
        let _ = s;
        self.payments(bids, allocation, exec_values, total_rate)
    }
}

/// Complete accounting of one mechanism round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MechanismOutcome {
    /// Job-rate allocation computed from the bids.
    pub allocation: Allocation,
    /// Payment handed to each agent.
    pub payments: Vec<f64>,
    /// Each agent's valuation `V_i` under the mechanism's valuation model.
    pub valuations: Vec<f64>,
    /// Each agent's utility `U_i = P_i + V_i`.
    pub utilities: Vec<f64>,
    /// Actual total latency `L(x(b), t̃) = Σ t̃_i x_i²` realised this round.
    pub total_latency: f64,
}

impl MechanismOutcome {
    /// Sum of payments handed out by the mechanism.
    #[must_use]
    pub fn total_payment(&self) -> f64 {
        self.payments.iter().sum()
    }

    /// Sum of absolute valuations.
    #[must_use]
    pub fn total_valuation_abs(&self) -> f64 {
        self.valuations.iter().map(|v| v.abs()).sum()
    }

    /// Sum of agent utilities.
    #[must_use]
    pub fn total_utility(&self) -> f64 {
        self.utilities.iter().sum()
    }
}

/// Runs one full round of `mechanism` on `profile`: allocate from the bids,
/// realise the latency under the execution values, compute payments,
/// valuations and utilities.
///
/// # Errors
/// Propagates any [`MechanismError`] from allocation or payment computation.
pub fn run_mechanism<M: VerifiedMechanism + ?Sized>(
    mechanism: &M,
    profile: &Profile,
) -> Result<MechanismOutcome, MechanismError> {
    let allocation = mechanism.allocate(profile.bids(), profile.total_rate())?;
    let payments = mechanism.payments(
        profile.bids(),
        &allocation,
        profile.exec_values(),
        profile.total_rate(),
    )?;

    let valuations: Vec<f64> = allocation
        .rates()
        .iter()
        .zip(profile.exec_values())
        .map(|(&x, &e)| mechanism.valuation(x, e))
        .collect();
    let utilities: Vec<f64> = payments
        .iter()
        .zip(&valuations)
        .map(|(p, v)| p + v)
        .collect();
    let total_latency = mechanism.realised_latency(&allocation, profile.exec_values())?;

    Ok(MechanismOutcome {
        allocation,
        payments,
        valuations,
        utilities,
        total_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cb::CompensationBonusMechanism;
    use lb_core::scenario::paper_system;

    #[test]
    fn valuation_models_evaluate() {
        assert_eq!(ValuationModel::PerJobLatency.valuation(3.0, 2.0), -6.0);
        assert_eq!(
            ValuationModel::ContributedLatency.valuation(3.0, 2.0),
            -18.0
        );
        assert_eq!(ValuationModel::PerJobLatency.compensation(3.0, 2.0), 6.0);
    }

    #[test]
    fn outcome_totals_are_consistent() {
        let mech = CompensationBonusMechanism::paper();
        let profile = Profile::truthful(&paper_system(), 20.0).unwrap();
        let out = run_mechanism(&mech, &profile).unwrap();
        assert_eq!(out.payments.len(), 16);
        assert!((out.total_payment() - out.payments.iter().sum::<f64>()).abs() < 1e-12);
        // Utility identity: U = P + V elementwise.
        for i in 0..16 {
            assert!((out.utilities[i] - (out.payments[i] + out.valuations[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn contributed_model_valuation_totals_equal_latency() {
        let mech = CompensationBonusMechanism::contributed();
        let profile = Profile::truthful(&paper_system(), 20.0).unwrap();
        let out = run_mechanism(&mech, &profile).unwrap();
        assert!((out.total_valuation_abs() - out.total_latency).abs() < 1e-9);
    }

    #[test]
    fn utilities_are_model_independent() {
        // Utility = bonus under both valuation models — the model shifts
        // payments and valuations by equal and opposite amounts.
        let profile = Profile::truthful(&paper_system(), 20.0).unwrap();
        let a = run_mechanism(&CompensationBonusMechanism::paper(), &profile).unwrap();
        let b = run_mechanism(&CompensationBonusMechanism::contributed(), &profile).unwrap();
        for (x, y) in a.utilities.iter().zip(&b.utilities) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn run_mechanism_is_object_safe() {
        let mech: Box<dyn VerifiedMechanism> = Box::new(CompensationBonusMechanism::paper());
        let profile = Profile::truthful(&paper_system(), 20.0).unwrap();
        assert!(run_mechanism(mech.as_ref(), &profile).is_ok());
    }
}
