//! Error types for the mechanism layer.

use lb_core::CoreError;
use std::fmt;

/// Errors produced while running a mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum MechanismError {
    /// A problem-model error (invalid bids, rates, allocations, …).
    Core(CoreError),
    /// The mechanism needs at least two agents (the bonus term `L_{-i}` is
    /// undefined when removing the only machine).
    NeedTwoAgents,
    /// An execution value was below the corresponding true value — agents can
    /// execute slower than their capability, never faster (Def. 3.1).
    ExecutionFasterThanTruth {
        /// Offending agent index.
        agent: usize,
        /// Reported true value.
        true_value: f64,
        /// Claimed execution value.
        exec_value: f64,
    },
    /// A quadrature routine failed to converge.
    QuadratureFailed {
        /// Residual error estimate at exit.
        estimate: f64,
    },
}

impl fmt::Display for MechanismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Core(e) => write!(f, "{e}"),
            Self::NeedTwoAgents => {
                write!(f, "mechanism with verification requires at least two agents")
            }
            Self::ExecutionFasterThanTruth { agent, true_value, exec_value } => write!(
                f,
                "agent {agent}: execution value {exec_value} below true value {true_value} (machines cannot run faster than capacity)"
            ),
            Self::QuadratureFailed { estimate } => {
                write!(f, "payment quadrature failed to converge (error estimate {estimate:e})")
            }
        }
    }
}

impl std::error::Error for MechanismError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for MechanismError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MechanismError::from(CoreError::EmptySystem);
        assert!(e.to_string().contains("machine"));
        assert!(std::error::Error::source(&e).is_some());

        let e = MechanismError::ExecutionFasterThanTruth {
            agent: 3,
            true_value: 2.0,
            exec_value: 1.0,
        };
        assert!(e.to_string().contains("agent 3"));
        assert!(std::error::Error::source(&e).is_none());

        assert!(MechanismError::NeedTwoAgents.to_string().contains("two"));
    }
}
