//! Counterfactual probes: what an agent's utility *would have been* under a
//! different bid, everything else held fixed.
//!
//! The streaming truthfulness monitor (`lb-audit`) estimates incentive
//! margins online: for a sampled round and agent it replays the round's
//! observed bids and execution values through the mechanism twice — once as
//! observed, once with the probed agent's bid perturbed — and reports the
//! utility gap. Theorem 3.1 says that against consistent opponents a
//! consistent agent's observed utility should dominate every such
//! counterfactual; a persistently positive gap *for the deviation* is
//! evidence the deployed payment rule has drifted from the mechanism it is
//! supposed to implement.
//!
//! Each probe is O(n): one allocation, one batch payment evaluation
//! (`lb_core::LeaveOneOut` inside the compensation-bonus payment rule) and
//! one valuation.

use crate::error::MechanismError;
use crate::traits::VerifiedMechanism;

/// The outcome of one counterfactual bid probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterfactualProbe {
    /// Probed agent index.
    pub agent: usize,
    /// The bid the agent actually submitted.
    pub observed_bid: f64,
    /// The counterfactual bid the probe evaluated.
    pub probe_bid: f64,
    /// Utility under the observed bid.
    pub observed_utility: f64,
    /// Utility under the counterfactual bid (same execution values).
    pub probe_utility: f64,
}

impl CounterfactualProbe {
    /// The truthfulness margin: observed-bid utility minus counterfactual
    /// utility. Non-negative (up to numerical tolerance) whenever the
    /// probed agent and its opponents are consistent (Theorem 3.1);
    /// negative means the counterfactual bid would have *paid better*.
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.observed_utility - self.probe_utility
    }
}

/// Evaluates agent `agent`'s utility had it bid `bid`, with every other bid
/// and all execution values exactly as observed.
///
/// The utility is `P_i + V_i` where the payment is recomputed under the
/// counterfactual bid vector and the valuation is taken at the
/// counterfactual allocation — the agent still *executes* at its observed
/// execution value, which is what verification measures.
///
/// # Errors
/// Propagates mechanism errors: out-of-domain counterfactual bids, arity
/// mismatches, or singleton systems.
///
/// # Panics
/// Panics if `agent` is out of range (a caller bug, not round state).
pub fn utility_with_bid(
    mechanism: &dyn VerifiedMechanism,
    bids: &[f64],
    agent: usize,
    bid: f64,
    exec_values: &[f64],
    total_rate: f64,
) -> Result<f64, MechanismError> {
    assert!(agent < bids.len(), "utility_with_bid: agent out of range");
    let mut probe_bids = bids.to_vec();
    probe_bids[agent] = bid;
    let allocation = mechanism.allocate(&probe_bids, total_rate)?;
    let payments = mechanism.payments(&probe_bids, &allocation, exec_values, total_rate)?;
    Ok(payments[agent] + mechanism.valuation(allocation.rate(agent), exec_values[agent]))
}

/// Probes agent `agent` with a relative bid perturbation: the counterfactual
/// bid is `bids[agent] * (1 + delta)` (use a negative `delta` to under-bid).
///
/// # Errors
/// Propagates mechanism errors from either evaluation; in particular a
/// perturbation that pushes the bid out of the validated domain.
///
/// # Panics
/// Panics if `agent` is out of range.
pub fn truthfulness_probe(
    mechanism: &dyn VerifiedMechanism,
    bids: &[f64],
    agent: usize,
    delta: f64,
    exec_values: &[f64],
    total_rate: f64,
) -> Result<CounterfactualProbe, MechanismError> {
    assert!(agent < bids.len(), "truthfulness_probe: agent out of range");
    let observed_bid = bids[agent];
    let probe_bid = observed_bid * (1.0 + delta);
    let observed_utility = utility_with_bid(
        mechanism,
        bids,
        agent,
        observed_bid,
        exec_values,
        total_rate,
    )?;
    let probe_utility =
        utility_with_bid(mechanism, bids, agent, probe_bid, exec_values, total_rate)?;
    Ok(CounterfactualProbe {
        agent,
        observed_bid,
        probe_bid,
        observed_utility,
        probe_utility,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cb::CompensationBonusMechanism;
    use crate::profile::Profile;
    use crate::traits::run_mechanism;
    use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};

    #[test]
    fn unperturbed_probe_reproduces_run_mechanism_utility() {
        let mech = CompensationBonusMechanism::paper();
        let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
        let out = run_mechanism(&mech, &profile).unwrap();
        for agent in [0, 5, 15] {
            let u = utility_with_bid(
                &mech,
                profile.bids(),
                agent,
                profile.bids()[agent],
                profile.exec_values(),
                PAPER_ARRIVAL_RATE,
            )
            .unwrap();
            assert!(
                (u - out.utilities[agent]).abs() < 1e-9,
                "agent {agent}: {u} vs {}",
                out.utilities[agent]
            );
        }
    }

    #[test]
    fn truthful_margins_are_nonnegative_on_the_paper_system() {
        // Theorem 3.1 on the truthful paper profile: no ±20% bid deviation
        // should pay better than truth.
        let mech = CompensationBonusMechanism::paper();
        let profile = Profile::truthful(&paper_system(), PAPER_ARRIVAL_RATE).unwrap();
        for agent in 0..profile.len() {
            for delta in [-0.2, -0.05, 0.05, 0.2] {
                let probe = truthfulness_probe(
                    &mech,
                    profile.bids(),
                    agent,
                    delta,
                    profile.exec_values(),
                    PAPER_ARRIVAL_RATE,
                )
                .unwrap();
                assert!(
                    probe.margin() >= -1e-9,
                    "agent {agent} delta {delta}: margin {}",
                    probe.margin()
                );
            }
        }
    }

    #[test]
    fn lying_round_yields_negative_margin_toward_truth() {
        // In the Low2 profile C1 under-bids (t/2) and drags its own utility
        // negative; probing its bid back *up* toward the truth must show the
        // counterfactual paying better, i.e. a negative margin.
        let mech = CompensationBonusMechanism::paper();
        let sys = paper_system();
        let profile = Profile::with_deviation(&sys, PAPER_ARRIVAL_RATE, 0, 0.5, 2.0).unwrap();
        let probe = truthfulness_probe(
            &mech,
            profile.bids(),
            0,
            1.0, // double the bid: back to the true value
            profile.exec_values(),
            PAPER_ARRIVAL_RATE,
        )
        .unwrap();
        assert!(
            probe.margin() < 0.0,
            "under-bidding should not dominate: margin {}",
            probe.margin()
        );
    }

    #[test]
    fn out_of_domain_probe_bid_is_a_typed_error() {
        let mech = CompensationBonusMechanism::paper();
        let bids = [1.0, 2.0];
        let err = utility_with_bid(&mech, &bids, 0, f64::MIN_POSITIVE / 2.0, &bids, 5.0);
        assert!(err.is_err());
    }
}
