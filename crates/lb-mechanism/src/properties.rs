//! Empirical property checkers: truthfulness, voluntary participation and
//! dominant strategies.
//!
//! Theorems 3.1 and 3.2 of the paper are proved analytically; these checkers
//! verify them *empirically* over deviation grids, which is how both the test
//! suite and the experiment harness certify any [`VerifiedMechanism`]
//! implementation (including the baselines, where the checks are expected to
//! expose differences).

use crate::error::MechanismError;
use crate::profile::Profile;
use crate::traits::{run_mechanism, VerifiedMechanism};
use lb_core::System;

/// A grid of multiplicative deviations to scan for each agent.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviationGrid {
    /// Factors applied to the agent's true value to form candidate bids.
    pub bid_factors: Vec<f64>,
    /// Factors applied to the agent's true value to form candidate execution
    /// values (clamped up to ≥ 1: machines cannot beat their capacity).
    pub exec_factors: Vec<f64>,
}

impl Default for DeviationGrid {
    fn default() -> Self {
        Self {
            bid_factors: vec![
                0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0, 3.0, 5.0, 10.0,
            ],
            exec_factors: vec![1.0, 1.1, 1.5, 2.0, 3.0, 5.0],
        }
    }
}

impl DeviationGrid {
    /// A denser grid for slower, higher-confidence scans.
    #[must_use]
    pub fn dense() -> Self {
        let bid_factors: Vec<f64> = (1..=60).map(|k| 0.1 * f64::from(k)).collect();
        let exec_factors: Vec<f64> = (10..=50).map(|k| 0.1 * f64::from(k)).collect();
        Self {
            bid_factors,
            exec_factors,
        }
    }
}

/// Result of scanning one agent's deviation space.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviationReport {
    /// The scanned agent.
    pub agent: usize,
    /// Utility when bidding truthfully and executing at full capacity.
    pub truthful_utility: f64,
    /// Best utility found anywhere on the deviation grid.
    pub best_utility: f64,
    /// Bid factor achieving `best_utility`.
    pub best_bid_factor: f64,
    /// Execution factor achieving `best_utility`.
    pub best_exec_factor: f64,
}

impl DeviationReport {
    /// Largest gain available from deviating (`<= 0` means truth wins on the
    /// scanned grid).
    #[must_use]
    pub fn max_gain(&self) -> f64 {
        self.best_utility - self.truthful_utility
    }

    /// Whether the agent's truthful strategy is (grid-)optimal within `tol`.
    #[must_use]
    pub fn is_truthful_optimal(&self, tol: f64) -> bool {
        self.max_gain() <= tol
    }
}

/// Scans every `(bid, exec)` pair on `grid` for `agent`, with all other
/// agents truthful, and reports the most profitable deviation.
///
/// # Errors
/// Propagates mechanism errors (e.g. [`MechanismError::NeedTwoAgents`]).
pub fn truthfulness_scan<M: VerifiedMechanism + ?Sized>(
    mechanism: &M,
    system: &System,
    total_rate: f64,
    agent: usize,
    grid: &DeviationGrid,
) -> Result<DeviationReport, MechanismError> {
    let truthful_profile = Profile::truthful(system, total_rate)?;
    let truthful_utility = run_mechanism(mechanism, &truthful_profile)?.utilities[agent];

    let mut best_utility = truthful_utility;
    let mut best_bid_factor = 1.0;
    let mut best_exec_factor = 1.0;
    for &bf in &grid.bid_factors {
        for &ef in &grid.exec_factors {
            let profile = Profile::with_deviation(system, total_rate, agent, bf, ef)?;
            let utility = run_mechanism(mechanism, &profile)?.utilities[agent];
            if utility > best_utility {
                best_utility = utility;
                best_bid_factor = bf;
                best_exec_factor = ef.max(1.0);
            }
        }
    }
    Ok(DeviationReport {
        agent,
        truthful_utility,
        best_utility,
        best_bid_factor,
        best_exec_factor,
    })
}

/// Checks voluntary participation (Theorem 3.2): for each agent, the truthful
/// utility must be non-negative against every scanned profile of *consistent*
/// other agents. Returns the minimum truthful utility observed.
///
/// "Consistent" means each opponent executes at its bid (`t̃_j = b_j`), which
/// with the capacity constraint `t̃_j ≥ t_j` forces `b_j ≥ t_j`; this is the
/// precondition under which the paper's proof of Theorem 3.2 is valid (an
/// opponent that bids one thing and executes another can drag the realised
/// latency above the `L_{-i}` benchmark, hurting even truthful agents —
/// the integration tests demonstrate that boundary explicitly).
///
/// # Errors
/// Propagates mechanism errors.
pub fn voluntary_participation_scan<M: VerifiedMechanism + ?Sized>(
    mechanism: &M,
    system: &System,
    total_rate: f64,
) -> Result<f64, MechanismError> {
    let trues = system.true_values();
    let n = trues.len();
    let mut min_utility = f64::INFINITY;
    let factors = [1.0, 1.3, 2.0, 4.0, 8.0];
    for agent in 0..n {
        for &factor in &factors {
            let mut bids = Vec::with_capacity(n);
            let mut exec = Vec::with_capacity(n);
            for (j, &t) in trues.iter().enumerate() {
                if j == agent {
                    bids.push(t);
                    exec.push(t);
                } else {
                    // Consistent other: executes exactly at its bid.
                    let b = t * factor;
                    bids.push(b);
                    exec.push(b);
                }
            }
            let profile = Profile::new(trues.clone(), bids, exec, total_rate)?;
            let utility = run_mechanism(mechanism, &profile)?.utilities[agent];
            min_utility = min_utility.min(utility);
        }
    }
    Ok(min_utility)
}

/// Dominant-strategy check: scans agent deviations while the *other* agents
/// play arbitrary consistent profiles (bid = execution ≥ truth), not just
/// truthful ones. Returns the worst (largest) deviation gain found.
///
/// # Errors
/// Propagates mechanism errors.
pub fn dominant_strategy_check<M: VerifiedMechanism + ?Sized>(
    mechanism: &M,
    system: &System,
    total_rate: f64,
    agent: usize,
    grid: &DeviationGrid,
) -> Result<f64, MechanismError> {
    let trues = system.true_values();
    let n = trues.len();
    let mut worst_gain = f64::NEG_INFINITY;
    for &other_factor in &[0.5_f64, 1.0, 1.7, 3.0] {
        // Others: consistent, execution equals bid, at least their capacity.
        let mut base_bids = trues.clone();
        let mut base_exec = trues.clone();
        for j in 0..n {
            if j != agent {
                let b = (trues[j] * other_factor).max(trues[j]);
                base_bids[j] = b;
                base_exec[j] = b;
            }
        }
        // Truthful utility in this environment.
        let truthful = {
            let mut bids = base_bids.clone();
            let mut exec = base_exec.clone();
            bids[agent] = trues[agent];
            exec[agent] = trues[agent];
            run_mechanism(
                mechanism,
                &Profile::new(trues.clone(), bids, exec, total_rate)?,
            )?
            .utilities[agent]
        };
        for &bf in &grid.bid_factors {
            for &ef in &grid.exec_factors {
                let mut bids = base_bids.clone();
                let mut exec = base_exec.clone();
                bids[agent] = trues[agent] * bf;
                exec[agent] = trues[agent] * ef.max(1.0);
                let utility = run_mechanism(
                    mechanism,
                    &Profile::new(trues.clone(), bids, exec, total_rate)?,
                )?
                .utilities[agent];
                worst_gain = worst_gain.max(utility - truthful);
            }
        }
    }
    Ok(worst_gain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archer_tardos::ArcherTardosMechanism;
    use crate::cb::CompensationBonusMechanism;
    use lb_core::scenario::{paper_system, PAPER_ARRIVAL_RATE};

    #[test]
    fn cb_is_truthful_on_default_grid() {
        let sys = paper_system();
        for agent in [0, 5, 15] {
            let report = truthfulness_scan(
                &CompensationBonusMechanism::paper(),
                &sys,
                PAPER_ARRIVAL_RATE,
                agent,
                &DeviationGrid::default(),
            )
            .unwrap();
            assert!(
                report.is_truthful_optimal(1e-9),
                "agent {agent}: gain {}",
                report.max_gain()
            );
            assert_eq!(report.best_bid_factor, 1.0);
            assert_eq!(report.best_exec_factor, 1.0);
        }
    }

    #[test]
    fn cb_satisfies_voluntary_participation() {
        let min_utility = voluntary_participation_scan(
            &CompensationBonusMechanism::paper(),
            &paper_system(),
            PAPER_ARRIVAL_RATE,
        )
        .unwrap();
        assert!(min_utility >= -1e-9, "min truthful utility {min_utility}");
    }

    #[test]
    fn cb_is_dominant_strategy_truthful() {
        let gain = dominant_strategy_check(
            &CompensationBonusMechanism::paper(),
            &paper_system(),
            PAPER_ARRIVAL_RATE,
            0,
            &DeviationGrid::default(),
        )
        .unwrap();
        assert!(gain <= 1e-9, "deviation gain {gain}");
    }

    #[test]
    fn archer_tardos_is_bid_truthful_on_grid() {
        // With full-capacity execution forced (exec factor 1.0 only), AT is
        // truthful; the default grid includes lazy execution, which AT cannot
        // punish but which also never *helps* the agent in the paper's
        // valuation, so the scan still certifies it.
        let grid = DeviationGrid {
            bid_factors: DeviationGrid::default().bid_factors,
            exec_factors: vec![1.0],
        };
        let report = truthfulness_scan(
            &ArcherTardosMechanism::closed_form(),
            &paper_system(),
            PAPER_ARRIVAL_RATE,
            0,
            &grid,
        )
        .unwrap();
        assert!(
            report.is_truthful_optimal(1e-9),
            "gain {}",
            report.max_gain()
        );
    }

    #[test]
    fn deviation_report_accessors() {
        let r = DeviationReport {
            agent: 2,
            truthful_utility: 5.0,
            best_utility: 5.5,
            best_bid_factor: 2.0,
            best_exec_factor: 1.0,
        };
        assert!((r.max_gain() - 0.5).abs() < 1e-12);
        assert!(!r.is_truthful_optimal(0.1));
        assert!(r.is_truthful_optimal(0.6));
    }
}
