//! Mechanism-design layer: the paper's contribution.
//!
//! The load balancing *mechanism design problem* (Def. 3.1 of the paper):
//! each computer `i` has a privately known true value `t_i` and, after
//! executing its assigned jobs, a publicly observable **execution value**
//! `t̃_i ≥ t_i` (it may run slower than its capability, never faster). The
//! mechanism asks for bids `b`, allocates jobs with the PR algorithm on the
//! bids, observes `t̃` (that is the *verification*), and then pays each agent
//!
//! ```text
//! P_i(b, t̃) = C_i(t̃_i, x_i) + B_i(b, t̃)
//! C_i = t̃_i · x_i(b)²                       (compensation: refunds the cost)
//! B_i = L_{-i}(b_{-i}) − L(x(b), t̃)         (bonus: marginal contribution)
//! ```
//!
//! Agent `i`'s valuation is `V_i = −t̃_i · x_i²` (the negation of its
//! latency), so its utility `U_i = P_i + V_i = B_i`. Theorem 3.1: truthful
//! bidding plus full-capacity execution is a dominant strategy; Theorem 3.2:
//! truthful agents never lose (voluntary participation).
//!
//! Modules:
//!
//! * [`profile`] — the strategic state of one round: true values, bids,
//!   execution values, total rate.
//! * [`traits`] — [`VerifiedMechanism`] abstraction and the
//!   [`MechanismOutcome`] accounting (payments, valuations, utilities).
//! * [`cb`] — the paper's compensation-and-bonus mechanism.
//! * [`unverified`] — the same payment computed from *bids only* (no
//!   verification): the ablation showing why verification is needed.
//! * [`archer_tardos`] — the one-parameter (Archer–Tardos) payment rule used
//!   by the authors' companion paper [ref.&nbsp;8], with closed-form and quadrature
//!   payment paths.
//! * [`quad`] — adaptive-Simpson quadrature (including improper integrals)
//!   backing the Archer–Tardos cross-check.
//! * [`general`] — the construction lifted to arbitrary convex latency
//!   families (M/M/1 included) through the KKT solver.
//! * [`fee`] — budget reduction via own-bid-independent participation fees
//!   (exactly strategyproofness-preserving).
//! * [`probe`] — counterfactual bid probes (utility under a perturbed bid,
//!   everything else as observed) backing the streaming truthfulness-margin
//!   monitor in `lb-audit`.
//! * [`properties`] — empirical truthfulness / voluntary-participation /
//!   dominant-strategy checkers used by tests and the experiment harness.
//! * [`metrics`] — frugality and degradation metrics (Figure 6), plus
//!   closed-form frugality for uniform systems.

pub mod archer_tardos;
pub mod cb;
pub mod error;
pub mod fee;
pub mod general;
pub mod metrics;
pub mod online;
pub mod probe;
pub mod profile;
pub mod properties;
pub mod quad;
pub mod traits;
pub mod unverified;

pub use archer_tardos::ArcherTardosMechanism;
pub use cb::{CompensationBonusMechanism, PaymentBreakdown};
pub use error::MechanismError;
pub use fee::FeeAdjusted;
pub use general::{GeneralizedCompensationBonus, LatencyFamily, LinearFamily, Mm1Family};
pub use metrics::{degradation, frugality_ratio};
pub use online::{OnlineError, OnlinePool, DRIFT_REL_TOL};
pub use probe::{truthfulness_probe, utility_with_bid, CounterfactualProbe};
pub use profile::Profile;
pub use properties::{
    dominant_strategy_check, truthfulness_scan, voluntary_participation_scan, DeviationGrid,
    DeviationReport,
};
pub use traits::{run_mechanism, MechanismOutcome, VerifiedMechanism};
pub use unverified::UnverifiedCompensationBonus;
