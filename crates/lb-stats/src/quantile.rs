//! Streaming quantile estimation (the P² algorithm).
//!
//! Latency SLOs are quantiles (p95/p99), but storing every response time of
//! a long simulation is wasteful. The P² algorithm (Jain & Chlamtac, 1985)
//! tracks a single quantile with five markers and O(1) work per observation,
//! adjusting marker heights by piecewise-parabolic interpolation.

/// Streaming estimator of a single quantile.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// First five observations, collected before the markers initialise.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile, `0 < q < 1`.
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1)`.
    #[must_use]
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "P2Quantile: q must be in (0, 1)");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// The tracked quantile level.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations seen.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn observe(&mut self, x: f64) {
        assert!(!x.is_nan(), "P2Quantile: NaN observation");
        self.count += 1;
        if self.count <= 5 {
            self.warmup.push(x);
            if self.count == 5 {
                self.warmup
                    .sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                for (h, &w) in self.heights.iter_mut().zip(&self.warmup) {
                    *h = w;
                }
            }
            return;
        }

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    self.heights[i] = candidate;
                } else {
                    self.heights[i] = self.linear(i, s);
                }
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate.
    ///
    /// # Panics
    /// Panics if no observations have been fed.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        assert!(self.count > 0, "P2Quantile: no observations");
        if self.count <= 5 {
            // Exact small-sample quantile (nearest rank on the sorted warmup).
            let mut sorted = self.warmup.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let rank = ((self.q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        } else {
            self.heights[2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample, Exponential, Uniform};
    use crate::rng::Xoshiro256StarStar;

    fn exact_quantile(data: &mut [f64], q: f64) -> f64 {
        data.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let rank = ((q * data.len() as f64).ceil() as usize).clamp(1, data.len());
        data[rank - 1]
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p = P2Quantile::new(0.5);
        for x in [5.0, 1.0, 3.0] {
            p.observe(x);
        }
        assert_eq!(p.estimate(), 3.0);
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn median_of_uniform_converges() {
        let mut p = P2Quantile::new(0.5);
        let d = Uniform::new(0.0, 10.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for _ in 0..100_000 {
            p.observe(sample(&d, &mut rng));
        }
        assert!((p.estimate() - 5.0).abs() < 0.1, "median {}", p.estimate());
    }

    #[test]
    fn p99_of_exponential_converges() {
        let mut p = P2Quantile::new(0.99);
        let d = Exponential::new(1.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut all = Vec::new();
        for _ in 0..200_000 {
            let x = sample(&d, &mut rng);
            p.observe(x);
            all.push(x);
        }
        let exact = exact_quantile(&mut all, 0.99);
        // Theoretical p99 of Exp(1) is ln(100) = 4.605.
        assert!(
            (p.estimate() - exact).abs() / exact < 0.05,
            "{} vs {exact}",
            p.estimate()
        );
        assert!((p.estimate() - 100.0f64.ln()).abs() < 0.4);
    }

    #[test]
    fn tracks_sorted_and_reversed_streams() {
        for reversed in [false, true] {
            let mut p = P2Quantile::new(0.9);
            let mut values: Vec<f64> = (0..10_000).map(f64::from).collect();
            if reversed {
                values.reverse();
            }
            for v in values {
                p.observe(v);
            }
            assert!(
                (p.estimate() - 9_000.0).abs() < 300.0,
                "estimate {}",
                p.estimate()
            );
        }
    }

    #[test]
    #[should_panic(expected = "q must be in (0, 1)")]
    fn invalid_q_panics() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn empty_estimate_panics() {
        let _ = P2Quantile::new(0.5).estimate();
    }
}
