//! Streaming quantile estimation (the P² algorithm).
//!
//! Latency SLOs are quantiles (p95/p99), but storing every response time of
//! a long simulation is wasteful. The P² algorithm (Jain & Chlamtac, 1985)
//! tracks a single quantile with five markers and O(1) work per observation,
//! adjusting marker heights by piecewise-parabolic interpolation.

/// Nearest-rank index (1-based) of the `q`-quantile in a sorted sample of
/// `len` elements: `ceil(q * len)`, saturated into `[1, len]`.
///
/// This is the single rank computation behind every exact (non-streaming)
/// quantile in the crate. `q` is validated here because the raw cast is
/// treacherous: a NaN `q` casts to 0 and the clamp turns it into rank 1, so
/// a corrupted quantile request would silently report the sample *minimum*
/// as, say, a p99. Saturation is intentional only for valid `q`: `q = 0.0`
/// (and `-0.0`, which compares equal to it) maps to rank 1, the minimum, and
/// `q = 1.0` maps to rank `len`, the maximum.
///
/// # Panics
/// Panics if `q` is non-finite, `q` is outside `[0, 1]`, or `len == 0`.
#[must_use]
pub fn nearest_rank(q: f64, len: usize) -> usize {
    assert!(q.is_finite(), "nearest_rank: q must be finite, got {q}");
    assert!(
        (0.0..=1.0).contains(&q),
        "nearest_rank: q must be in [0, 1], got {q}"
    );
    assert!(len > 0, "nearest_rank: empty sample");
    ((q * len as f64).ceil() as usize).clamp(1, len)
}

/// Streaming estimator of a single quantile.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// First five observations, collected before the markers initialise.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile, `0 < q < 1`.
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1)`.
    #[must_use]
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "P2Quantile: q must be in (0, 1)");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// The tracked quantile level.
    #[must_use]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations seen.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn observe(&mut self, x: f64) {
        assert!(!x.is_nan(), "P2Quantile: NaN observation");
        self.count += 1;
        if self.count <= 5 {
            self.warmup.push(x);
            if self.count == 5 {
                self.warmup
                    .sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                for (h, &w) in self.heights.iter_mut().zip(&self.warmup) {
                    *h = w;
                }
            }
            return;
        }

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    self.heights[i] = candidate;
                } else {
                    self.heights[i] = self.linear(i, s);
                }
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Merges another estimator of the **same quantile** into this one.
    ///
    /// This is an *approximate* merge: P² keeps only five markers, so the
    /// exact merged state is unrecoverable. While either side is still in
    /// its warmup (≤ 5 observations) the merge is exact — the warmup values
    /// are replayed through [`P2Quantile::observe`]. Past warmup, marker
    /// heights are combined by count-weighted averaging (extrema by
    /// min/max) and marker positions are reset to their ideal values for
    /// the combined count. Empirically this keeps the merged estimate
    /// within a few percent of a single-stream estimator over the same
    /// data when both inputs see samples from the same distribution; it
    /// degrades (like any height-averaging scheme) when the two inputs
    /// cover disjoint value ranges. Counts are always exact.
    ///
    /// # Panics
    /// Panics if the two estimators track different quantile levels.
    pub fn merge_approx(&mut self, other: &Self) {
        assert!(
            (self.q - other.q).abs() < 1e-12,
            "P2Quantile: cannot merge estimators of different quantiles ({} vs {})",
            self.q,
            other.q
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        if other.count <= 5 {
            // Exact: replay the other side's raw warmup observations.
            for &x in &other.warmup {
                self.observe(x);
            }
            return;
        }
        if self.count <= 5 {
            // Symmetric case: replay our warmup into a copy of the other.
            let mut merged = other.clone();
            for &x in &self.warmup {
                merged.observe(x);
            }
            *self = merged;
            return;
        }

        // Both sides are past warmup: combine marker heights by
        // count-weighted average (the extrema exactly, by min/max) and
        // reset positions to the ideal positions for the combined count.
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let total = n1 + n2;
        for i in 1..4 {
            self.heights[i] = (self.heights[i] * n1 + other.heights[i] * n2) / total;
        }
        self.heights[0] = self.heights[0].min(other.heights[0]);
        self.heights[4] = self.heights[4].max(other.heights[4]);
        self.count += other.count;
        let n = self.count as f64;
        for i in 0..5 {
            self.positions[i] = 1.0 + (n - 1.0) * self.increments[i];
            self.desired[i] = self.positions[i];
        }
    }

    /// Current quantile estimate.
    ///
    /// # Panics
    /// Panics if no observations have been fed.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        assert!(self.count > 0, "P2Quantile: no observations");
        if self.count <= 5 {
            // Exact small-sample quantile (nearest rank on the sorted warmup).
            let mut sorted = self.warmup.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            sorted[nearest_rank(self.q, sorted.len()) - 1]
        } else {
            self.heights[2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample, Exponential, Uniform};
    use crate::rng::Xoshiro256StarStar;

    fn exact_quantile(data: &mut [f64], q: f64) -> f64 {
        data.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        data[nearest_rank(q, data.len()) - 1]
    }

    #[test]
    #[should_panic(expected = "q must be finite")]
    fn nan_quantile_is_rejected_not_silently_clamped() {
        // Regression: `(NaN * len).ceil() as usize` is 0, and the old clamp
        // turned that into rank 1 — a NaN p99 request would have reported the
        // sample minimum with no error.
        nearest_rank(f64::NAN, 100);
    }

    #[test]
    #[should_panic(expected = "q must be in [0, 1]")]
    fn quantile_above_one_is_rejected() {
        nearest_rank(1.0 + f64::EPSILON, 100);
    }

    #[test]
    #[should_panic(expected = "q must be finite")]
    fn infinite_quantile_is_rejected() {
        nearest_rank(f64::INFINITY, 100);
    }

    #[test]
    fn negative_zero_quantile_saturates_to_the_minimum() {
        // -0.0 == 0.0, so it is in range; the documented saturation maps it
        // to rank 1 (the minimum), same as +0.0.
        assert_eq!(nearest_rank(-0.0, 7), 1);
        assert_eq!(nearest_rank(0.0, 7), 1);
        assert_eq!(nearest_rank(1.0, 7), 7);
        let mut data = [3.0, 1.0, 2.0];
        assert_eq!(exact_quantile(&mut data, -0.0), 1.0);
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p = P2Quantile::new(0.5);
        for x in [5.0, 1.0, 3.0] {
            p.observe(x);
        }
        assert_eq!(p.estimate(), 3.0);
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn median_of_uniform_converges() {
        let mut p = P2Quantile::new(0.5);
        let d = Uniform::new(0.0, 10.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for _ in 0..100_000 {
            p.observe(sample(&d, &mut rng));
        }
        assert!((p.estimate() - 5.0).abs() < 0.1, "median {}", p.estimate());
    }

    #[test]
    fn p99_of_exponential_converges() {
        let mut p = P2Quantile::new(0.99);
        let d = Exponential::new(1.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut all = Vec::new();
        for _ in 0..200_000 {
            let x = sample(&d, &mut rng);
            p.observe(x);
            all.push(x);
        }
        let exact = exact_quantile(&mut all, 0.99);
        // Theoretical p99 of Exp(1) is ln(100) = 4.605.
        assert!(
            (p.estimate() - exact).abs() / exact < 0.05,
            "{} vs {exact}",
            p.estimate()
        );
        assert!((p.estimate() - 100.0f64.ln()).abs() < 0.4);
    }

    #[test]
    fn tracks_sorted_and_reversed_streams() {
        for reversed in [false, true] {
            let mut p = P2Quantile::new(0.9);
            let mut values: Vec<f64> = (0..10_000).map(f64::from).collect();
            if reversed {
                values.reverse();
            }
            for v in values {
                p.observe(v);
            }
            assert!(
                (p.estimate() - 9_000.0).abs() < 300.0,
                "estimate {}",
                p.estimate()
            );
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = P2Quantile::new(0.5);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0] {
            a.observe(x);
        }
        let before = a.estimate();
        a.merge_approx(&P2Quantile::new(0.5));
        assert_eq!(a.estimate(), before);
        assert_eq!(a.count(), 7);

        let mut empty = P2Quantile::new(0.5);
        empty.merge_approx(&a);
        assert_eq!(empty.count(), 7);
        assert_eq!(empty.estimate(), before);
    }

    #[test]
    fn merge_of_warmup_sides_is_exact() {
        // Either side ≤ 5 observations → the merge replays raw values, so
        // it must equal a single estimator fed the concatenated stream.
        let left = [9.0, 2.0, 7.0];
        let right = [5.0, 1.0];
        let mut merged = P2Quantile::new(0.5);
        for x in left {
            merged.observe(x);
        }
        let mut other = P2Quantile::new(0.5);
        for x in right {
            other.observe(x);
        }
        merged.merge_approx(&other);

        let mut single = P2Quantile::new(0.5);
        for x in left.iter().chain(right.iter()) {
            single.observe(*x);
        }
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.estimate(), single.estimate());
    }

    #[test]
    fn merge_tracks_combined_stream_within_documented_error() {
        for q in [0.5, 0.95, 0.99] {
            let d = Uniform::new(0.0, 10.0);
            let mut rng = Xoshiro256StarStar::seed_from_u64(77);
            let all: Vec<f64> = (0..40_000).map(|_| sample(&d, &mut rng)).collect();

            let mut single = P2Quantile::new(q);
            let mut left = P2Quantile::new(q);
            let mut right = P2Quantile::new(q);
            for (i, &x) in all.iter().enumerate() {
                single.observe(x);
                if i % 2 == 0 {
                    left.observe(x);
                } else {
                    right.observe(x);
                }
            }
            left.merge_approx(&right);
            assert_eq!(left.count(), single.count());
            let exact = exact_quantile(&mut all.clone(), q);
            let err = (left.estimate() - exact).abs() / exact;
            assert!(
                err < 0.05,
                "q={q}: merged {} vs exact {exact} (err {err:.4})",
                left.estimate()
            );
        }
    }

    #[test]
    fn merged_estimator_keeps_converging() {
        // A merged estimator must remain usable as a live estimator.
        let d = Uniform::new(0.0, 1.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut a = P2Quantile::new(0.9);
        let mut b = P2Quantile::new(0.9);
        for _ in 0..1000 {
            a.observe(sample(&d, &mut rng));
            b.observe(sample(&d, &mut rng));
        }
        a.merge_approx(&b);
        for _ in 0..20_000 {
            a.observe(sample(&d, &mut rng));
        }
        assert!((a.estimate() - 0.9).abs() < 0.05, "p90 {}", a.estimate());
    }

    #[test]
    #[should_panic(expected = "different quantiles")]
    fn merge_of_mismatched_quantiles_panics() {
        let mut a = P2Quantile::new(0.5);
        a.merge_approx(&P2Quantile::new(0.9));
    }

    #[test]
    #[should_panic(expected = "q must be in (0, 1)")]
    fn invalid_q_panics() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn empty_estimate_panics() {
        let _ = P2Quantile::new(0.5).estimate();
    }
}
