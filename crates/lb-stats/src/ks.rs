//! One-sample Kolmogorov–Smirnov goodness-of-fit test.
//!
//! Used by the simulator's validation tests to check distributional claims
//! that moment comparisons can miss — e.g. that interarrival times of the
//! Poisson workload are *exponential*, not merely mean-correct.

/// Result of a one-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic `D_n = sup |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution, Marsaglia-style series).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl KsTest {
    /// Whether the null hypothesis (sample drawn from `cdf`) is rejected at
    /// significance `alpha`.
    #[must_use]
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs a one-sample KS test of `sample` against the continuous CDF `cdf`.
///
/// # Panics
/// Panics if the sample is empty or contains NaN.
#[must_use]
pub fn ks_test<F: Fn(f64) -> f64>(sample: &[f64], cdf: F) -> KsTest {
    assert!(!sample.is_empty(), "ks_test: empty sample");
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("ks_test: NaN in sample"));
    let n = sorted.len();
    let nf = n as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let upper = (i as f64 + 1.0) / nf - f;
        let lower = f - i as f64 / nf;
        d = d.max(upper).max(lower);
    }
    KsTest {
        statistic: d,
        p_value: kolmogorov_sf((nf.sqrt() + 0.12 + 0.11 / nf.sqrt()) * d),
        n,
    }
}

/// Survival function of the Kolmogorov distribution,
/// `Q(t) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2k²t²)`.
fn kolmogorov_sf(t: f64) -> f64 {
    if t <= 0.0 {
        return 1.0;
    }
    if t > 8.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let kf = f64::from(k);
        let term = (-2.0 * kf * kf * t * t).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// CDF of the exponential distribution with the given rate.
#[must_use]
pub fn exponential_cdf(rate: f64) -> impl Fn(f64) -> f64 {
    move |x: f64| {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-rate * x).exp()
        }
    }
}

/// CDF of the uniform distribution on `[lo, hi]`.
#[must_use]
pub fn uniform_cdf(lo: f64, hi: f64) -> impl Fn(f64) -> f64 {
    move |x: f64| ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample, Exponential, LogNormal, Uniform};
    use crate::rng::Xoshiro256StarStar;

    fn draw<D: crate::dist::Distribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n).map(|_| sample(d, &mut rng)).collect()
    }

    #[test]
    fn exponential_sample_passes_against_its_own_cdf() {
        let s = draw(&Exponential::new(2.0), 5_000, 1);
        let test = ks_test(&s, exponential_cdf(2.0));
        assert!(
            !test.rejects_at(0.01),
            "D = {}, p = {}",
            test.statistic,
            test.p_value
        );
    }

    #[test]
    fn uniform_sample_passes_against_its_own_cdf() {
        let s = draw(&Uniform::new(-1.0, 3.0), 5_000, 2);
        let test = ks_test(&s, uniform_cdf(-1.0, 3.0));
        assert!(!test.rejects_at(0.01), "p = {}", test.p_value);
    }

    #[test]
    fn wrong_rate_is_rejected() {
        let s = draw(&Exponential::new(2.0), 5_000, 3);
        let test = ks_test(&s, exponential_cdf(1.0));
        assert!(test.rejects_at(0.001), "p = {}", test.p_value);
        assert!(test.statistic > 0.1);
    }

    #[test]
    fn wrong_family_with_same_mean_is_rejected() {
        // LogNormal with mean 0.5 vs exponential(2) (mean 0.5): moments agree
        // at first order, the KS test still separates them.
        let s = draw(&LogNormal::with_mean_cv(0.5, 0.4), 5_000, 4);
        let test = ks_test(&s, exponential_cdf(2.0));
        assert!(test.rejects_at(0.001), "p = {}", test.p_value);
    }

    #[test]
    fn kolmogorov_sf_reference_values() {
        // Q(0.83) ≈ 0.496, Q(1.36) ≈ 0.049 (classic table values).
        assert!((kolmogorov_sf(0.828) - 0.5).abs() < 0.01);
        assert!((kolmogorov_sf(1.358) - 0.05).abs() < 0.005);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert_eq!(kolmogorov_sf(9.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = ks_test(&[], exponential_cdf(1.0));
    }
}
