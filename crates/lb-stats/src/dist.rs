//! Probability distributions implemented from first principles.
//!
//! The workspace deliberately avoids pulling a distributions crate: every
//! sampler used by the simulator is implemented and tested here, so the whole
//! stochastic pipeline is auditable. All samplers draw from the [`Rng`] trait
//! and are therefore deterministic given a seed.

use crate::rng::Rng;

/// A real-valued probability distribution that can be sampled.
///
/// The trait is object-safe so heterogeneous service-time models can be boxed
/// inside simulator servers.
pub trait Distribution {
    /// Draws one sample using the supplied generator.
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64;

    /// The theoretical mean of the distribution, if finite.
    fn mean(&self) -> Option<f64>;

    /// The theoretical variance of the distribution, if finite.
    fn variance(&self) -> Option<f64>;
}

/// Adapter: draw one sample from `dist` using any [`Rng`].
pub fn sample<D: Distribution + ?Sized, R: Rng>(dist: &D, rng: &mut R) -> f64 {
    dist.sample(&mut || rng.next_u64())
}

/// Converts raw bits into a uniform `f64` in `[0, 1)` (53-bit construction).
#[inline]
fn bits_to_unit(bits: u64) -> f64 {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    (bits >> 11) as f64 * SCALE
}

/// Uniform `f64` in `(0, 1)` — rejects exact zeros for inverse-CDF use.
#[inline]
fn unit_open(next: &mut dyn FnMut() -> u64) -> f64 {
    loop {
        let u = bits_to_unit(next());
        if u > 0.0 {
            return u;
        }
    }
}

/// Degenerate distribution: always returns the same value.
///
/// Used for deterministic service times (paper's latency model is a mean-value
/// model, so deterministic per-job times reproduce it with zero variance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    /// The constant value returned by every sample.
    pub value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value`.
    ///
    /// # Panics
    /// Panics if `value` is not finite.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "Deterministic: value must be finite");
        Self { value }
    }
}

impl Distribution for Deterministic {
    fn sample(&self, _rng: &mut dyn FnMut() -> u64) -> f64 {
        self.value
    }
    fn mean(&self) -> Option<f64> {
        Some(self.value)
    }
    fn variance(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the bounds are non-finite or `lo > hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "Uniform: invalid bounds"
        );
        Self { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        self.lo + (self.hi - self.lo) * bits_to_unit(rng())
    }
    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }
    fn variance(&self) -> Option<f64> {
        let w = self.hi - self.lo;
        Some(w * w / 12.0)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Sampled by inversion: `-ln(U)/λ`. This is the interarrival law of the
/// Poisson job streams in the paper's system model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate (> 0).
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive and finite.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "Exponential: rate must be > 0"
        );
        Self { rate }
    }

    /// Creates an exponential distribution with the given mean (> 0).
    #[must_use]
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "Exponential: mean must be > 0"
        );
        Self::new(1.0 / mean)
    }

    /// The rate parameter λ.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        -unit_open(rng).ln() / self.rate
    }
    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.rate)
    }
    fn variance(&self) -> Option<f64> {
        Some(1.0 / (self.rate * self.rate))
    }
}

/// Pareto (Type I) distribution with scale `x_m > 0` and shape `alpha > 0`.
///
/// Heavy-tailed service times: used to stress the rate estimator beyond the
/// exponential case (M/G/1 light-load justification in the paper, Sec. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    /// Panics unless `scale > 0` and `shape > 0`.
    #[must_use]
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "Pareto: scale must be > 0"
        );
        assert!(
            shape.is_finite() && shape > 0.0,
            "Pareto: shape must be > 0"
        );
        Self { scale, shape }
    }

    /// Pareto with the given mean and shape (`shape > 1` so the mean exists).
    ///
    /// # Panics
    /// Panics unless `mean > 0` and `shape > 1`.
    #[must_use]
    pub fn with_mean(mean: f64, shape: f64) -> Self {
        assert!(shape > 1.0, "Pareto: mean finite only for shape > 1");
        assert!(mean.is_finite() && mean > 0.0, "Pareto: mean must be > 0");
        Self::new(mean * (shape - 1.0) / shape, shape)
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        self.scale / unit_open(rng).powf(1.0 / self.shape)
    }
    fn mean(&self) -> Option<f64> {
        (self.shape > 1.0).then(|| self.scale * self.shape / (self.shape - 1.0))
    }
    fn variance(&self) -> Option<f64> {
        (self.shape > 2.0).then(|| {
            let a = self.shape;
            self.scale * self.scale * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        })
    }
}

/// Two-phase hyperexponential distribution (H2): with probability `p` draw
/// from `Exp(rate1)`, else from `Exp(rate2)`.
///
/// The standard minimal model for *high-variability* service times
/// (CV² > 1 whenever the two rates differ) — the regime where FCFS pays the
/// Pollaczek–Khinchine penalty and processor sharing does not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hyperexponential {
    p: f64,
    rate1: f64,
    rate2: f64,
}

impl Hyperexponential {
    /// Creates an H2 distribution.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0, 1]` and both rates are finite and positive.
    #[must_use]
    pub fn new(p: f64, rate1: f64, rate2: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "Hyperexponential: p must be in [0, 1]"
        );
        assert!(
            rate1.is_finite() && rate1 > 0.0,
            "Hyperexponential: rate1 must be > 0"
        );
        assert!(
            rate2.is_finite() && rate2 > 0.0,
            "Hyperexponential: rate2 must be > 0"
        );
        Self { p, rate1, rate2 }
    }

    /// Balanced-means H2 with a target mean and squared coefficient of
    /// variation `cv2 > 1` (the classic two-moment fit with balanced phase
    /// loads, Whitt 1982).
    ///
    /// # Panics
    /// Panics unless `mean > 0` and `cv2 > 1`.
    #[must_use]
    pub fn with_mean_cv2(mean: f64, cv2: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "Hyperexponential: mean must be > 0"
        );
        assert!(
            cv2 > 1.0,
            "Hyperexponential: cv2 must exceed 1 (else use Exponential)"
        );
        let p = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
        let rate1 = 2.0 * p / mean;
        let rate2 = 2.0 * (1.0 - p) / mean;
        Self::new(p, rate1, rate2)
    }

    /// Squared coefficient of variation.
    #[must_use]
    pub fn cv2(&self) -> f64 {
        let m = self.mean().expect("finite");
        let v = self.variance().expect("finite");
        v / (m * m)
    }
}

impl Distribution for Hyperexponential {
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        let rate = if bits_to_unit(rng()) < self.p {
            self.rate1
        } else {
            self.rate2
        };
        -unit_open(rng).ln() / rate
    }
    fn mean(&self) -> Option<f64> {
        Some(self.p / self.rate1 + (1.0 - self.p) / self.rate2)
    }
    fn variance(&self) -> Option<f64> {
        let e2 = 2.0 * self.p / (self.rate1 * self.rate1)
            + 2.0 * (1.0 - self.p) / (self.rate2 * self.rate2);
        let m = self.mean()?;
        Some(e2 - m * m)
    }
}

/// Standard normal deviate via the Marsaglia polar method (no cached spare,
/// so the sampler stays `&self`).
fn standard_normal(next: &mut dyn FnMut() -> u64) -> f64 {
    loop {
        let u = 2.0 * bits_to_unit(next()) - 1.0;
        let v = 2.0 * bits_to_unit(next()) - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    /// Panics unless `std_dev >= 0` and both parameters are finite.
    #[must_use]
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "Normal: invalid parameters"
        );
        Self { mean, std_dev }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
    fn mean(&self) -> Option<f64> {
        Some(self.mean)
    }
    fn variance(&self) -> Option<f64> {
        Some(self.std_dev * self.std_dev)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
///
/// A positively skewed service-time model with all moments finite; used in
/// estimator-robustness ablations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with underlying normal parameters `(mu, sigma)`.
    ///
    /// # Panics
    /// Panics unless both parameters are finite and `sigma >= 0`.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "LogNormal: invalid parameters"
        );
        Self { mu, sigma }
    }

    /// Log-normal with the given (arithmetic) mean and coefficient of variation.
    ///
    /// # Panics
    /// Panics unless `mean > 0` and `cv >= 0`.
    #[must_use]
    pub fn with_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv >= 0.0, "LogNormal: invalid mean/cv");
        let sigma2 = (1.0 + cv * cv).ln();
        Self::new(mean.ln() - 0.5 * sigma2, sigma2.sqrt())
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
    fn mean(&self) -> Option<f64> {
        Some((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }
    fn variance(&self) -> Option<f64> {
        let s2 = self.sigma * self.sigma;
        Some((s2.exp() - 1.0) * (2.0 * self.mu + s2).exp())
    }
}

/// Gamma distribution with shape `k > 0` and rate `theta_inv` (i.e. scale `1/rate`).
///
/// Sampled with the Marsaglia–Tsang squeeze method (2000); shapes `< 1` use
/// the standard boost `Gamma(k+1) * U^{1/k}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

impl Gamma {
    /// Creates a gamma distribution with shape `k` and rate `λ` (mean `k/λ`).
    ///
    /// # Panics
    /// Panics unless both parameters are finite and strictly positive.
    #[must_use]
    pub fn new(shape: f64, rate: f64) -> Self {
        assert!(shape.is_finite() && shape > 0.0, "Gamma: shape must be > 0");
        assert!(rate.is_finite() && rate > 0.0, "Gamma: rate must be > 0");
        Self { shape, rate }
    }

    /// Erlang distribution: gamma with integer shape `k`, mean `k/rate`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `rate <= 0`.
    #[must_use]
    pub fn erlang(k: u32, rate: f64) -> Self {
        assert!(k > 0, "Gamma::erlang: k must be >= 1");
        Self::new(f64::from(k), rate)
    }

    fn sample_standard(shape: f64, next: &mut dyn FnMut() -> u64) -> f64 {
        if shape < 1.0 {
            // Boost: X ~ Gamma(k+1), return X * U^(1/k).
            let x = Self::sample_standard(shape + 1.0, next);
            return x * unit_open(next).powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let z = standard_normal(next);
            let v = 1.0 + c * z;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = unit_open(next);
            // Squeeze then full acceptance test.
            if u < 1.0 - 0.0331 * z.powi(4) || u.ln() < 0.5 * z * z + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Distribution for Gamma {
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        Self::sample_standard(self.shape, rng) / self.rate
    }
    fn mean(&self) -> Option<f64> {
        Some(self.shape / self.rate)
    }
    fn variance(&self) -> Option<f64> {
        Some(self.shape / (self.rate * self.rate))
    }
}

/// Weibull distribution with scale `lambda` and shape `k` (inversion sampling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    scale: f64,
    shape: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Panics
    /// Panics unless both parameters are finite and strictly positive.
    #[must_use]
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "Weibull: scale must be > 0"
        );
        assert!(
            shape.is_finite() && shape > 0.0,
            "Weibull: shape must be > 0"
        );
        Self { scale, shape }
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        self.scale * (-unit_open(rng).ln()).powf(1.0 / self.shape)
    }
    fn mean(&self) -> Option<f64> {
        Some(self.scale * gamma_fn(1.0 + 1.0 / self.shape))
    }
    fn variance(&self) -> Option<f64> {
        let g1 = gamma_fn(1.0 + 1.0 / self.shape);
        let g2 = gamma_fn(1.0 + 2.0 / self.shape);
        Some(self.scale * self.scale * (g2 - g1 * g1))
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9 coefficients).
fn gamma_fn(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Poisson-distributed *count* with the given mean.
///
/// Knuth's product method for small means; for large means a normal
/// approximation with continuity correction (adequate for workload counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with the given mean (> 0).
    ///
    /// # Panics
    /// Panics unless `mean` is finite and strictly positive.
    #[must_use]
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "Poisson: mean must be > 0");
        Self { mean }
    }
}

impl Distribution for Poisson {
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        if self.mean < 30.0 {
            let limit = (-self.mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= unit_open(rng);
                if p <= limit {
                    return k as f64;
                }
                k += 1;
            }
        } else {
            let z = standard_normal(rng);
            (self.mean + self.mean.sqrt() * z + 0.5).floor().max(0.0)
        }
    }
    fn mean(&self) -> Option<f64> {
        Some(self.mean)
    }
    fn variance(&self) -> Option<f64> {
        Some(self.mean)
    }
}

/// Discrete distribution over `0..weights.len()` sampled in O(1) with the
/// Walker/Vose alias method.
///
/// Used for machine-selection in synthetic heterogeneous workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
    weights: Vec<f64>,
}

impl Categorical {
    /// Builds the alias tables from non-negative `weights` (at least one > 0).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite value,
    /// or sums to zero.
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "Categorical: weights must be non-empty"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(
                    w.is_finite() && w >= 0.0,
                    "Categorical: weights must be finite and >= 0"
                );
                w
            })
            .sum();
        assert!(total > 0.0, "Categorical: total weight must be > 0");
        let n = weights.len();
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = (0..n).filter(|&i| scaled[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..n).filter(|&i| scaled[i] >= 1.0).collect();
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("small checked non-empty");
            let l = *large.last().expect("large checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
        }
        Self {
            prob,
            alias,
            weights: weights.to_vec(),
        }
    }

    /// Draws an index in `0..len` according to the weights.
    pub fn sample_index(&self, next: &mut dyn FnMut() -> u64) -> usize {
        let n = self.prob.len() as u64;
        // Unbiased bucket choice via 128-bit multiply-shift.
        let bucket = (((next() as u128) * (n as u128)) >> 64) as usize;
        if bits_to_unit(next()) < self.prob[bucket] {
            bucket
        } else {
            self.alias[bucket]
        }
    }
}

impl Distribution for Categorical {
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        self.sample_index(rng) as f64
    }
    fn mean(&self) -> Option<f64> {
        let total: f64 = self.weights.iter().sum();
        Some(
            self.weights
                .iter()
                .enumerate()
                .map(|(i, w)| i as f64 * w)
                .sum::<f64>()
                / total,
        )
    }
    fn variance(&self) -> Option<f64> {
        let total: f64 = self.weights.iter().sum();
        let m = self.mean()?;
        let e2 = self
            .weights
            .iter()
            .enumerate()
            .map(|(i, w)| (i as f64) * (i as f64) * w)
            .sum::<f64>()
            / total;
        Some(e2 - m * m)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s >= 0`.
///
/// Implemented through [`Categorical`]; models skewed job-class popularity.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cat: Categorical,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf: n must be >= 1");
        assert!(s.is_finite() && s >= 0.0, "Zipf: exponent must be >= 0");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        Self {
            cat: Categorical::new(&weights),
        }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample_rank(&self, next: &mut dyn FnMut() -> u64) -> usize {
        self.cat.sample_index(next) + 1
    }
}

impl Distribution for Zipf {
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        self.sample_rank(rng) as f64
    }
    fn mean(&self) -> Option<f64> {
        self.cat.mean().map(|m| m + 1.0)
    }
    fn variance(&self) -> Option<f64> {
        self.cat.variance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineStats;
    use crate::rng::{Rng, Xoshiro256StarStar};

    fn empirical<D: Distribution>(d: &D, n: usize, seed: u64) -> OnlineStats {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut stats = OnlineStats::new();
        let mut next = move || rng.next_u64();
        for _ in 0..n {
            stats.push(d.sample(&mut next));
        }
        stats
    }

    fn assert_moments<D: Distribution>(d: &D, n: usize, seed: u64, mean_tol: f64, var_tol: f64) {
        let s = empirical(d, n, seed);
        let m = d.mean().expect("finite mean");
        let v = d.variance().expect("finite variance");
        assert!(
            (s.mean() - m).abs() < mean_tol,
            "mean {} vs {}",
            s.mean(),
            m
        );
        assert!(
            (s.variance() - v).abs() < var_tol,
            "var {} vs {}",
            s.variance(),
            v
        );
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(3.25);
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        let mut next = move || rng.next_u64();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut next), 3.25);
        }
    }

    #[test]
    fn uniform_moments() {
        assert_moments(&Uniform::new(2.0, 6.0), 200_000, 1, 0.02, 0.05);
    }

    #[test]
    fn exponential_moments() {
        assert_moments(&Exponential::new(0.5), 200_000, 2, 0.03, 0.15);
    }

    #[test]
    fn exponential_with_mean_roundtrip() {
        let d = Exponential::with_mean(4.0);
        assert!((d.mean().unwrap() - 4.0).abs() < 1e-12);
        assert!((d.rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn exponential_samples_are_positive() {
        let d = Exponential::new(3.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut next = move || rng.next_u64();
        for _ in 0..10_000 {
            assert!(d.sample(&mut next) > 0.0);
        }
    }

    #[test]
    fn pareto_moments_with_light_tail() {
        // shape = 4 so the variance exists and converges reasonably.
        let d = Pareto::with_mean(2.0, 4.0);
        assert!((d.mean().unwrap() - 2.0).abs() < 1e-12);
        assert_moments(&d, 400_000, 4, 0.03, 0.2);
    }

    #[test]
    fn pareto_samples_respect_scale() {
        let d = Pareto::new(1.5, 2.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut next = move || rng.next_u64();
        for _ in 0..10_000 {
            assert!(d.sample(&mut next) >= 1.5);
        }
    }

    #[test]
    fn hyperexponential_moments_and_cv2() {
        let d = Hyperexponential::with_mean_cv2(2.0, 4.0);
        assert!((d.mean().unwrap() - 2.0).abs() < 1e-12);
        assert!((d.cv2() - 4.0).abs() < 1e-9, "cv2 {}", d.cv2());
        assert_moments(&d, 400_000, 40, 0.05, 0.8);
    }

    #[test]
    fn hyperexponential_reduces_to_exponential_at_equal_rates() {
        let h = Hyperexponential::new(0.3, 2.0, 2.0);
        let e = Exponential::new(2.0);
        assert!((h.mean().unwrap() - e.mean().unwrap()).abs() < 1e-12);
        assert!((h.variance().unwrap() - e.variance().unwrap()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cv2 must exceed 1")]
    fn hyperexponential_rejects_low_cv() {
        let _ = Hyperexponential::with_mean_cv2(1.0, 0.5);
    }

    #[test]
    fn normal_moments() {
        assert_moments(&Normal::new(-1.0, 2.0), 200_000, 6, 0.03, 0.1);
    }

    #[test]
    fn lognormal_moments() {
        let d = LogNormal::with_mean_cv(3.0, 0.5);
        assert!((d.mean().unwrap() - 3.0).abs() < 1e-9);
        assert_moments(&d, 400_000, 7, 0.03, 0.12);
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        assert_moments(&Gamma::new(3.0, 2.0), 200_000, 8, 0.02, 0.05);
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        assert_moments(&Gamma::new(0.5, 1.0), 400_000, 9, 0.02, 0.08);
    }

    #[test]
    fn erlang_equals_sum_of_exponentials_in_mean() {
        let d = Gamma::erlang(4, 2.0);
        assert!((d.mean().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weibull_moments() {
        assert_moments(&Weibull::new(2.0, 1.5), 300_000, 10, 0.03, 0.1);
    }

    #[test]
    fn gamma_fn_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn poisson_moments_small_mean() {
        assert_moments(&Poisson::new(4.0), 200_000, 11, 0.03, 0.15);
    }

    #[test]
    fn poisson_moments_large_mean() {
        assert_moments(&Poisson::new(100.0), 200_000, 12, 0.2, 3.0);
    }

    #[test]
    fn categorical_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let cat = Categorical::new(&weights);
        let mut rng = Xoshiro256StarStar::seed_from_u64(13);
        let mut counts = [0u32; 4];
        let n = 100_000;
        let mut next = move || rng.next_u64();
        for _ in 0..n {
            counts[cat.sample_index(&mut next)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = f64::from(counts[i]) / f64::from(n);
            assert!((got - expect).abs() < 0.01, "bucket {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn categorical_single_bucket() {
        let cat = Categorical::new(&[7.0]);
        let mut rng = Xoshiro256StarStar::seed_from_u64(14);
        let mut next = move || rng.next_u64();
        assert_eq!(cat.sample_index(&mut next), 0);
    }

    #[test]
    #[should_panic(expected = "total weight must be > 0")]
    fn categorical_rejects_all_zero() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(10, 1.2);
        let mut rng = Xoshiro256StarStar::seed_from_u64(15);
        let mut counts = [0u32; 10];
        let mut next = move || rng.next_u64();
        for _ in 0..50_000 {
            counts[z.sample_rank(&mut next) - 1] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[3]);
    }

    #[test]
    fn zipf_uniform_when_exponent_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(16);
        let mut counts = [0u32; 4];
        let mut next = move || rng.next_u64();
        for _ in 0..80_000 {
            counts[z.sample_rank(&mut next) - 1] += 1;
        }
        for c in counts {
            assert!((18_000..22_000).contains(&c), "count {c}");
        }
    }
}
