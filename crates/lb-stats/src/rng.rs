//! Deterministic, splittable pseudo-random number generation.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny, statistically solid generator whose main role
//!   here is *seeding*: it expands a single `u64` seed into the 256-bit state
//!   of the workhorse generator, as recommended by the xoshiro authors.
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman & Vigna).
//!   It supports `jump()`, which advances the state by 2^128 steps, giving
//!   2^128 provably non-overlapping subsequences. Parallel replications each
//!   take their own jumped stream, so a fleet of simulations is reproducible
//!   from one seed regardless of thread scheduling.
//!
//! The [`Rng`] trait is the minimal sampling interface the rest of the
//! workspace consumes; it is object-safe so distributions can be boxed.

/// Minimal uniform-source trait used by all distributions in this workspace.
///
/// Implementors must produce independent, uniformly distributed values; all
/// derived helpers (floats, ranges, bools) are provided.
pub trait Rng {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in the half-open interval `[0, 1)`.
    ///
    /// Uses the top 53 bits of [`Rng::next_u64`] so every representable value
    /// is an exact multiple of 2⁻⁵³ (the standard "53-bit" construction).
    fn next_f64(&mut self) -> f64 {
        // 2^-53; the multiplication is exact for all 53-bit integers.
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Returns a uniformly distributed `f64` in the *open* interval `(0, 1)`.
    ///
    /// Useful for inverse-CDF sampling where `ln(0)` must be avoided.
    fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Lemire (2019): unbiased bounded generation without division in the
        // common case.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a uniformly distributed `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "next_range: invalid bounds"
        );
        lo + (hi - lo) * self.next_f64()
    }
}

/// SplitMix64 generator (Steele, Lea & Flood; public-domain reference by Vigna).
///
/// One addition and three xor-shift-multiply rounds per output. Equidistributed
/// in one dimension and passes BigCrush; primarily used here to expand seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary 64-bit seed (all values valid).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives a per-task sub-seed from a base seed and a task index.
///
/// Equals the `(index + 1)`-th SplitMix64 output of `base`, so for a fixed
/// base the map `index → seed` is injective (SplitMix64 is a bijective
/// stream: equal outputs would imply equal stream positions). This is the
/// standard way to fan one user-supplied seed out to millions of independent
/// fuzz iterations while keeping every iteration individually reproducible:
/// `derive_seed(base, i)` depends only on `(base, i)`, never on how many
/// iterations ran before.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    SplitMix64::new(base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))).next_u64()
}

/// xoshiro256\*\* generator (Blackman & Vigna, 2018).
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes all known statistical test
/// batteries, and supports efficient `jump()` for disjoint parallel streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding `seed` through [`SplitMix64`], per the
    /// xoshiro reference implementation's seeding recommendation.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Creates a generator from raw state.
    ///
    /// # Panics
    /// Panics if the state is all zeros (the one invalid xoshiro state).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256** state must be non-zero"
        );
        Self { s }
    }

    /// Advances the state by 2¹²⁸ steps — equivalent to 2¹²⁸ calls to
    /// [`Rng::next_u64`] — without generating the intermediate values.
    ///
    /// Calling `jump()` k times on clones of one generator yields 2¹²⁸-spaced,
    /// provably non-overlapping subsequences.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = acc;
    }

    /// Returns an independent stream: the `index`-th 2¹²⁸-jump of `self`.
    ///
    /// `stream(0)` is one jump ahead of `self` (never identical to it), so the
    /// parent generator may keep being used without overlapping any stream.
    ///
    /// Cost is `index + 1` jumps, so deriving stream `i` for every `i` in
    /// `0..n` this way is O(n²) — at n = 10⁶ machines that is hours, not
    /// seconds. Loops over consecutive streams must use [`Self::streams`],
    /// which yields the identical generators at one jump per step.
    #[must_use]
    pub fn stream(&self, index: u64) -> Self {
        let mut g = self.clone();
        for _ in 0..=index {
            g.jump();
        }
        g
    }

    /// Iterator over consecutive independent streams: yields exactly
    /// `self.stream(start)`, `self.stream(start + 1)`, … — bit-identical to
    /// indexed derivation — but advances incrementally, one jump per step,
    /// after an O(`start`) setup. The difference between O(n²) and O(n)
    /// stream derivation when walking machines `0..n`.
    #[must_use]
    pub fn streams(&self, start: u64) -> Streams {
        let mut cur = self.clone();
        for _ in 0..start {
            cur.jump();
        }
        Streams { cur }
    }
}

/// Infinite iterator of consecutive [`Xoshiro256StarStar::stream`]
/// generators; see [`Xoshiro256StarStar::streams`].
#[derive(Debug, Clone)]
pub struct Streams {
    cur: Xoshiro256StarStar,
}

impl Iterator for Streams {
    type Item = Xoshiro256StarStar;

    fn next(&mut self) -> Option<Self::Item> {
        self.cur.jump();
        Some(self.cur.clone())
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for &mut Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference values computed from Vigna's public-domain C code with
        // seed 0x0000_0000_0000_0000 and 0x1234_5678_9abc_def0.
        let mut g = SplitMix64::new(0);
        let first: Vec<u64> = (0..3).map(|_| g.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F
            ]
        );
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        // Injective per index: state(base, i) = base + (i+1)·γ (mod 2⁶⁴) is
        // distinct for distinct i < 2⁶⁴ (γ is odd), and the output mix is a
        // bijection — spot-check a window.
        let base = 0xDEAD_BEEF_CAFE_F00D;
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(base, i)), "collision at index {i}");
        }
        // Index 0 equals the first SplitMix64 output of the base seed (the
        // documented identity that makes failures reproducible by hand).
        assert_eq!(derive_seed(base, 0), SplitMix64::new(base).next_u64());
        // Consecutive indices land far apart (avalanche sanity check).
        let diff = derive_seed(base, 1) ^ derive_seed(base, 2);
        assert!(diff.count_ones() > 10, "weak diffusion: {diff:#x}");
    }

    #[test]
    fn splitmix64_distinct_seeds_differ() {
        let a = SplitMix64::new(1).next_u64();
        let b = SplitMix64::new(2).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_known_state_first_output() {
        // With state [1,2,3,4]: result = rotl(2*5, 7)*9 = rotl(10,7)*9 = 1280*9.
        let mut g = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        assert_eq!(g.next_u64(), 1280 * 9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn xoshiro_rejects_zero_state() {
        let _ = Xoshiro256StarStar::from_state([0; 4]);
    }

    #[test]
    fn jump_streams_do_not_collide_prefixwise() {
        let base = Xoshiro256StarStar::seed_from_u64(7);
        let mut s0 = base.stream(0);
        let mut s1 = base.stream(1);
        let a: Vec<u64> = (0..64).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..64).map(|_| s1.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn streams_iterator_matches_indexed_stream_derivation() {
        let base = Xoshiro256StarStar::seed_from_u64(42);
        let mut it = base.streams(3);
        for k in 3..9u64 {
            let mut inc = it.next().expect("streams is infinite");
            let mut idx = base.stream(k);
            let a: Vec<u64> = (0..8).map(|_| inc.next_u64()).collect();
            let b: Vec<u64> = (0..8).map(|_| idx.next_u64()).collect();
            assert_eq!(a, b, "streams({k}) diverged from stream({k})");
        }
    }

    #[test]
    fn stream_zero_differs_from_parent() {
        let base = Xoshiro256StarStar::seed_from_u64(7);
        let mut parent = base.clone();
        let mut s0 = base.stream(0);
        let a: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| s0.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut g = Xoshiro256StarStar::seed_from_u64(9);
        for _ in 0..10_000 {
            let u = g.next_f64();
            assert!((0.0..1.0).contains(&u), "u = {u} out of [0,1)");
        }
    }

    #[test]
    fn next_f64_mean_is_near_half() {
        let mut g = Xoshiro256StarStar::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_unbiased_enough() {
        let mut g = Xoshiro256StarStar::seed_from_u64(13);
        let bound = 7u64;
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            let v = g.next_below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        for c in counts {
            // Expected 10_000 per bucket; 10% slack is generous for n=70k.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_bound_panics() {
        let mut g = Xoshiro256StarStar::seed_from_u64(1);
        let _ = g.next_below(0);
    }

    #[test]
    fn next_range_respects_bounds() {
        let mut g = Xoshiro256StarStar::seed_from_u64(17);
        for _ in 0..1000 {
            let v = g.next_range(-2.5, 3.5);
            assert!((-2.5..3.5).contains(&v));
        }
    }

    #[test]
    fn next_bool_probability_is_respected() {
        let mut g = Xoshiro256StarStar::seed_from_u64(19);
        let hits = (0..100_000).filter(|_| g.next_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }
}
