//! Autocovariance and autocorrelation analysis for simulation output.
//!
//! Response times out of a queue are serially correlated; treating them as
//! i.i.d. understates the variance of their mean. These helpers quantify
//! that correlation — the justification for [`crate::ci::batch_means`] —
//! and estimate the effective sample size of an autocorrelated series.

/// Sample autocovariance of `series` at `lag` (biased, normalised by `n`,
/// the standard spectral-friendly convention).
///
/// # Panics
/// Panics if the series is shorter than `lag + 2`.
#[must_use]
pub fn autocovariance(series: &[f64], lag: usize) -> f64 {
    assert!(
        series.len() >= lag + 2,
        "autocovariance: series too short for lag {lag}"
    );
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    let mut acc = 0.0;
    for i in 0..n - lag {
        acc += (series[i] - mean) * (series[i + lag] - mean);
    }
    acc / n as f64
}

/// Sample autocorrelation at `lag` (`1.0` at lag 0 for non-constant series).
///
/// Returns 0 for (numerically) constant series.
///
/// # Panics
/// Panics if the series is shorter than `lag + 2`.
#[must_use]
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    let c0 = autocovariance(series, 0);
    if c0 <= 1e-300 {
        return 0.0;
    }
    autocovariance(series, lag) / c0
}

/// Integrated autocorrelation time `τ = 1 + 2 Σ_k ρ(k)`, with the sum
/// truncated at the first non-positive autocorrelation (Geyer's initial
/// positive sequence — the standard practical truncation).
///
/// `τ ≈ 1` for i.i.d. data; the variance of the sample mean is inflated by
/// `τ` relative to the i.i.d. formula.
///
/// # Panics
/// Panics if the series has fewer than 3 observations.
#[must_use]
pub fn integrated_autocorrelation_time(series: &[f64]) -> f64 {
    assert!(
        series.len() >= 3,
        "integrated_autocorrelation_time: series too short"
    );
    let max_lag = (series.len() / 4).max(1);
    let mut tau = 1.0;
    for lag in 1..=max_lag {
        if series.len() < lag + 2 {
            break;
        }
        let rho = autocorrelation(series, lag);
        if rho <= 0.0 {
            break;
        }
        tau += 2.0 * rho;
    }
    tau
}

/// Effective sample size `n / τ` of an autocorrelated series.
///
/// # Panics
/// Panics if the series has fewer than 3 observations.
#[must_use]
pub fn effective_sample_size(series: &[f64]) -> f64 {
    series.len() as f64 / integrated_autocorrelation_time(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample, Exponential};
    use crate::rng::Xoshiro256StarStar;

    fn iid_series(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let d = Exponential::with_mean(1.0);
        (0..n).map(|_| sample(&d, &mut rng)).collect()
    }

    fn ar1_series(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let d = Exponential::with_mean(1.0);
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                x = phi * x + sample(&d, &mut rng);
                x
            })
            .collect()
    }

    #[test]
    fn lag_zero_autocorrelation_is_one() {
        let s = iid_series(1000, 1);
        assert!((autocorrelation(&s, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iid_series_has_negligible_autocorrelation() {
        let s = iid_series(50_000, 2);
        for lag in [1usize, 2, 5, 10] {
            let rho = autocorrelation(&s, lag);
            assert!(rho.abs() < 0.02, "lag {lag}: rho {rho}");
        }
        let tau = integrated_autocorrelation_time(&s);
        assert!(tau < 1.2, "tau {tau}");
    }

    #[test]
    fn ar1_autocorrelation_matches_theory() {
        let phi = 0.7;
        let s = ar1_series(200_000, phi, 3);
        // AR(1): rho(k) = phi^k.
        for lag in 1..=4usize {
            let rho = autocorrelation(&s, lag);
            let expect = phi.powi(i32::try_from(lag).unwrap());
            assert!((rho - expect).abs() < 0.03, "lag {lag}: {rho} vs {expect}");
        }
    }

    #[test]
    fn ar1_integrated_time_matches_theory() {
        // tau = (1+phi)/(1-phi) for AR(1).
        let phi = 0.5;
        let s = ar1_series(200_000, phi, 4);
        let tau = integrated_autocorrelation_time(&s);
        let expect = (1.0 + phi) / (1.0 - phi);
        assert!((tau - expect).abs() < 0.3, "tau {tau} vs {expect}");
        let ess = effective_sample_size(&s);
        assert!((ess - s.len() as f64 / expect).abs() / ess < 0.2);
    }

    #[test]
    fn constant_series_is_handled() {
        let s = vec![2.0; 100];
        assert_eq!(autocorrelation(&s, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "series too short")]
    fn short_series_panics() {
        let _ = autocovariance(&[1.0, 2.0], 5);
    }
}
