//! Single-pass, numerically stable summary statistics.
//!
//! [`OnlineStats`] implements Welford's algorithm with the Chan et al.
//! pairwise-merge extension, so partial summaries computed on worker threads
//! can be reduced without precision loss — the pattern used by the parallel
//! replication runner in [`crate::parallel`].

/// Streaming count / mean / variance / extrema accumulator (Welford).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Builds an accumulator from a slice in one pass.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    ///
    /// # Panics
    /// Panics (in debug builds) if `value` is NaN — a NaN observation would
    /// silently poison every subsequent statistic.
    pub fn push(&mut self, value: f64) {
        debug_assert!(!value.is_nan(), "OnlineStats: NaN observation");
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator into this one (Chan et al. parallel update).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations (0 when empty).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (0 when empty).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (`s / sqrt(n)`, 0 when empty).
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The raw Welford state `(count, mean, m2, min, max, sum)`, for
    /// serializing a partial summary across a wire or process boundary.
    /// Inverse of [`Self::from_parts`].
    #[must_use]
    pub fn parts(&self) -> (u64, f64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max, self.sum)
    }

    /// Rebuilds an accumulator from the state captured by [`Self::parts`].
    ///
    /// Returns `None` when the state could not have come from a valid
    /// accumulator: NaN anywhere, negative `m2`, non-finite moments for a
    /// non-empty summary, or a non-empty payload claiming `count == 0`.
    #[must_use]
    pub fn from_parts(
        count: u64,
        mean: f64,
        m2: f64,
        min: f64,
        max: f64,
        sum: f64,
    ) -> Option<Self> {
        if [mean, m2, min, max, sum].iter().any(|v| v.is_nan()) || m2 < 0.0 {
            return None;
        }
        if count == 0 {
            // The only empty state is the canonical one — anything else is a
            // corrupted frame, not a summary.
            return (mean == 0.0 && m2 == 0.0 && sum == 0.0 && min > max).then(Self::new);
        }
        if !(mean.is_finite() && m2.is_finite() && sum.is_finite()) || min > max {
            return None;
        }
        Some(Self {
            count,
            mean,
            m2,
            min,
            max,
            sum,
        })
    }
}

/// Exponentially weighted moving average with smoothing factor `alpha`.
///
/// Used by adaptive agents to smooth per-round utility feedback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "Ewma: alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Feeds one observation and returns the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current smoothed value, if any observation has been pushed.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Clears the accumulated state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn known_small_sample() {
        let s = OnlineStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s = OnlineStats::from_slice(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = OnlineStats::from_slice(&xs);
        let mut a = OnlineStats::from_slice(&xs[..37]);
        let b = OnlineStats::from_slice(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::from_slice(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation scenario for naive sum-of-squares.
        let offset = 1e9;
        let s =
            OnlineStats::from_slice(&[offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0]);
        assert!((s.mean() - (offset + 10.0)).abs() < 1e-3);
        assert!(
            (s.variance() - 30.0).abs() < 1e-6,
            "variance = {}",
            s.variance()
        );
    }

    #[test]
    fn parts_round_trip_is_exact() {
        let s = OnlineStats::from_slice(&[2.0, 4.0, 8.0, 16.0]);
        let (count, mean, m2, min, max, sum) = s.parts();
        let back = OnlineStats::from_parts(count, mean, m2, min, max, sum).unwrap();
        assert_eq!(back, s);

        let empty = OnlineStats::new();
        let (count, mean, m2, min, max, sum) = empty.parts();
        let back = OnlineStats::from_parts(count, mean, m2, min, max, sum).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn from_parts_rejects_corrupted_states() {
        // NaN, negative m2, inverted extrema, phantom-empty payloads.
        assert!(OnlineStats::from_parts(1, f64::NAN, 0.0, 1.0, 1.0, 1.0).is_none());
        assert!(OnlineStats::from_parts(2, 1.0, -0.5, 0.0, 2.0, 2.0).is_none());
        assert!(OnlineStats::from_parts(2, 1.0, 0.0, 2.0, 0.0, 2.0).is_none());
        assert!(OnlineStats::from_parts(0, 1.0, 0.0, 1.0, 1.0, 1.0).is_none());
        assert!(OnlineStats::from_parts(1, f64::INFINITY, 0.0, 1.0, 1.0, 1.0).is_none());
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        for _ in 0..200 {
            e.push(5.0);
        }
        assert!((e.value().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_value_initializes() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.push(42.0), 42.0);
    }

    #[test]
    fn ewma_reset_clears() {
        let mut e = Ewma::new(0.5);
        e.push(1.0);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }
}
