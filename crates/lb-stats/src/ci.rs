//! Confidence intervals for simulation output analysis.
//!
//! Two tools: Student-t intervals over independent replications (the standard
//! way to report discrete-event simulation results) and the batch-means method
//! for a single long, autocorrelated run.

use crate::online::OnlineStats;

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level used, e.g. `0.95`.
    pub confidence: f64,
    /// Number of observations behind the estimate.
    pub count: u64,
}

impl ConfidenceInterval {
    /// Lower endpoint.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` lies inside the interval.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }

    /// Relative half-width (`half_width / |mean|`); `inf` for zero mean.
    #[must_use]
    pub fn relative_precision(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Two-sided Student-t critical value for the given degrees of freedom and
/// confidence level (supported levels: 0.90, 0.95, 0.99).
///
/// Exact table entries for small `df`, smooth interpolation to the normal
/// quantile for large `df`. Accuracy is better than 1% everywhere, which is
/// far below simulation noise.
///
/// # Panics
/// Panics if `df == 0` or the level is unsupported.
#[must_use]
pub fn t_critical(df: u64, confidence: f64) -> f64 {
    assert!(df > 0, "t_critical: df must be >= 1");
    // Table rows: df 1..=30, then selected larger dfs.
    const LEVELS: [f64; 3] = [0.90, 0.95, 0.99];
    const TABLE: [[f64; 3]; 30] = [
        [6.314, 12.706, 63.657],
        [2.920, 4.303, 9.925],
        [2.353, 3.182, 5.841],
        [2.132, 2.776, 4.604],
        [2.015, 2.571, 4.032],
        [1.943, 2.447, 3.707],
        [1.895, 2.365, 3.499],
        [1.860, 2.306, 3.355],
        [1.833, 2.262, 3.250],
        [1.812, 2.228, 3.169],
        [1.796, 2.201, 3.106],
        [1.782, 2.179, 3.055],
        [1.771, 2.160, 3.012],
        [1.761, 2.145, 2.977],
        [1.753, 2.131, 2.947],
        [1.746, 2.120, 2.921],
        [1.740, 2.110, 2.898],
        [1.734, 2.101, 2.878],
        [1.729, 2.093, 2.861],
        [1.725, 2.086, 2.845],
        [1.721, 2.080, 2.831],
        [1.717, 2.074, 2.819],
        [1.714, 2.069, 2.807],
        [1.711, 2.064, 2.797],
        [1.708, 2.060, 2.787],
        [1.706, 2.056, 2.779],
        [1.703, 2.052, 2.771],
        [1.701, 2.048, 2.763],
        [1.699, 2.045, 2.756],
        [1.697, 2.042, 2.750],
    ];
    // Normal quantiles for the three levels (df -> infinity limit).
    const Z: [f64; 3] = [1.645, 1.960, 2.576];

    let col = LEVELS
        .iter()
        .position(|&l| (l - confidence).abs() < 1e-9)
        .unwrap_or_else(|| panic!("t_critical: unsupported confidence level {confidence}"));

    if df <= 30 {
        TABLE[(df - 1) as usize][col]
    } else {
        // Smooth df^-1 interpolation between the df=30 entry and the normal limit.
        let t30 = TABLE[29][col];
        let z = Z[col];
        let w = 30.0 / df as f64;
        z + (t30 - z) * w
    }
}

/// Student-t confidence interval for the mean of the observations in `stats`.
///
/// # Panics
/// Panics if `stats` holds fewer than two observations (no variance estimate)
/// or the confidence level is unsupported.
#[must_use]
pub fn mean_confidence_interval(stats: &OnlineStats, confidence: f64) -> ConfidenceInterval {
    assert!(
        stats.count() >= 2,
        "mean_confidence_interval: need at least 2 observations"
    );
    let t = t_critical(stats.count() - 1, confidence);
    ConfidenceInterval {
        mean: stats.mean(),
        half_width: t * stats.std_error(),
        confidence,
        count: stats.count(),
    }
}

/// Batch-means confidence interval for a single autocorrelated series.
///
/// The series is split into `batches` equal contiguous batches; batch means
/// are approximately independent for long batches, so a t-interval over them
/// is asymptotically valid. Trailing observations that do not fill the last
/// batch are dropped.
///
/// # Panics
/// Panics if `batches < 2` or the series is shorter than `2 * batches`.
#[must_use]
pub fn batch_means(series: &[f64], batches: usize, confidence: f64) -> ConfidenceInterval {
    assert!(batches >= 2, "batch_means: need at least 2 batches");
    assert!(
        series.len() >= 2 * batches,
        "batch_means: series too short for {batches} batches"
    );
    let batch_len = series.len() / batches;
    let mut means = OnlineStats::new();
    for b in 0..batches {
        let chunk = &series[b * batch_len..(b + 1) * batch_len];
        means.push(chunk.iter().sum::<f64>() / chunk.len() as f64);
    }
    mean_confidence_interval(&means, confidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample, Exponential};
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn t_critical_matches_table() {
        assert!((t_critical(1, 0.95) - 12.706).abs() < 1e-9);
        assert!((t_critical(10, 0.95) - 2.228).abs() < 1e-9);
        assert!((t_critical(30, 0.99) - 2.750).abs() < 1e-9);
    }

    #[test]
    fn t_critical_large_df_approaches_normal() {
        assert!((t_critical(1_000_000, 0.95) - 1.960).abs() < 0.01);
        assert!(t_critical(31, 0.95) < t_critical(30, 0.95));
        assert!(t_critical(100, 0.95) > 1.960);
    }

    #[test]
    #[should_panic(expected = "unsupported confidence")]
    fn t_critical_rejects_unknown_level() {
        let _ = t_critical(10, 0.42);
    }

    #[test]
    fn interval_geometry() {
        let ci = ConfidenceInterval {
            mean: 10.0,
            half_width: 2.0,
            confidence: 0.95,
            count: 5,
        };
        assert_eq!(ci.lo(), 8.0);
        assert_eq!(ci.hi(), 12.0);
        assert!(ci.contains(9.0));
        assert!(!ci.contains(12.5));
        assert!((ci.relative_precision() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn interval_covers_known_mean() {
        // 200 replications of an exponential(mean 2) sample mean: the 99% CI
        // should cover the true mean.
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        let d = Exponential::with_mean(2.0);
        let mut reps = OnlineStats::new();
        for _ in 0..200 {
            let m: f64 = (0..50).map(|_| sample(&d, &mut rng)).sum::<f64>() / 50.0;
            reps.push(m);
        }
        let ci = mean_confidence_interval(&reps, 0.99);
        assert!(ci.contains(2.0), "CI [{}, {}] misses 2.0", ci.lo(), ci.hi());
    }

    #[test]
    fn batch_means_on_iid_series_covers_mean() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let d = Exponential::with_mean(1.0);
        let series: Vec<f64> = (0..10_000).map(|_| sample(&d, &mut rng)).collect();
        let ci = batch_means(&series, 20, 0.99);
        assert!(ci.contains(1.0), "CI [{}, {}] misses 1.0", ci.lo(), ci.hi());
        assert_eq!(ci.count, 20);
    }

    #[test]
    #[should_panic(expected = "series too short")]
    fn batch_means_rejects_short_series() {
        let _ = batch_means(&[1.0, 2.0, 3.0], 2, 0.95);
    }

    #[test]
    #[should_panic(expected = "at least 2 observations")]
    fn mean_ci_requires_two_points() {
        let s = OnlineStats::from_slice(&[1.0]);
        let _ = mean_confidence_interval(&s, 0.95);
    }
}
