//! Statistics substrate for the `lbmv` workspace.
//!
//! The IPPS 2003 paper evaluates its mechanism by simulation; every stochastic
//! ingredient that simulation needs lives here so the rest of the workspace
//! stays deterministic and dependency-light:
//!
//! * [`rng`] — counter-seeded, splittable pseudo-random number generators
//!   (SplitMix64 for seeding, xoshiro256\*\* as the workhorse generator).
//!   Every simulation in the workspace is reproducible from a single `u64`
//!   seed, and parallel replications draw from provably disjoint streams.
//! * [`dist`] — probability distributions implemented from first principles
//!   (exponential, uniform, Pareto, gamma, normal, Poisson, Zipf, …) behind a
//!   single [`dist::Distribution`] trait.
//! * [`online`] — numerically stable single-pass (Welford) statistics with
//!   pairwise merge for parallel reductions, plus EWMA smoothing.
//! * [`ci`] — Student-t confidence intervals and batch-means analysis for
//!   autocorrelated simulation output.
//! * [`histogram`] — fixed-bin histograms and reservoir sampling for
//!   quantile estimation over large job populations.
//! * [`parallel`] — deterministic fan-out of independent replications over
//!   scoped threads (crossbeam), the workspace's HPC building block.

pub mod autocorr;
pub mod ci;
pub mod dist;
pub mod histogram;
pub mod ks;
pub mod online;
pub mod parallel;
pub mod quantile;
pub mod rng;

pub use autocorr::{
    autocorrelation, autocovariance, effective_sample_size, integrated_autocorrelation_time,
};
pub use ci::{batch_means, mean_confidence_interval, ConfidenceInterval};
pub use dist::Distribution;
pub use histogram::{Histogram, Reservoir};
pub use ks::{ks_test, KsTest};
pub use online::{Ewma, OnlineStats};
pub use parallel::par_map;
pub use quantile::{nearest_rank, P2Quantile};
pub use rng::{derive_seed, Rng, SplitMix64, Streams, Xoshiro256StarStar};
