//! Histograms and reservoir sampling for latency-population analysis.

use crate::rng::Rng;

/// Fixed-width-bin histogram over a closed range, with under/overflow bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `bins == 0`, the bounds are non-finite, or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: need at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "Histogram: invalid range"
        );
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        debug_assert!(!value.is_nan(), "Histogram: NaN observation");
        self.count += 1;
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of recorded observations (including out-of-range).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Lower bound of the in-range interval `[lo, hi)`.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Exclusive upper bound of the in-range interval `[lo, hi)`.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Rebuilds a histogram from a serialized `(lo, hi, bins, underflow,
    /// overflow)` state, for carrying partial histograms across a wire or
    /// process boundary. The total count is rederived from the bin counts,
    /// so a frame cannot claim mass it does not carry.
    ///
    /// Returns `None` when the geometry is invalid (the [`Self::new`]
    /// preconditions) or the counts overflow `u64`.
    #[must_use]
    pub fn from_parts(
        lo: f64,
        hi: f64,
        bins: Vec<u64>,
        underflow: u64,
        overflow: u64,
    ) -> Option<Self> {
        if bins.is_empty() || !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return None;
        }
        let mut count = underflow.checked_add(overflow)?;
        for &b in &bins {
            count = count.checked_add(b)?;
        }
        Some(Self {
            lo,
            hi,
            bins,
            underflow,
            overflow,
            count,
        })
    }

    /// Counts that fell below `lo`.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Counts that fell at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Raw per-bin counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The `[start, end)` value range of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "Histogram: bin index out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`) by linear interpolation over
    /// the cumulative histogram. Out-of-range mass is attributed to the range
    /// endpoints.
    ///
    /// # Panics
    /// Panics if the histogram is empty or `q` is non-finite or outside
    /// `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.count > 0, "Histogram: quantile of empty histogram");
        assert!(q.is_finite(), "Histogram: q must be finite, got {q}");
        assert!((0.0..=1.0).contains(&q), "Histogram: q must be in [0,1]");
        let target = q * self.count as f64;
        let mut cum = self.underflow as f64;
        if target <= cum {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = cum + c as f64;
            if target <= next && c > 0 {
                let frac = (target - cum) / c as f64;
                return self.lo + w * (i as f64 + frac);
            }
            cum = next;
        }
        self.hi
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Self) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "Histogram: geometry mismatch in merge"
        );
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

/// Uniform reservoir sampler (Vitter's Algorithm R): keeps a fixed-size
/// uniform random subset of an unbounded stream, for exact quantiles over
/// large job populations.
#[derive(Debug, Clone)]
pub struct Reservoir {
    sample: Vec<f64>,
    capacity: usize,
    seen: u64,
}

impl Reservoir {
    /// Creates a reservoir holding at most `capacity` observations.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Reservoir: capacity must be >= 1");
        Self {
            sample: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
        }
    }

    /// Offers one observation to the reservoir.
    pub fn offer<R: Rng>(&mut self, value: f64, rng: &mut R) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(value);
        } else {
            let j = rng.next_below(self.seen);
            if (j as usize) < self.capacity {
                self.sample[j as usize] = value;
            }
        }
    }

    /// Number of observations offered so far.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample (unordered).
    #[must_use]
    pub fn sample(&self) -> &[f64] {
        &self.sample
    }

    /// Exact `q`-quantile of the *retained sample* (nearest-rank, validated
    /// by [`crate::quantile::nearest_rank`]).
    ///
    /// # Panics
    /// Panics if the reservoir is empty or `q` is non-finite or outside
    /// `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sample.is_empty(), "Reservoir: empty");
        let mut sorted = self.sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in reservoir"));
        sorted[crate::quantile::nearest_rank(q, sorted.len()) - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn records_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn bin_range_is_consistent() {
        let h = Histogram::new(2.0, 4.0, 4);
        assert_eq!(h.bin_range(0), (2.0, 2.5));
        assert_eq!(h.bin_range(3), (3.5, 4.0));
    }

    #[test]
    fn quantile_of_uniform_fill() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5);
        assert!((med - 50.0).abs() < 1.5, "median = {med}");
        let p90 = h.quantile(0.9);
        assert!((p90 - 90.0).abs() < 1.5, "p90 = {p90}");
    }

    #[test]
    fn quantile_extremes() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(3.0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert!(h.quantile(1.0) <= 10.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let mut b = Histogram::new(0.0, 1.0, 2);
        a.record(0.25);
        b.record(0.75);
        b.record(-1.0);
        a.merge(&b);
        assert_eq!(a.bins(), &[1, 1]);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let b = Histogram::new(0.0, 2.0, 2);
        a.merge(&b);
    }

    #[test]
    fn from_parts_round_trips_and_rederives_count() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [-1.0, 0.5, 5.0, 20.0] {
            h.record(v);
        }
        let back = Histogram::from_parts(
            h.lo(),
            h.hi(),
            h.bins().to_vec(),
            h.underflow(),
            h.overflow(),
        )
        .unwrap();
        assert_eq!(back, h);
        assert_eq!(back.count(), 4);
    }

    #[test]
    fn from_parts_rejects_bad_geometry_and_overflow() {
        assert!(Histogram::from_parts(0.0, 1.0, vec![], 0, 0).is_none());
        assert!(Histogram::from_parts(1.0, 1.0, vec![0], 0, 0).is_none());
        assert!(Histogram::from_parts(0.0, f64::NAN, vec![0], 0, 0).is_none());
        assert!(Histogram::from_parts(0.0, 1.0, vec![u64::MAX, 1], 0, 0).is_none());
    }

    #[test]
    fn reservoir_keeps_all_when_under_capacity() {
        let mut r = Reservoir::new(10);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for i in 0..5 {
            r.offer(i as f64, &mut rng);
        }
        assert_eq!(r.sample().len(), 5);
        assert_eq!(r.seen(), 5);
    }

    #[test]
    fn reservoir_is_approximately_uniform() {
        // Offer 0..1000, keep 100; the retained sample's mean should be near
        // the population mean 499.5.
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut means = 0.0;
        let reps = 50;
        for rep in 0..reps {
            let mut r = Reservoir::new(100);
            let mut local = Xoshiro256StarStar::seed_from_u64(1000 + rep);
            for i in 0..1000 {
                r.offer(i as f64, &mut local);
            }
            means += r.sample().iter().sum::<f64>() / 100.0;
        }
        let _ = &mut rng;
        let grand = means / reps as f64;
        assert!((grand - 499.5).abs() < 15.0, "grand mean {grand}");
    }

    #[test]
    fn reservoir_quantile_nearest_rank() {
        let mut r = Reservoir::new(5);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            r.offer(v, &mut rng);
        }
        assert_eq!(r.quantile(0.5), 3.0);
        assert_eq!(r.quantile(1.0), 5.0);
        assert_eq!(r.quantile(0.0), 1.0);
        // Documented saturation: -0.0 is in range and means the minimum.
        assert_eq!(r.quantile(-0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "q must be finite")]
    fn reservoir_rejects_nan_quantile() {
        let mut r = Reservoir::new(2);
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        r.offer(1.0, &mut rng);
        r.quantile(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "q must be in [0, 1]")]
    fn reservoir_rejects_out_of_range_quantile() {
        let mut r = Reservoir::new(2);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        r.offer(1.0, &mut rng);
        r.quantile(1.0 + f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "q must be finite")]
    fn histogram_rejects_nan_quantile() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(0.5);
        h.quantile(f64::NAN);
    }
}
