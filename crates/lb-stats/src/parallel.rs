//! Deterministic parallel fan-out for independent replications.
//!
//! Simulation studies run many independent replications; [`par_map`] spreads
//! them over scoped threads (crossbeam) while keeping the output order — and
//! therefore every downstream statistic — identical to a sequential run.
//! Determinism comes from the caller seeding each task by *index* (see
//! [`crate::rng::Xoshiro256StarStar::stream`]), never from thread identity.

use crossbeam::thread;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every index in `0..n`, in parallel, returning results in
/// index order. `f` must be deterministic in its index argument for the
/// overall computation to be reproducible.
///
/// Work is distributed by atomic work-stealing over a shared counter, so
/// uneven task costs balance automatically. With `threads == 1` (or `n <= 1`)
/// the computation runs on the calling thread.
///
/// # Panics
/// Propagates panics from worker tasks.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    {
        // Hand each worker a disjoint view of the output slots through a raw
        // chunked split: we instead collect per-worker (index, value) pairs to
        // stay in safe Rust, then scatter.
        let results: Vec<Vec<(usize, T)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    let f = &f;
                    scope.spawn(move |_| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("par_map worker panicked"))
                .collect()
        })
        .expect("par_map scope panicked");

        for bucket in results {
            for (i, v) in bucket {
                slots[i] = Some(v);
            }
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("par_map: missing result slot"))
        .collect()
}

/// Default worker count: available parallelism, clamped to at least 1.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = par_map(0, 4, |i| i as u64);
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_in_index_order() {
        let out = par_map(100, 8, |i| i * i);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn sequential_path_matches_parallel() {
        let seq = par_map(57, 1, |i| (i as f64).sqrt());
        let par = par_map(57, 4, |i| (i as f64).sqrt());
        assert_eq!(seq, par);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Heavier work for small indices — just assert completion/correctness.
        let out = par_map(32, 4, |i| {
            let mut acc = 0u64;
            for k in 0..(if i < 4 { 200_000 } else { 100 }) {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 32);
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let out = par_map(3, 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
