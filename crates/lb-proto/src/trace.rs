//! Protocol round tracing: record every frame, replay it later.
//!
//! Production mechanisms need an audit trail beyond the settlement record:
//! *who said what, when*. A [`RoundTrace`] captures every delivered frame of
//! a round in order (serializable through the wire codec, so traces can be
//! shipped or archived), and [`replay_check`] re-validates a trace against
//! the protocol's invariants — the off-line analogue of the coordinator's
//! on-line assertions.

use crate::message::Message;
use crate::network::Endpoint;
use serde::{Deserialize, Serialize};

/// One delivered frame in a round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Simulated delivery time (seconds).
    pub at: f64,
    /// Sender.
    pub from: Endpoint,
    /// Receiver.
    pub to: Endpoint,
    /// The message.
    pub message: Message,
}

/// An ordered record of every frame delivered in one round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// Frames in delivery order.
    pub entries: Vec<TraceEntry>,
}

/// A violation found while replaying a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceViolation {
    /// Delivery times went backwards at this entry index.
    TimeRegression(usize),
    /// A node answered a request it never received.
    UnsolicitedBid {
        /// Offending machine.
        machine: u32,
    },
    /// A machine bid more than once.
    DuplicateBid {
        /// Offending machine.
        machine: u32,
    },
    /// An assignment was sent before every expected bid arrived or was
    /// resolved by exclusion — the coordinator allocated early.
    PrematureAssign(usize),
    /// A payment was sent to a machine that was never assigned load.
    PaymentWithoutAssignment {
        /// Offending machine.
        machine: u32,
    },
}

/// Replays a trace and checks the protocol's causal invariants.
///
/// `n` is the number of machines the round was opened with. Returns every
/// violation found (empty = clean trace).
#[must_use]
pub fn replay_check(trace: &RoundTrace, n: usize) -> Vec<TraceViolation> {
    let mut violations = Vec::new();
    let mut last_time = f64::NEG_INFINITY;
    let mut requested = vec![false; n];
    let mut bid = vec![false; n];
    let mut assigned = vec![false; n];

    for (idx, entry) in trace.entries.iter().enumerate() {
        if entry.at < last_time {
            violations.push(TraceViolation::TimeRegression(idx));
        }
        last_time = entry.at;
        match (&entry.to, &entry.message) {
            (Endpoint::Node(i), Message::RequestBid { .. }) => {
                if let Some(slot) = requested.get_mut(*i as usize) {
                    *slot = true;
                }
            }
            (Endpoint::Coordinator, Message::Bid { machine, .. }) => {
                let m = *machine as usize;
                if !requested.get(m).copied().unwrap_or(false) {
                    violations.push(TraceViolation::UnsolicitedBid { machine: *machine });
                }
                if bid.get(m).copied().unwrap_or(false) {
                    violations.push(TraceViolation::DuplicateBid { machine: *machine });
                }
                if let Some(slot) = bid.get_mut(m) {
                    *slot = true;
                }
            }
            (Endpoint::Node(i), Message::Assign { .. }) => {
                // Allocation must wait for the full bid picture: every machine
                // has either bid or been excluded (never assigned later). We
                // approximate exclusion as "never bids in the whole trace".
                let all_resolved = (0..n).all(|m| {
                    bid[m]
                        || !trace.entries.iter().any(|e| {
                            matches!(
                                (&e.to, &e.message),
                                (Endpoint::Coordinator, Message::Bid { machine, .. }) if *machine as usize == m
                            )
                        })
                });
                if !all_resolved {
                    violations.push(TraceViolation::PrematureAssign(idx));
                }
                if let Some(slot) = assigned.get_mut(*i as usize) {
                    *slot = true;
                }
            }
            (Endpoint::Node(i), Message::Payment { .. }) => {
                if !assigned.get(*i as usize).copied().unwrap_or(false) {
                    violations.push(TraceViolation::PaymentWithoutAssignment { machine: *i });
                }
            }
            _ => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::RoundId;

    fn clean_trace() -> RoundTrace {
        let r = RoundId(0);
        RoundTrace {
            entries: vec![
                TraceEntry { at: 0.0, from: Endpoint::Coordinator, to: Endpoint::Node(0), message: Message::RequestBid { round: r } },
                TraceEntry { at: 0.0, from: Endpoint::Coordinator, to: Endpoint::Node(1), message: Message::RequestBid { round: r } },
                TraceEntry { at: 0.1, from: Endpoint::Node(0), to: Endpoint::Coordinator, message: Message::Bid { round: r, machine: 0, value: 1.0 } },
                TraceEntry { at: 0.2, from: Endpoint::Node(1), to: Endpoint::Coordinator, message: Message::Bid { round: r, machine: 1, value: 2.0 } },
                TraceEntry { at: 0.3, from: Endpoint::Coordinator, to: Endpoint::Node(0), message: Message::Assign { round: r, rate: 2.0 } },
                TraceEntry { at: 0.3, from: Endpoint::Coordinator, to: Endpoint::Node(1), message: Message::Assign { round: r, rate: 1.0 } },
                TraceEntry { at: 0.4, from: Endpoint::Node(0), to: Endpoint::Coordinator, message: Message::ExecutionDone { round: r, machine: 0 } },
                TraceEntry { at: 0.5, from: Endpoint::Node(1), to: Endpoint::Coordinator, message: Message::ExecutionDone { round: r, machine: 1 } },
                TraceEntry { at: 0.6, from: Endpoint::Coordinator, to: Endpoint::Node(0), message: Message::Payment { round: r, amount: 3.0 } },
                TraceEntry { at: 0.6, from: Endpoint::Coordinator, to: Endpoint::Node(1), message: Message::Payment { round: r, amount: 1.0 } },
            ],
        }
    }

    #[test]
    fn clean_trace_replays_without_violations() {
        assert!(replay_check(&clean_trace(), 2).is_empty());
    }

    #[test]
    fn time_regression_is_flagged() {
        let mut t = clean_trace();
        t.entries[3].at = 0.05; // before the previous entry
        let v = replay_check(&t, 2);
        assert!(v.contains(&TraceViolation::TimeRegression(3)), "{v:?}");
    }

    #[test]
    fn unsolicited_and_duplicate_bids_are_flagged() {
        let mut t = clean_trace();
        t.entries.remove(1); // node 1 never got a request
        let v = replay_check(&t, 2);
        assert!(v.contains(&TraceViolation::UnsolicitedBid { machine: 1 }), "{v:?}");

        let mut t = clean_trace();
        let dup = t.entries[2].clone();
        t.entries.insert(3, dup);
        let v = replay_check(&t, 2);
        assert!(v.contains(&TraceViolation::DuplicateBid { machine: 0 }), "{v:?}");
    }

    #[test]
    fn premature_assignment_is_flagged() {
        let mut t = clean_trace();
        // Move the first Assign before node 1's bid.
        let assign = t.entries.remove(4);
        t.entries.insert(3, TraceEntry { at: 0.15, ..assign });
        let v = replay_check(&t, 2);
        assert!(v.iter().any(|x| matches!(x, TraceViolation::PrematureAssign(_))), "{v:?}");
    }

    #[test]
    fn payment_without_assignment_is_flagged() {
        let mut t = clean_trace();
        t.entries.retain(|e| !matches!(e.message, Message::Assign { .. }));
        let v = replay_check(&t, 2);
        assert!(
            v.contains(&TraceViolation::PaymentWithoutAssignment { machine: 0 }),
            "{v:?}"
        );
    }

    #[test]
    fn traces_roundtrip_through_the_codec() {
        let t = clean_trace();
        let bytes = crate::codec::encode(&t).unwrap();
        let back: RoundTrace = crate::codec::decode(&bytes).unwrap();
        assert_eq!(back, t);
    }
}
