//! Protocol round tracing: record every frame, replay it later.
//!
//! Production mechanisms need an audit trail beyond the settlement record:
//! *who said what, when*. A [`RoundTrace`] captures every delivered frame of
//! a round in order (serializable through the wire codec, so traces can be
//! shipped or archived), and [`replay_check`] re-validates a trace against
//! the protocol's invariants — the off-line analogue of the coordinator's
//! on-line assertions.

use crate::message::Message;
use crate::network::Endpoint;
use serde::{Deserialize, Serialize};

/// One delivered frame in a round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Simulated delivery time (seconds).
    pub at: f64,
    /// Sender.
    pub from: Endpoint,
    /// Receiver.
    pub to: Endpoint,
    /// The message.
    pub message: Message,
}

/// An ordered record of every frame delivered in one round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// Frames in delivery order.
    pub entries: Vec<TraceEntry>,
}

/// A violation found while replaying a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceViolation {
    /// Delivery times went backwards at this entry index.
    TimeRegression(usize),
    /// A node answered a request it never received.
    UnsolicitedBid {
        /// Offending machine.
        machine: u32,
    },
    /// A machine bid more than once.
    DuplicateBid {
        /// Offending machine.
        machine: u32,
    },
    /// An assignment was sent before every expected bid arrived or was
    /// resolved by exclusion — the coordinator allocated early.
    PrematureAssign(usize),
    /// A payment was sent to a machine that was never assigned load.
    PaymentWithoutAssignment {
        /// Offending machine.
        machine: u32,
    },
}

/// A protocol irregularity observed *on-line* and absorbed gracefully.
///
/// This is the runtime counterpart of [`TraceViolation`]: where `replay_check`
/// flags problems in an archived trace, an `Anomaly` is recorded the moment a
/// graceful coordinator (or the chaos runtime) sees a message it must ignore.
/// A byzantine or chaotic network can therefore raise anomaly counts but can
/// never crash the mechanism centre.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Anomaly {
    /// A machine bid more than once in the collection phase.
    DuplicateBid,
    /// A machine reported execution completion more than once.
    DuplicateAck,
    /// A message carried a round id other than the current round.
    StaleRound,
    /// A message type arrived outside the phase that expects it.
    WrongPhase,
    /// A message referenced a machine outside the round's roster, or arrived
    /// from a participant with no standing in the round.
    Unsolicited,
    /// A bid from a machine already excluded by timeout — too late to count.
    StaleAfterExclusion,
    /// A frame failed its link-level integrity check and was discarded.
    CorruptFrame,
    /// A frame arrived at an endpoint that can never accept it (e.g. a
    /// coordinator-originated message echoed back to the coordinator).
    Misrouted,
}

impl Anomaly {
    /// Stable snake_case name, used as the telemetry `kind` field so
    /// recordings and metrics keys are greppable.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Anomaly::DuplicateBid => "duplicate_bid",
            Anomaly::DuplicateAck => "duplicate_ack",
            Anomaly::StaleRound => "stale_round",
            Anomaly::WrongPhase => "wrong_phase",
            Anomaly::Unsolicited => "unsolicited",
            Anomaly::StaleAfterExclusion => "stale_after_exclusion",
            Anomaly::CorruptFrame => "corrupt_frame",
            Anomaly::Misrouted => "misrouted",
        }
    }
}

/// Per-kind counters of absorbed [`Anomaly`] events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnomalyStats {
    /// Count of [`Anomaly::DuplicateBid`].
    pub duplicate_bids: u64,
    /// Count of [`Anomaly::DuplicateAck`].
    pub duplicate_acks: u64,
    /// Count of [`Anomaly::StaleRound`].
    pub stale_rounds: u64,
    /// Count of [`Anomaly::WrongPhase`].
    pub wrong_phase: u64,
    /// Count of [`Anomaly::Unsolicited`].
    pub unsolicited: u64,
    /// Count of [`Anomaly::StaleAfterExclusion`].
    pub stale_after_exclusion: u64,
    /// Count of [`Anomaly::CorruptFrame`].
    pub corrupt_frames: u64,
    /// Count of [`Anomaly::Misrouted`].
    pub misrouted: u64,
}

impl AnomalyStats {
    /// Records one occurrence of `anomaly`. Counters saturate rather than
    /// wrap: a hostile network can raise counts but never panic (debug) or
    /// silently reset (release) the audit trail.
    pub fn record(&mut self, anomaly: Anomaly) {
        let slot = match anomaly {
            Anomaly::DuplicateBid => &mut self.duplicate_bids,
            Anomaly::DuplicateAck => &mut self.duplicate_acks,
            Anomaly::StaleRound => &mut self.stale_rounds,
            Anomaly::WrongPhase => &mut self.wrong_phase,
            Anomaly::Unsolicited => &mut self.unsolicited,
            Anomaly::StaleAfterExclusion => &mut self.stale_after_exclusion,
            Anomaly::CorruptFrame => &mut self.corrupt_frames,
            Anomaly::Misrouted => &mut self.misrouted,
        };
        *slot = slot.saturating_add(1);
    }

    /// Total anomalies across all kinds (saturating).
    #[must_use]
    pub fn total(&self) -> u64 {
        [
            self.duplicate_bids,
            self.duplicate_acks,
            self.stale_rounds,
            self.wrong_phase,
            self.unsolicited,
            self.stale_after_exclusion,
            self.corrupt_frames,
            self.misrouted,
        ]
        .into_iter()
        .fold(0u64, u64::saturating_add)
    }

    /// Adds every counter of `other` into `self` (saturating).
    pub fn merge(&mut self, other: &AnomalyStats) {
        self.duplicate_bids = self.duplicate_bids.saturating_add(other.duplicate_bids);
        self.duplicate_acks = self.duplicate_acks.saturating_add(other.duplicate_acks);
        self.stale_rounds = self.stale_rounds.saturating_add(other.stale_rounds);
        self.wrong_phase = self.wrong_phase.saturating_add(other.wrong_phase);
        self.unsolicited = self.unsolicited.saturating_add(other.unsolicited);
        self.stale_after_exclusion = self
            .stale_after_exclusion
            .saturating_add(other.stale_after_exclusion);
        self.corrupt_frames = self.corrupt_frames.saturating_add(other.corrupt_frames);
        self.misrouted = self.misrouted.saturating_add(other.misrouted);
    }

    /// Iterates the non-zero counters as `(kind, count)` pairs, in
    /// declaration order.
    #[must_use]
    pub fn nonzero(&self) -> Vec<(Anomaly, u64)> {
        [
            (Anomaly::DuplicateBid, self.duplicate_bids),
            (Anomaly::DuplicateAck, self.duplicate_acks),
            (Anomaly::StaleRound, self.stale_rounds),
            (Anomaly::WrongPhase, self.wrong_phase),
            (Anomaly::Unsolicited, self.unsolicited),
            (Anomaly::StaleAfterExclusion, self.stale_after_exclusion),
            (Anomaly::CorruptFrame, self.corrupt_frames),
            (Anomaly::Misrouted, self.misrouted),
        ]
        .into_iter()
        .filter(|(_, c)| *c > 0)
        .collect()
    }
}

/// Replays a trace and checks the protocol's causal invariants.
///
/// `n` is the number of machines the round was opened with. Returns every
/// violation found (empty = clean trace).
#[must_use]
pub fn replay_check(trace: &RoundTrace, n: usize) -> Vec<TraceViolation> {
    let mut violations = Vec::new();
    let mut last_time = f64::NEG_INFINITY;
    let mut requested = vec![false; n];
    let mut bid = vec![false; n];
    let mut assigned = vec![false; n];

    for (idx, entry) in trace.entries.iter().enumerate() {
        if entry.at < last_time {
            violations.push(TraceViolation::TimeRegression(idx));
        }
        last_time = entry.at;
        match (&entry.to, &entry.message) {
            (Endpoint::Node(i), Message::RequestBid { .. }) => {
                if let Some(slot) = requested.get_mut(*i as usize) {
                    *slot = true;
                }
            }
            (Endpoint::Coordinator, Message::Bid { machine, .. }) => {
                let m = *machine as usize;
                if !requested.get(m).copied().unwrap_or(false) {
                    violations.push(TraceViolation::UnsolicitedBid { machine: *machine });
                }
                if bid.get(m).copied().unwrap_or(false) {
                    violations.push(TraceViolation::DuplicateBid { machine: *machine });
                }
                if let Some(slot) = bid.get_mut(m) {
                    *slot = true;
                }
            }
            (Endpoint::Node(i), Message::Assign { .. }) => {
                // Allocation must wait for the full bid picture: every machine
                // has either bid or been excluded (never assigned later). We
                // approximate exclusion as "never bids in the whole trace".
                let all_resolved = (0..n).all(|m| {
                    bid[m]
                        || !trace.entries.iter().any(|e| {
                            matches!(
                                (&e.to, &e.message),
                                (Endpoint::Coordinator, Message::Bid { machine, .. }) if *machine as usize == m
                            )
                        })
                });
                if !all_resolved {
                    violations.push(TraceViolation::PrematureAssign(idx));
                }
                if let Some(slot) = assigned.get_mut(*i as usize) {
                    *slot = true;
                }
            }
            (Endpoint::Node(i), Message::Payment { .. }) => {
                if !assigned.get(*i as usize).copied().unwrap_or(false) {
                    violations.push(TraceViolation::PaymentWithoutAssignment { machine: *i });
                }
            }
            _ => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::RoundId;

    fn clean_trace() -> RoundTrace {
        let r = RoundId(0);
        RoundTrace {
            entries: vec![
                TraceEntry {
                    at: 0.0,
                    from: Endpoint::Coordinator,
                    to: Endpoint::Node(0),
                    message: Message::RequestBid { round: r },
                },
                TraceEntry {
                    at: 0.0,
                    from: Endpoint::Coordinator,
                    to: Endpoint::Node(1),
                    message: Message::RequestBid { round: r },
                },
                TraceEntry {
                    at: 0.1,
                    from: Endpoint::Node(0),
                    to: Endpoint::Coordinator,
                    message: Message::Bid {
                        round: r,
                        machine: 0,
                        value: 1.0,
                    },
                },
                TraceEntry {
                    at: 0.2,
                    from: Endpoint::Node(1),
                    to: Endpoint::Coordinator,
                    message: Message::Bid {
                        round: r,
                        machine: 1,
                        value: 2.0,
                    },
                },
                TraceEntry {
                    at: 0.3,
                    from: Endpoint::Coordinator,
                    to: Endpoint::Node(0),
                    message: Message::Assign {
                        round: r,
                        rate: 2.0,
                    },
                },
                TraceEntry {
                    at: 0.3,
                    from: Endpoint::Coordinator,
                    to: Endpoint::Node(1),
                    message: Message::Assign {
                        round: r,
                        rate: 1.0,
                    },
                },
                TraceEntry {
                    at: 0.4,
                    from: Endpoint::Node(0),
                    to: Endpoint::Coordinator,
                    message: Message::ExecutionDone {
                        round: r,
                        machine: 0,
                    },
                },
                TraceEntry {
                    at: 0.5,
                    from: Endpoint::Node(1),
                    to: Endpoint::Coordinator,
                    message: Message::ExecutionDone {
                        round: r,
                        machine: 1,
                    },
                },
                TraceEntry {
                    at: 0.6,
                    from: Endpoint::Coordinator,
                    to: Endpoint::Node(0),
                    message: Message::Payment {
                        round: r,
                        amount: 3.0,
                    },
                },
                TraceEntry {
                    at: 0.6,
                    from: Endpoint::Coordinator,
                    to: Endpoint::Node(1),
                    message: Message::Payment {
                        round: r,
                        amount: 1.0,
                    },
                },
            ],
        }
    }

    #[test]
    fn clean_trace_replays_without_violations() {
        assert!(replay_check(&clean_trace(), 2).is_empty());
    }

    #[test]
    fn time_regression_is_flagged() {
        let mut t = clean_trace();
        t.entries[3].at = 0.05; // before the previous entry
        let v = replay_check(&t, 2);
        assert!(v.contains(&TraceViolation::TimeRegression(3)), "{v:?}");
    }

    #[test]
    fn unsolicited_and_duplicate_bids_are_flagged() {
        let mut t = clean_trace();
        t.entries.remove(1); // node 1 never got a request
        let v = replay_check(&t, 2);
        assert!(
            v.contains(&TraceViolation::UnsolicitedBid { machine: 1 }),
            "{v:?}"
        );

        let mut t = clean_trace();
        let dup = t.entries[2].clone();
        t.entries.insert(3, dup);
        let v = replay_check(&t, 2);
        assert!(
            v.contains(&TraceViolation::DuplicateBid { machine: 0 }),
            "{v:?}"
        );
    }

    #[test]
    fn premature_assignment_is_flagged() {
        let mut t = clean_trace();
        // Move the first Assign before node 1's bid.
        let assign = t.entries.remove(4);
        t.entries.insert(3, TraceEntry { at: 0.15, ..assign });
        let v = replay_check(&t, 2);
        assert!(
            v.iter()
                .any(|x| matches!(x, TraceViolation::PrematureAssign(_))),
            "{v:?}"
        );
    }

    #[test]
    fn payment_without_assignment_is_flagged() {
        let mut t = clean_trace();
        t.entries
            .retain(|e| !matches!(e.message, Message::Assign { .. }));
        let v = replay_check(&t, 2);
        assert!(
            v.contains(&TraceViolation::PaymentWithoutAssignment { machine: 0 }),
            "{v:?}"
        );
    }

    #[test]
    fn anomaly_stats_record_total_and_merge() {
        let mut a = AnomalyStats::default();
        a.record(Anomaly::DuplicateBid);
        a.record(Anomaly::DuplicateBid);
        a.record(Anomaly::StaleRound);
        assert_eq!(a.duplicate_bids, 2);
        assert_eq!(a.total(), 3);

        let mut b = AnomalyStats::default();
        b.record(Anomaly::CorruptFrame);
        b.record(Anomaly::Misrouted);
        b.record(Anomaly::DuplicateAck);
        b.record(Anomaly::WrongPhase);
        b.record(Anomaly::Unsolicited);
        b.record(Anomaly::StaleAfterExclusion);
        a.merge(&b);
        assert_eq!(a.total(), 9);
        assert_eq!(a.corrupt_frames, 1);
        assert_eq!(a.stale_after_exclusion, 1);
    }

    #[test]
    fn anomaly_stats_merge_with_empty_is_identity() {
        let mut a = AnomalyStats::default();
        for k in [
            Anomaly::DuplicateBid,
            Anomaly::DuplicateAck,
            Anomaly::StaleRound,
            Anomaly::WrongPhase,
            Anomaly::Unsolicited,
            Anomaly::StaleAfterExclusion,
            Anomaly::CorruptFrame,
            Anomaly::Misrouted,
        ] {
            a.record(k);
        }
        let before = a;

        // merging the empty stats changes nothing…
        a.merge(&AnomalyStats::default());
        assert_eq!(a, before);

        // …and merging *into* the empty stats reproduces the original.
        let mut empty = AnomalyStats::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn anomaly_stats_saturate_instead_of_overflowing() {
        let mut a = AnomalyStats {
            duplicate_bids: u64::MAX,
            ..AnomalyStats::default()
        };
        // One more duplicate bid must not wrap the counter.
        a.record(Anomaly::DuplicateBid);
        assert_eq!(a.duplicate_bids, u64::MAX);

        // total() saturates across kinds rather than overflowing the sum.
        a.corrupt_frames = u64::MAX;
        assert_eq!(a.total(), u64::MAX);

        // merge() saturates per counter.
        let mut b = AnomalyStats {
            duplicate_bids: 1,
            misrouted: 7,
            ..AnomalyStats::default()
        };
        b.merge(&a);
        assert_eq!(b.duplicate_bids, u64::MAX);
        assert_eq!(b.misrouted, 7);
    }

    #[test]
    fn anomaly_names_are_stable_and_distinct() {
        let kinds = [
            Anomaly::DuplicateBid,
            Anomaly::DuplicateAck,
            Anomaly::StaleRound,
            Anomaly::WrongPhase,
            Anomaly::Unsolicited,
            Anomaly::StaleAfterExclusion,
            Anomaly::CorruptFrame,
            Anomaly::Misrouted,
        ];
        let names: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
        assert!(names
            .iter()
            .all(|n| n.chars().all(|c| c.is_ascii_lowercase() || c == '_')));
    }

    #[test]
    fn nonzero_lists_only_touched_counters() {
        let mut a = AnomalyStats::default();
        assert!(a.nonzero().is_empty());
        a.record(Anomaly::StaleRound);
        a.record(Anomaly::StaleRound);
        a.record(Anomaly::Misrouted);
        assert_eq!(
            a.nonzero(),
            vec![(Anomaly::StaleRound, 2), (Anomaly::Misrouted, 1)]
        );
    }

    #[test]
    fn traces_roundtrip_through_the_codec() {
        let t = clean_trace();
        let bytes = crate::codec::encode(&t).unwrap();
        let back: RoundTrace = crate::codec::decode(&bytes).unwrap();
        assert_eq!(back, t);
    }
}
