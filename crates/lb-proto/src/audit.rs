//! Distributed payment auditing — the paper's "future work" direction.
//!
//! The paper closes with: *"Future work will address the problem of
//! distributed handling of payments…"*. The key observation making that
//! possible is that the payment function is a **public deterministic
//! function of public data**: the bid vector and the measured execution
//! values. If the coordinator broadcasts that data with the payments
//! (one extra message per node — the round stays `O(n)`), every node can
//! recompute the entire payment vector locally and refuse a settlement that
//! doesn't match. This module implements that audit.

use crate::network::MessageStats;
use lb_mechanism::{MechanismError, VerifiedMechanism};
use serde::{Deserialize, Serialize};

/// The public settlement record the coordinator broadcasts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettlementRecord {
    /// All bids, in machine order.
    pub bids: Vec<f64>,
    /// Measured execution values, in machine order.
    pub estimated_exec_values: Vec<f64>,
    /// Total arrival rate of the round.
    pub total_rate: f64,
    /// The payments the coordinator claims to have made.
    pub claimed_payments: Vec<f64>,
}

/// Result of auditing one settlement.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Per-machine verdict: does the recomputed payment match the claim?
    pub verified: Vec<bool>,
    /// Largest |claimed − recomputed| across machines.
    pub max_discrepancy: f64,
    /// Recomputed payments (what the mechanism actually prescribes).
    pub recomputed: Vec<f64>,
}

impl AuditReport {
    /// Whether every machine's payment checks out within the tolerance used
    /// at audit time.
    #[must_use]
    pub fn all_verified(&self) -> bool {
        self.verified.iter().all(|&v| v)
    }

    /// Indices of machines whose payments were tampered with.
    #[must_use]
    pub fn disputed(&self) -> Vec<usize> {
        self.verified
            .iter()
            .enumerate()
            .filter(|&(_, v)| !v)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Audits a settlement record against the public mechanism: recomputes the
/// allocation and payments from the broadcast data and compares.
///
/// `tolerance` absorbs floating-point differences between the coordinator's
/// and the auditor's computation (they run the same code here, but a real
/// deployment may not).
///
/// # Errors
/// Propagates mechanism errors (e.g. malformed broadcast data).
pub fn audit_settlement<M: VerifiedMechanism + ?Sized>(
    mechanism: &M,
    record: &SettlementRecord,
    tolerance: f64,
) -> Result<AuditReport, MechanismError> {
    if record.claimed_payments.len() != record.bids.len()
        || record.estimated_exec_values.len() != record.bids.len()
    {
        return Err(lb_core::CoreError::LengthMismatch {
            expected: record.bids.len(),
            actual: record
                .claimed_payments
                .len()
                .min(record.estimated_exec_values.len()),
        }
        .into());
    }
    let allocation = mechanism.allocate(&record.bids, record.total_rate)?;
    let recomputed = mechanism.payments(
        &record.bids,
        &allocation,
        &record.estimated_exec_values,
        record.total_rate,
    )?;
    let verified: Vec<bool> = recomputed
        .iter()
        .zip(&record.claimed_payments)
        .map(|(r, c)| (r - c).abs() <= tolerance)
        .collect();
    let max_discrepancy = recomputed
        .iter()
        .zip(&record.claimed_payments)
        .map(|(r, c)| (r - c).abs())
        .fold(0.0, f64::max);
    Ok(AuditReport {
        verified,
        max_discrepancy,
        recomputed,
    })
}

/// Traffic cost of adding the audit broadcast to a settled round: one
/// [`SettlementRecord`] per node.
///
/// # Errors
/// Propagates codec errors.
pub fn audit_broadcast_cost(
    record: &SettlementRecord,
    n: usize,
) -> Result<MessageStats, MechanismError> {
    let bytes = crate::codec::encode(record)
        .map_err(|e| {
            MechanismError::Core(lb_core::CoreError::Infeasible {
                reason: e.to_string(),
            })
        })?
        .len() as u64;
    Ok(MessageStats {
        messages: n as u64,
        bytes: bytes * n as u64,
    })
}

/// [`audit_broadcast_cost`], additionally recording the cost into a
/// telemetry collector as `audit.messages` / `audit.bytes` counters at time
/// `at` — so a session recording can account for the audit broadcast
/// alongside the control-plane traffic it rides on.
///
/// # Errors
/// Propagates codec errors.
pub fn audit_broadcast_cost_observed(
    record: &SettlementRecord,
    n: usize,
    at: f64,
    collector: &dyn lb_telemetry::Collector,
) -> Result<MessageStats, MechanismError> {
    let stats = audit_broadcast_cost(record, n)?;
    collector.counter(
        at,
        "audit.messages",
        lb_telemetry::Subsystem::Coordinator,
        stats.messages,
    );
    collector.counter(
        at,
        "audit.bytes",
        lb_telemetry::Subsystem::Coordinator,
        stats.bytes,
    );
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;
    use crate::runtime::{run_protocol_round, ProtocolConfig};
    use lb_core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
    use lb_mechanism::CompensationBonusMechanism;
    use lb_sim::driver::SimulationConfig;
    use lb_sim::server::ServiceModel;

    fn settled_record() -> SettlementRecord {
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect();
        let config = ProtocolConfig {
            total_rate: PAPER_ARRIVAL_RATE,
            link_latency: 0.001,
            simulation: SimulationConfig {
                horizon: 300.0,
                seed: 3,
                model: ServiceModel::StationaryDeterministic,
                workload: Default::default(),
                warmup: 0.0,
                estimator: lb_sim::estimator::EstimatorConfig::default(),
            },
        };
        let outcome = run_protocol_round(&mech, &specs, &config).unwrap();
        SettlementRecord {
            bids: specs.iter().map(|s| s.bid).collect(),
            estimated_exec_values: outcome.estimated_exec_values.clone(),
            total_rate: PAPER_ARRIVAL_RATE,
            claimed_payments: outcome.payments,
        }
    }

    #[test]
    fn honest_settlement_passes_audit() {
        let record = settled_record();
        let report = audit_settlement(&CompensationBonusMechanism::paper(), &record, 1e-9).unwrap();
        assert!(report.all_verified(), "disputed: {:?}", report.disputed());
        assert!(report.max_discrepancy < 1e-9);
    }

    #[test]
    fn tampered_payment_is_detected_by_exactly_that_machine() {
        let mut record = settled_record();
        record.claimed_payments[4] += 0.5; // coordinator skims machine 4
        let report = audit_settlement(&CompensationBonusMechanism::paper(), &record, 1e-6).unwrap();
        assert!(!report.all_verified());
        assert_eq!(report.disputed(), vec![4]);
        assert!((report.max_discrepancy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tampered_measurements_shift_all_payments() {
        // Forging the broadcast *measurements* instead of the payments is
        // also visible: the claimed payments no longer match the mechanism
        // applied to the forged data.
        let mut record = settled_record();
        record.estimated_exec_values[0] *= 2.0;
        let report = audit_settlement(&CompensationBonusMechanism::paper(), &record, 1e-6).unwrap();
        assert!(!report.all_verified());
        assert!(
            report.disputed().len() > 1,
            "forged data should implicate many payments"
        );
    }

    #[test]
    fn malformed_record_is_rejected() {
        let mut record = settled_record();
        record.claimed_payments.pop();
        assert!(audit_settlement(&CompensationBonusMechanism::paper(), &record, 1e-6).is_err());
    }

    #[test]
    fn audit_broadcast_stays_linear() {
        let record = settled_record();
        let cost16 = audit_broadcast_cost(&record, 16).unwrap();
        let cost32 = audit_broadcast_cost(&record, 32).unwrap();
        assert_eq!(cost16.messages, 16);
        assert_eq!(cost32.bytes, 2 * cost16.bytes);
        // The record serialises compactly: 3 f64 vectors + rate.
        assert!(
            cost16.bytes / 16 < 1024,
            "record too large: {} bytes",
            cost16.bytes / 16
        );
    }

    #[test]
    fn observed_broadcast_cost_matches_the_registry_counters() {
        use lb_telemetry::{MetricsRegistry, RingCollector};
        let record = settled_record();
        let n = record.bids.len();
        let ring = RingCollector::new(16);
        let stats = audit_broadcast_cost_observed(&record, n, 1.5, &ring).unwrap();
        assert_eq!(stats, audit_broadcast_cost(&record, n).unwrap());

        let mut reg = MetricsRegistry::new();
        reg.ingest(&ring.snapshot());
        assert_eq!(reg.counter("audit.messages"), stats.messages);
        assert_eq!(reg.counter("audit.bytes"), stats.bytes);
    }

    #[test]
    fn record_roundtrips_through_the_wire_codec() {
        let record = settled_record();
        let bytes = crate::codec::encode(&record).unwrap();
        let back: SettlementRecord = crate::codec::decode(&bytes).unwrap();
        assert_eq!(back, record);
    }
}
