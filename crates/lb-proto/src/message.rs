//! Protocol message vocabulary.
//!
//! One round of the paper's centralized protocol exchanges, per machine:
//! a bid request, a bid, an allocation, and a payment — `O(n)` messages.
//! Job completions are data-plane traffic observed by the coordinator's
//! monitoring (the verification), not control messages, so they do not enter
//! the message count (matching the paper's `O(n)` figure).

use serde::{Deserialize, Serialize};

/// Identifier of a protocol round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RoundId(pub u64);

/// Messages exchanged between the coordinator (the mechanism) and the nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Coordinator → node: report your latency parameter for this round.
    RequestBid {
        /// Round being negotiated.
        round: RoundId,
    },
    /// Node → coordinator: the declared (possibly untruthful) value.
    Bid {
        /// Round this bid belongs to.
        round: RoundId,
        /// Sender machine index.
        machine: u32,
        /// Declared latency parameter `b_i`.
        value: f64,
    },
    /// Coordinator → node: your assigned job arrival rate for this round.
    Assign {
        /// Round being executed.
        round: RoundId,
        /// Assigned rate `x_i`.
        rate: f64,
    },
    /// Node → coordinator: execution finished (carries no trusted data —
    /// the coordinator has *measured* the node's rate itself).
    ExecutionDone {
        /// Round that finished.
        round: RoundId,
        /// Sender machine index.
        machine: u32,
    },
    /// Coordinator → node: your payment for this round.
    Payment {
        /// Round being settled.
        round: RoundId,
        /// Payment amount (may be negative — a fine).
        amount: f64,
    },
    /// Shard → root: the shard's partial harmonic sum `Σ 1/b_i` over its
    /// respondent bids, carried as the two limbs of a double-double so the
    /// merged total is bit-identical to a single-coordinator round.
    ShardSum {
        /// Round being aggregated.
        round: RoundId,
        /// Shard index (not a machine index).
        shard: u32,
        /// High limb of the partial double-double sum.
        sum_hi: f64,
        /// Low (compensation) limb of the partial double-double sum.
        sum_lo: f64,
    },
    /// Shard → root: verified execution-rate estimates for the shard's
    /// respondents, in ascending machine order within the shard.
    ShardEstimates {
        /// Round being aggregated.
        round: RoundId,
        /// Shard index (not a machine index).
        shard: u32,
        /// Estimated `t̃_i` per respondent, shard-local respondent order.
        estimates: Vec<f64>,
    },
    /// Shard → root: profiling rollup — the shard's per-machine
    /// verification wall-time sketch plus its slowest machine. Emitted
    /// only when a profiler is attached and the round is sampled; counted
    /// exclusively by the profiler's own frame accounting (never
    /// [`crate::network::MessageStats`] or the `net.*` counters), so the
    /// protocol's message statistics are bit-identical with and without
    /// profiling.
    ShardProfile {
        /// Round being profiled.
        round: RoundId,
        /// Shard index (not a machine index).
        shard: u32,
        /// The sketch frame payload.
        profile: lb_prof::WireShardProfile,
    },
}

impl Message {
    /// The round this message belongs to.
    #[must_use]
    pub fn round(&self) -> RoundId {
        match self {
            Self::RequestBid { round }
            | Self::Bid { round, .. }
            | Self::Assign { round, .. }
            | Self::ExecutionDone { round, .. }
            | Self::Payment { round, .. }
            | Self::ShardSum { round, .. }
            | Self::ShardEstimates { round, .. }
            | Self::ShardProfile { round, .. } => *round,
        }
    }

    /// Stable snake_case name of the message variant, used as the telemetry
    /// `kind` field on network events.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Self::RequestBid { .. } => "request_bid",
            Self::Bid { .. } => "bid",
            Self::Assign { .. } => "assign",
            Self::ExecutionDone { .. } => "execution_done",
            Self::Payment { .. } => "payment",
            Self::ShardSum { .. } => "shard_sum",
            Self::ShardEstimates { .. } => "shard_estimates",
            Self::ShardProfile { .. } => "shard_profile",
        }
    }

    /// The sender machine index, for node-originated messages.
    #[must_use]
    pub fn machine(&self) -> Option<u32> {
        match self {
            Self::Bid { machine, .. } | Self::ExecutionDone { machine, .. } => Some(*machine),
            Self::RequestBid { .. }
            | Self::Assign { .. }
            | Self::Payment { .. }
            | Self::ShardSum { .. }
            | Self::ShardEstimates { .. }
            | Self::ShardProfile { .. } => None,
        }
    }

    /// Short label for tracing.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::RequestBid { .. } => "request-bid",
            Self::Bid { .. } => "bid",
            Self::Assign { .. } => "assign",
            Self::ExecutionDone { .. } => "execution-done",
            Self::Payment { .. } => "payment",
            Self::ShardSum { .. } => "shard-sum",
            Self::ShardEstimates { .. } => "shard-estimates",
            Self::ShardProfile { .. } => "shard-profile",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode};

    #[test]
    fn all_messages_roundtrip_through_codec() {
        let msgs = [
            Message::RequestBid { round: RoundId(1) },
            Message::Bid {
                round: RoundId(1),
                machine: 3,
                value: 2.5,
            },
            Message::Assign {
                round: RoundId(1),
                rate: 4.25,
            },
            Message::ExecutionDone {
                round: RoundId(1),
                machine: 3,
            },
            Message::Payment {
                round: RoundId(1),
                amount: -19.4,
            },
            Message::ShardSum {
                round: RoundId(1),
                shard: 2,
                sum_hi: 1.5,
                sum_lo: -1e-18,
            },
            Message::ShardEstimates {
                round: RoundId(1),
                shard: 2,
                estimates: vec![1.0, 2.5, 4.125],
            },
            Message::ShardProfile {
                round: RoundId(1),
                shard: 2,
                profile: lb_prof::WireShardProfile {
                    shard: 2,
                    machines: 3,
                    machine_wall: lb_prof::LatencySketch::from_slice(&[1e-4, 2e-4, 3e-4]).to_wire(),
                    slowest: Some((2, 3e-4)),
                },
            },
        ];
        for m in &msgs {
            let bytes = encode(m).unwrap();
            let back: Message = decode(&bytes).unwrap();
            assert_eq!(&back, m);
        }
    }

    #[test]
    fn round_and_kind_accessors() {
        let m = Message::Payment {
            round: RoundId(7),
            amount: 1.0,
        };
        assert_eq!(m.round(), RoundId(7));
        assert_eq!(m.kind(), "payment");
        assert_eq!(m.machine(), None);
        assert_eq!(
            Message::RequestBid { round: RoundId(0) }.kind(),
            "request-bid"
        );
        let b = Message::Bid {
            round: RoundId(7),
            machine: 4,
            value: 1.0,
        };
        assert_eq!(b.machine(), Some(4));
    }

    #[test]
    fn wire_size_is_compact() {
        let m = Message::Bid {
            round: RoundId(1),
            machine: 3,
            value: 2.5,
        };
        // 4 (variant) + 8 (round) + 4 (machine) + 8 (value) = 24 bytes.
        assert_eq!(encode(&m).unwrap().len(), 24);
    }
}
