//! Length-prefixed stream framing for the wire codec.
//!
//! The in-memory runtimes exchange whole frames; a TCP-style transport
//! delivers *byte streams* with arbitrary fragmentation. [`FrameWriter`]
//! prefixes each encoded message with a `u32` length; [`FrameReader`]
//! reassembles frames from any sequence of partial reads, enforcing a
//! maximum frame size against corrupt or malicious peers.

use crate::codec::{decode, decode_with_context, encode_with_context, CodecError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lb_telemetry::TraceContext;
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Hard upper bound on any frame, reader or writer side (1 MiB — far above
/// any protocol message, small enough to bound memory under corruption). A
/// corrupted or hostile header can announce up to `u32::MAX` (4 GiB); every
/// path compares against this bound *before* buffering or allocating.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Maximum frame size accepted by default (alias of [`MAX_FRAME_LEN`]).
pub const DEFAULT_MAX_FRAME: usize = MAX_FRAME_LEN;

/// Encodes values into length-prefixed frames.
#[derive(Debug, Default)]
pub struct FrameWriter {
    buf: BytesMut,
}

impl FrameWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buf: BytesMut::new(),
        }
    }

    /// Appends one value as a frame.
    ///
    /// # Errors
    /// Propagates codec errors; returns [`CodecError::FrameTooLarge`] for
    /// payloads above [`MAX_FRAME_LEN`] (a peer must never be able to emit a
    /// frame its counterpart is required to reject).
    pub fn write<T: Serialize>(&mut self, value: &T) -> Result<(), CodecError> {
        self.write_with_context(value, None)
    }

    /// Appends one value as a frame, embedding `ctx` as a trace-context
    /// trailer inside the frame payload when present. With `ctx == None`
    /// this is [`FrameWriter::write`] exactly, byte for byte.
    ///
    /// # Errors
    /// Propagates codec errors; returns [`CodecError::FrameTooLarge`] for
    /// payloads above [`MAX_FRAME_LEN`].
    pub fn write_with_context<T: Serialize>(
        &mut self,
        value: &T,
        ctx: Option<&TraceContext>,
    ) -> Result<(), CodecError> {
        let payload = encode_with_context(value, ctx)?;
        let Ok(len) = u32::try_from(payload.len()) else {
            return Err(CodecError::FrameTooLarge {
                len: payload.len() as u64,
                max: MAX_FRAME_LEN as u64,
            });
        };
        if payload.len() > MAX_FRAME_LEN {
            return Err(CodecError::FrameTooLarge {
                len: payload.len() as u64,
                max: MAX_FRAME_LEN as u64,
            });
        }
        self.buf.put_u32_le(len);
        self.buf.put_slice(&payload);
        Ok(())
    }

    /// Takes every byte written so far (the wire stream).
    #[must_use]
    pub fn take(&mut self) -> Bytes {
        self.buf.split().freeze()
    }

    /// Bytes currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the writer holds no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Reassembles length-prefixed frames from arbitrary byte chunks.
#[derive(Debug)]
pub struct FrameReader {
    buf: BytesMut,
    max_frame: usize,
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameReader {
    /// Creates a reader with the default frame-size limit.
    #[must_use]
    pub fn new() -> Self {
        Self::with_max_frame(DEFAULT_MAX_FRAME)
    }

    /// Creates a reader with an explicit frame-size limit. Limits above the
    /// hard bound [`MAX_FRAME_LEN`] are clamped to it.
    ///
    /// # Panics
    /// Panics if `max_frame == 0`.
    #[must_use]
    pub fn with_max_frame(max_frame: usize) -> Self {
        assert!(max_frame > 0, "FrameReader: max_frame must be positive");
        Self {
            buf: BytesMut::new(),
            max_frame: max_frame.min(MAX_FRAME_LEN),
        }
    }

    /// Feeds a chunk of received bytes (any fragmentation).
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.put_slice(chunk);
    }

    /// Pops the next complete frame, if one has fully arrived.
    ///
    /// # Errors
    /// Returns [`CodecError::FrameTooLarge`] when a frame header exceeds the
    /// limit (stream corrupt: no recovery), or decode errors for the payload.
    /// The check runs before any payload is buffered past the header, so a
    /// corrupted header cannot drive an allocation beyond the limit.
    pub fn next_frame<T: DeserializeOwned>(&mut self) -> Result<Option<T>, CodecError> {
        match self.next_payload()? {
            None => Ok(None),
            Some(payload) => decode(&payload).map(Some),
        }
    }

    /// Pops the next complete frame, peeling off its trace-context trailer
    /// if the sender embedded one. Frames written without a trailer (by
    /// [`FrameWriter::write`] or any pre-trailer peer) yield `None` for the
    /// context — the wire format is backward compatible.
    ///
    /// # Errors
    /// Exactly the errors of [`FrameReader::next_frame`].
    pub fn next_frame_with_context<T: DeserializeOwned>(
        &mut self,
    ) -> Result<Option<(T, Option<TraceContext>)>, CodecError> {
        match self.next_payload()? {
            None => Ok(None),
            Some(payload) => decode_with_context(&payload).map(Some),
        }
    }

    /// Shared header logic: pops the next complete frame payload, if one has
    /// fully arrived, enforcing the size limit before buffering past the
    /// header.
    fn next_payload(&mut self) -> Result<Option<BytesMut>, CodecError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > self.max_frame {
            return Err(CodecError::FrameTooLarge {
                len: len as u64,
                max: self.max_frame as u64,
            });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len)))
    }

    /// Bytes buffered but not yet consumed.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, RoundId};
    use lb_stats::rng::{Rng, Xoshiro256StarStar};

    fn sample_messages() -> Vec<Message> {
        (0..20)
            .map(|i| Message::Bid {
                round: RoundId(u64::from(i)),
                machine: i,
                value: f64::from(i) * 0.5 + 0.1,
            })
            .collect()
    }

    #[test]
    fn whole_stream_roundtrip() {
        let msgs = sample_messages();
        let mut w = FrameWriter::new();
        for m in &msgs {
            w.write(m).unwrap();
        }
        let stream = w.take();
        assert!(w.is_empty());

        let mut r = FrameReader::new();
        r.feed(&stream);
        let mut out = Vec::new();
        while let Some(m) = r.next_frame::<Message>().unwrap() {
            out.push(m);
        }
        assert_eq!(out, msgs);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles() {
        let msgs = sample_messages();
        let mut w = FrameWriter::new();
        for m in &msgs {
            w.write(m).unwrap();
        }
        let stream = w.take();

        let mut r = FrameReader::new();
        let mut out = Vec::new();
        for &b in stream.iter() {
            r.feed(&[b]);
            while let Some(m) = r.next_frame::<Message>().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn random_fragmentation_reassembles() {
        let msgs = sample_messages();
        let mut w = FrameWriter::new();
        for m in &msgs {
            w.write(m).unwrap();
        }
        let stream = w.take();

        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let mut r = FrameReader::new();
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let chunk = 1 + rng.next_below(13) as usize;
            let end = (pos + chunk).min(stream.len());
            r.feed(&stream[pos..end]);
            pos = end;
            while let Some(m) = r.next_frame::<Message>().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn oversized_header_is_rejected() {
        let mut r = FrameReader::with_max_frame(16);
        r.feed(&1_000u32.to_le_bytes());
        r.feed(&[0u8; 8]);
        assert!(matches!(
            r.next_frame::<Message>(),
            Err(CodecError::FrameTooLarge { len: 1000, max: 16 })
        ));
    }

    #[test]
    fn corrupted_header_cannot_exceed_hard_bound() {
        // Regression for the `codec` fuzz-oracle class: a hostile header
        // announcing u32::MAX (4 GiB) must be rejected against MAX_FRAME_LEN
        // before any buffering, even on a reader configured with a huge
        // custom limit (which is clamped to the hard bound).
        let mut r = FrameReader::with_max_frame(usize::MAX);
        r.feed(&u32::MAX.to_le_bytes());
        r.feed(&[0u8; 32]);
        match r.next_frame::<Message>() {
            Err(CodecError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u64::from(u32::MAX));
                assert_eq!(max, MAX_FRAME_LEN as u64);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn single_corrupted_length_byte_is_detected() {
        // Flip the high byte of a valid frame's length prefix: the announced
        // length jumps past the limit and the reader reports it as corrupt.
        let mut w = FrameWriter::new();
        w.write(&Message::RequestBid { round: RoundId(7) }).unwrap();
        let mut stream = w.take().to_vec();
        stream[3] ^= 0x80; // now len >= 2^31 > MAX_FRAME_LEN
        let mut r = FrameReader::new();
        r.feed(&stream);
        assert!(matches!(
            r.next_frame::<Message>(),
            Err(CodecError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn incomplete_frame_waits() {
        let mut w = FrameWriter::new();
        w.write(&Message::RequestBid { round: RoundId(1) }).unwrap();
        let stream = w.take();
        let mut r = FrameReader::new();
        r.feed(&stream[..stream.len() - 1]);
        assert!(r.next_frame::<Message>().unwrap().is_none());
        r.feed(&stream[stream.len() - 1..]);
        assert!(r.next_frame::<Message>().unwrap().is_some());
    }

    #[test]
    fn mixed_traced_and_plain_frames_reassemble_with_contexts() {
        // Alternate trailered and plain frames on one stream: the
        // context-aware reader recovers each message with exactly the
        // context its sender attached.
        let msgs = sample_messages();
        let mut w = FrameWriter::new();
        for (i, m) in msgs.iter().enumerate() {
            let ctx = TraceContext::root(11, i as u64, true).with_span(i as u64 + 1);
            let ctx = (i % 2 == 0).then_some(ctx);
            w.write_with_context(m, ctx.as_ref()).unwrap();
        }
        let stream = w.take();

        let mut r = FrameReader::new();
        r.feed(&stream);
        let mut out = Vec::new();
        while let Some(pair) = r.next_frame_with_context::<Message>().unwrap() {
            out.push(pair);
        }
        assert_eq!(out.len(), msgs.len());
        for (i, (m, ctx)) in out.iter().enumerate() {
            assert_eq!(m, &msgs[i]);
            if i % 2 == 0 {
                let expected = TraceContext::root(11, i as u64, true).with_span(i as u64 + 1);
                assert_eq!(*ctx, Some(expected), "frame {i}");
            } else {
                assert_eq!(*ctx, None, "frame {i}");
            }
        }
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn trailer_free_frames_decode_unchanged_by_a_context_aware_reader() {
        // Backward compatibility: a stream written by the pre-trailer writer
        // is byte-identical under `write_with_context(.., None)` and decodes
        // through both readers.
        let msgs = sample_messages();
        let mut plain = FrameWriter::new();
        let mut traced = FrameWriter::new();
        for m in &msgs {
            plain.write(m).unwrap();
            traced.write_with_context(m, None).unwrap();
        }
        let plain_stream = plain.take();
        assert_eq!(plain_stream, traced.take());

        let mut r = FrameReader::new();
        r.feed(&plain_stream);
        let mut out = Vec::new();
        while let Some((m, ctx)) = r.next_frame_with_context::<Message>().unwrap() {
            assert_eq!(ctx, None);
            out.push(m);
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn context_unaware_reader_rejects_trailered_frames() {
        let mut w = FrameWriter::new();
        let ctx = TraceContext::root(1, 0, true);
        w.write_with_context(&Message::RequestBid { round: RoundId(2) }, Some(&ctx))
            .unwrap();
        let mut r = FrameReader::new();
        r.feed(&w.take());
        assert!(matches!(
            r.next_frame::<Message>(),
            Err(CodecError::TrailingBytes(n)) if n == lb_telemetry::TRAILER_LEN
        ));
    }
}
