//! In-memory simulated network with delay and accounting.
//!
//! Every control message is encoded to its wire form before "transmission",
//! so the statistics measure real bytes; delivery is ordered by a
//! deterministic discrete-event queue with per-link latency.

use crate::codec::{decode, encode, CodecError};
use crate::message::Message;
use bytes::Bytes;
use lb_sim::events::EventQueue;
use lb_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Network endpoint address: the coordinator or a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// The mechanism centre.
    Coordinator,
    /// Machine `i`.
    Node(u32),
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Number of control messages sent.
    pub messages: u64,
    /// Total encoded bytes sent.
    pub bytes: u64,
}

/// A delivered frame.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Sender.
    pub from: Endpoint,
    /// Receiver.
    pub to: Endpoint,
    /// Decoded message.
    pub message: Message,
    /// Simulated delivery time.
    pub at: SimTime,
}

struct Frame {
    from: Endpoint,
    to: Endpoint,
    payload: Bytes,
}

/// Deterministic star-topology network between one coordinator and `n` nodes.
pub struct SimNetwork {
    queue: EventQueue<Frame>,
    latency: Box<dyn Fn(Endpoint, Endpoint) -> f64>,
    stats: MessageStats,
    drop_filter: Option<Box<dyn Fn(Endpoint, Endpoint, &Message) -> bool>>,
    dropped: u64,
}

impl std::fmt::Debug for SimNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNetwork")
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SimNetwork {
    /// Creates a network with a constant per-link latency.
    ///
    /// # Panics
    /// Panics if `latency` is negative or non-finite.
    #[must_use]
    pub fn with_constant_latency(latency: f64) -> Self {
        assert!(latency.is_finite() && latency >= 0.0, "SimNetwork: invalid latency");
        Self::with_latency_fn(move |_, _| latency)
    }

    /// Creates a network with an arbitrary per-link latency function.
    #[must_use]
    pub fn with_latency_fn(latency: impl Fn(Endpoint, Endpoint) -> f64 + 'static) -> Self {
        Self {
            queue: EventQueue::new(),
            latency: Box::new(latency),
            stats: MessageStats::default(),
            drop_filter: None,
            dropped: 0,
        }
    }

    /// Installs a fault filter: frames for which it returns `true` are lost
    /// in transit (sent and counted, never delivered).
    pub fn set_drop_filter(
        &mut self,
        filter: impl Fn(Endpoint, Endpoint, &Message) -> bool + 'static,
    ) {
        self.drop_filter = Some(Box::new(filter));
    }

    /// Number of frames lost to the fault filter.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Sends `message` from `from` to `to`, encoding it to wire form.
    ///
    /// # Errors
    /// Propagates codec errors (which indicate a bug in the message types).
    pub fn send(&mut self, from: Endpoint, to: Endpoint, message: &Message) -> Result<(), CodecError> {
        let payload = encode(message)?;
        self.stats.messages += 1;
        self.stats.bytes += payload.len() as u64;
        if let Some(filter) = &self.drop_filter {
            if filter(from, to, message) {
                self.dropped += 1;
                return Ok(());
            }
        }
        let delay = (self.latency)(from, to).max(0.0);
        self.queue.schedule_in(delay, Frame { from, to, payload });
        Ok(())
    }

    /// Delivers the next frame in timestamp order, decoding it.
    ///
    /// # Errors
    /// Propagates codec errors on corrupt frames.
    pub fn deliver_next(&mut self) -> Result<Option<Delivery>, CodecError> {
        match self.queue.pop() {
            None => Ok(None),
            Some((at, frame)) => {
                let message: Message = decode(&frame.payload)?;
                Ok(Some(Delivery { from: frame.from, to: frame.to, message, at }))
            }
        }
    }

    /// Number of in-flight frames.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Traffic statistics so far.
    #[must_use]
    pub fn stats(&self) -> MessageStats {
        self.stats
    }

    /// Current simulated network time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::RoundId;

    #[test]
    fn messages_flow_and_are_counted() {
        let mut net = SimNetwork::with_constant_latency(0.01);
        let m = Message::RequestBid { round: RoundId(1) };
        net.send(Endpoint::Coordinator, Endpoint::Node(0), &m).unwrap();
        net.send(Endpoint::Coordinator, Endpoint::Node(1), &m).unwrap();
        assert_eq!(net.pending(), 2);
        assert_eq!(net.stats().messages, 2);
        assert!(net.stats().bytes > 0);

        let d = net.deliver_next().unwrap().unwrap();
        assert_eq!(d.message, m);
        assert_eq!(d.to, Endpoint::Node(0));
        assert!((d.at.seconds() - 0.01).abs() < 1e-12);
        assert_eq!(net.pending(), 1);
    }

    #[test]
    fn heterogeneous_latency_reorders_delivery() {
        // Node 1's link is faster; its message should arrive first even
        // though it was sent second.
        let mut net = SimNetwork::with_latency_fn(|_, to| match to {
            Endpoint::Node(1) => 0.001,
            _ => 0.1,
        });
        let m = Message::RequestBid { round: RoundId(1) };
        net.send(Endpoint::Coordinator, Endpoint::Node(0), &m).unwrap();
        net.send(Endpoint::Coordinator, Endpoint::Node(1), &m).unwrap();
        let first = net.deliver_next().unwrap().unwrap();
        assert_eq!(first.to, Endpoint::Node(1));
    }

    #[test]
    fn empty_network_delivers_nothing() {
        let mut net = SimNetwork::with_constant_latency(0.0);
        assert!(net.deliver_next().unwrap().is_none());
    }

    #[test]
    #[should_panic(expected = "invalid latency")]
    fn negative_latency_is_rejected() {
        let _ = SimNetwork::with_constant_latency(-1.0);
    }
}
