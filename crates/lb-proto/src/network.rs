//! In-memory simulated network with delay and accounting.
//!
//! Every control message is encoded to its wire form before "transmission",
//! so the statistics measure real bytes; delivery is ordered by a
//! deterministic discrete-event queue with per-link latency.

use crate::codec::{decode_with_context, encode_with_context, CodecError};
use crate::message::Message;
use bytes::Bytes;
use lb_sim::events::EventQueue;
use lb_sim::time::SimTime;
use lb_telemetry::{noop_collector, Collector, Field, Subsystem, TraceContext};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Network endpoint address: the coordinator or a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// The mechanism centre.
    Coordinator,
    /// Machine `i`.
    Node(u32),
}

impl Endpoint {
    /// Human-readable label (`coordinator` / `node3`) for telemetry fields.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Endpoint::Coordinator => "coordinator".to_string(),
            Endpoint::Node(i) => format!("node{i}"),
        }
    }

    /// The machine index, for node endpoints.
    #[must_use]
    pub fn node_index(self) -> Option<u32> {
        match self {
            Endpoint::Coordinator => None,
            Endpoint::Node(i) => Some(i),
        }
    }
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Number of control messages sent.
    pub messages: u64,
    /// Total encoded bytes sent.
    pub bytes: u64,
}

/// A delivered frame.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Sender.
    pub from: Endpoint,
    /// Receiver.
    pub to: Endpoint,
    /// Decoded message.
    pub message: Message,
    /// Simulated delivery time.
    pub at: SimTime,
    /// Trace context carried in the frame's trailer, if the sender attached
    /// one. Rides the wire inside the payload, so it is subject to the same
    /// loss, duplication and corruption as the message itself.
    pub ctx: Option<TraceContext>,
}

/// The fate a chaos injector assigns to a single frame in transit.
///
/// The default fate ([`FrameFate::deliver`]) delivers the frame untouched;
/// an injector can combine loss, duplication, corruption, and jitter on a
/// single frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameFate {
    /// Lose the frame in transit (sent and counted, never delivered).
    pub drop: bool,
    /// Deliver a second copy of the frame.
    pub duplicate: bool,
    /// Mangle the payload; the corruption is always *detected* on receipt
    /// (a CRC-style link model), surfacing as [`NetPoll::Corrupt`].
    pub corrupt: bool,
    /// Extra delay added to the base link latency (clamped at zero).
    pub extra_delay: f64,
    /// Extra delay for the duplicate copy, if any (clamped at zero).
    pub duplicate_extra_delay: f64,
}

impl FrameFate {
    /// A clean delivery: no loss, no duplicate, no corruption, no jitter.
    #[must_use]
    pub fn deliver() -> Self {
        Self {
            drop: false,
            duplicate: false,
            corrupt: false,
            extra_delay: 0.0,
            duplicate_extra_delay: 0.0,
        }
    }
}

impl Default for FrameFate {
    fn default() -> Self {
        Self::deliver()
    }
}

/// Result of polling the network for the next arrival.
#[derive(Debug, Clone)]
pub enum NetPoll {
    /// A frame arrived intact and decoded cleanly.
    Frame(Delivery),
    /// A frame arrived but its payload failed integrity checks; the receiver
    /// discards it (the link model guarantees corruption is detected).
    Corrupt {
        /// Sender of the damaged frame.
        from: Endpoint,
        /// Receiver that detected the damage.
        to: Endpoint,
        /// Simulated arrival time.
        at: SimTime,
    },
}

struct Frame {
    from: Endpoint,
    to: Endpoint,
    payload: Bytes,
    corrupt: bool,
}

/// Deterministic star-topology network between one coordinator and `n` nodes.
pub struct SimNetwork {
    queue: EventQueue<Frame>,
    latency: Box<dyn Fn(Endpoint, Endpoint) -> f64>,
    stats: MessageStats,
    drop_filter: Option<Box<dyn FnMut(Endpoint, Endpoint, &Message) -> bool>>,
    fate_fn: Option<Box<dyn FnMut(Endpoint, Endpoint, &Message) -> FrameFate>>,
    dropped: u64,
    duplicated: u64,
    corrupted: u64,
    collector: Arc<dyn Collector>,
}

impl std::fmt::Debug for SimNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNetwork")
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SimNetwork {
    /// Creates a network with a constant per-link latency.
    ///
    /// # Panics
    /// Panics if `latency` is negative or non-finite.
    #[must_use]
    pub fn with_constant_latency(latency: f64) -> Self {
        assert!(
            latency.is_finite() && latency >= 0.0,
            "SimNetwork: invalid latency"
        );
        Self::with_latency_fn(move |_, _| latency)
    }

    /// Creates a network with an arbitrary per-link latency function.
    #[must_use]
    pub fn with_latency_fn(latency: impl Fn(Endpoint, Endpoint) -> f64 + 'static) -> Self {
        Self {
            queue: EventQueue::new(),
            latency: Box::new(latency),
            stats: MessageStats::default(),
            drop_filter: None,
            fate_fn: None,
            dropped: 0,
            duplicated: 0,
            corrupted: 0,
            collector: noop_collector(),
        }
    }

    /// Attaches a telemetry collector. The network then emits a `net.send`
    /// instant per frame (with its fate), `net.deliver` / `net.corrupt`
    /// instants on receipt, and `net.messages` / `net.bytes` counters, all
    /// timestamped on the network's simulated clock.
    pub fn set_collector(&mut self, collector: Arc<dyn Collector>) {
        self.collector = collector;
    }

    /// Installs a fault filter: frames for which it returns `true` are lost
    /// in transit (sent and counted, never delivered).
    ///
    /// The filter may be stateful (e.g. drop only the first `k` attempts).
    pub fn set_drop_filter(
        &mut self,
        filter: impl FnMut(Endpoint, Endpoint, &Message) -> bool + 'static,
    ) {
        self.drop_filter = Some(Box::new(filter));
    }

    /// Installs a chaos hook deciding the [`FrameFate`] of every frame that
    /// survives the drop filter. The hook is typically a seeded RNG consumer,
    /// so it is `FnMut`.
    pub fn set_fate_fn(
        &mut self,
        fate: impl FnMut(Endpoint, Endpoint, &Message) -> FrameFate + 'static,
    ) {
        self.fate_fn = Some(Box::new(fate));
    }

    /// Number of frames lost in transit (fault filter or chaos drop).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of duplicate copies injected by the chaos hook.
    #[must_use]
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Number of frames delivered with detected corruption.
    #[must_use]
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Emits the `net.send` instant and the message/byte counters for one
    /// frame, tagging the frame's fate (`delivered` / `dropped` /
    /// `corrupted` / `duplicated`).
    fn note_send(
        &self,
        from: Endpoint,
        to: Endpoint,
        message: &Message,
        bytes: usize,
        fate: &'static str,
    ) {
        if !self.collector.enabled() {
            return;
        }
        let at = self.queue.now().seconds();
        let mut fields = vec![
            Field::str("kind", message.kind_name()),
            Field::str("from", from.label()),
            Field::str("to", to.label()),
            Field::u64("bytes", bytes as u64),
            Field::str("fate", fate),
        ];
        // Star topology: the non-coordinator endpoint identifies the link.
        if let Some(node) = to.node_index().or_else(|| from.node_index()) {
            fields.push(Field::u64("node", u64::from(node)));
        }
        self.collector
            .instant(at, "net.send", Subsystem::Network, fields);
        self.collector
            .counter(at, "net.messages", Subsystem::Network, 1);
        self.collector
            .counter(at, "net.bytes", Subsystem::Network, bytes as u64);
    }

    /// Sends `message` from `from` to `to`, encoding it to wire form.
    ///
    /// # Errors
    /// Propagates codec errors (which indicate a bug in the message types).
    pub fn send(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        message: &Message,
    ) -> Result<(), CodecError> {
        self.send_traced(from, to, message, None)
    }

    /// Sends `message` with an optional trace context embedded in the frame
    /// payload as a trailer. With `ctx == None` this is [`SimNetwork::send`]
    /// exactly: the wire bytes, statistics and fault stream are unchanged.
    ///
    /// # Errors
    /// Propagates codec errors (which indicate a bug in the message types).
    pub fn send_traced(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        message: &Message,
        ctx: Option<&TraceContext>,
    ) -> Result<(), CodecError> {
        let payload = encode_with_context(message, ctx)?;
        let size = payload.len();
        self.stats.messages += 1;
        self.stats.bytes += size as u64;
        if let Some(filter) = &mut self.drop_filter {
            if filter(from, to, message) {
                self.dropped += 1;
                self.note_send(from, to, message, size, "dropped");
                return Ok(());
            }
        }
        let fate = match &mut self.fate_fn {
            Some(fate) => fate(from, to, message),
            None => FrameFate::deliver(),
        };
        if fate.drop {
            self.dropped += 1;
            self.note_send(from, to, message, size, "dropped");
            return Ok(());
        }
        let payload = if fate.corrupt {
            self.corrupted += 1;
            let mut damaged = payload.to_vec();
            let mid = damaged.len() / 2;
            damaged[mid] ^= 0x55;
            Bytes::from(damaged)
        } else {
            payload
        };
        self.note_send(
            from,
            to,
            message,
            size,
            match (fate.corrupt, fate.duplicate) {
                (true, _) => "corrupted",
                (false, true) => "duplicated",
                (false, false) => "delivered",
            },
        );
        let base = (self.latency)(from, to).max(0.0);
        let delay = base + fate.extra_delay.max(0.0);
        self.queue.schedule_in(
            delay,
            Frame {
                from,
                to,
                payload: payload.clone(),
                corrupt: fate.corrupt,
            },
        );
        if fate.duplicate {
            self.duplicated += 1;
            let dup_delay = base + fate.duplicate_extra_delay.max(0.0);
            self.queue.schedule_in(
                dup_delay,
                Frame {
                    from,
                    to,
                    payload,
                    corrupt: fate.corrupt,
                },
            );
        }
        Ok(())
    }

    /// Delivers the next frame in timestamp order, decoding it.
    ///
    /// # Errors
    /// Propagates codec errors on corrupt frames. Prefer [`Self::poll`] when
    /// a chaos hook is installed: it reports detected corruption as data
    /// rather than an error.
    pub fn deliver_next(&mut self) -> Result<Option<Delivery>, CodecError> {
        match self.queue.pop() {
            None => Ok(None),
            Some((at, frame)) => {
                if frame.corrupt {
                    return Err(CodecError::Custom(format!(
                        "frame {:?} -> {:?} failed integrity check at {at}",
                        frame.from, frame.to
                    )));
                }
                let (message, ctx): (Message, _) = decode_with_context(&frame.payload)?;
                Ok(Some(Delivery {
                    from: frame.from,
                    to: frame.to,
                    message,
                    at,
                    ctx,
                }))
            }
        }
    }

    /// Delivers the next frame in timestamp order, reporting detected
    /// corruption as [`NetPoll::Corrupt`] instead of an error.
    ///
    /// The link model is CRC-style: corruption injected by the chaos hook is
    /// *always* detected at the receiver and never silently accepted, and any
    /// mangled payload that coincidentally still decodes is rejected by the
    /// integrity flag rather than trusted.
    ///
    /// # Errors
    /// Propagates codec errors on frames that were *not* flagged corrupt
    /// (which indicate a bug in the message types, not injected chaos).
    pub fn poll(&mut self) -> Result<Option<NetPoll>, CodecError> {
        match self.queue.pop() {
            None => Ok(None),
            Some((at, frame)) => {
                if frame.corrupt {
                    self.collector.instant(
                        at.seconds(),
                        "net.corrupt",
                        Subsystem::Network,
                        vec![
                            Field::str("from", frame.from.label()),
                            Field::str("to", frame.to.label()),
                        ],
                    );
                    return Ok(Some(NetPoll::Corrupt {
                        from: frame.from,
                        to: frame.to,
                        at,
                    }));
                }
                let (message, ctx): (Message, _) = decode_with_context(&frame.payload)?;
                self.collector.instant(
                    at.seconds(),
                    "net.deliver",
                    Subsystem::Network,
                    vec![
                        Field::str("kind", message.kind_name()),
                        Field::str("from", frame.from.label()),
                        Field::str("to", frame.to.label()),
                    ],
                );
                Ok(Some(NetPoll::Frame(Delivery {
                    from: frame.from,
                    to: frame.to,
                    message,
                    at,
                    ctx,
                })))
            }
        }
    }

    /// The arrival time of the next in-flight frame, if any.
    #[must_use]
    pub fn next_arrival_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advances the network clock to `time` without delivering a frame, so a
    /// driver can interleave its own timers (e.g. retransmission backoff)
    /// with frame arrivals on one consistent clock.
    ///
    /// # Panics
    /// Panics if `time` is in the past or beyond the next pending arrival.
    pub fn advance_to(&mut self, time: SimTime) {
        self.queue.advance_to(time);
    }

    /// Number of in-flight frames.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Traffic statistics so far.
    #[must_use]
    pub fn stats(&self) -> MessageStats {
        self.stats
    }

    /// Current simulated network time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::RoundId;

    #[test]
    fn messages_flow_and_are_counted() {
        let mut net = SimNetwork::with_constant_latency(0.01);
        let m = Message::RequestBid { round: RoundId(1) };
        net.send(Endpoint::Coordinator, Endpoint::Node(0), &m)
            .unwrap();
        net.send(Endpoint::Coordinator, Endpoint::Node(1), &m)
            .unwrap();
        assert_eq!(net.pending(), 2);
        assert_eq!(net.stats().messages, 2);
        assert!(net.stats().bytes > 0);

        let d = net.deliver_next().unwrap().unwrap();
        assert_eq!(d.message, m);
        assert_eq!(d.to, Endpoint::Node(0));
        assert!((d.at.seconds() - 0.01).abs() < 1e-12);
        assert_eq!(net.pending(), 1);
    }

    #[test]
    fn heterogeneous_latency_reorders_delivery() {
        // Node 1's link is faster; its message should arrive first even
        // though it was sent second.
        let mut net = SimNetwork::with_latency_fn(|_, to| match to {
            Endpoint::Node(1) => 0.001,
            _ => 0.1,
        });
        let m = Message::RequestBid { round: RoundId(1) };
        net.send(Endpoint::Coordinator, Endpoint::Node(0), &m)
            .unwrap();
        net.send(Endpoint::Coordinator, Endpoint::Node(1), &m)
            .unwrap();
        let first = net.deliver_next().unwrap().unwrap();
        assert_eq!(first.to, Endpoint::Node(1));
    }

    #[test]
    fn empty_network_delivers_nothing() {
        let mut net = SimNetwork::with_constant_latency(0.0);
        assert!(net.deliver_next().unwrap().is_none());
    }

    #[test]
    #[should_panic(expected = "invalid latency")]
    fn negative_latency_is_rejected() {
        let _ = SimNetwork::with_constant_latency(-1.0);
    }

    #[test]
    fn fate_drop_loses_the_frame() {
        let mut net = SimNetwork::with_constant_latency(0.01);
        net.set_fate_fn(|_, _, _| FrameFate {
            drop: true,
            ..FrameFate::deliver()
        });
        let m = Message::RequestBid { round: RoundId(1) };
        net.send(Endpoint::Coordinator, Endpoint::Node(0), &m)
            .unwrap();
        assert_eq!(net.pending(), 0);
        assert_eq!(net.dropped(), 1);
        assert_eq!(
            net.stats().messages,
            1,
            "dropped frames still count as sent"
        );
    }

    #[test]
    fn fate_duplicate_delivers_two_copies() {
        let mut net = SimNetwork::with_constant_latency(0.01);
        net.set_fate_fn(|_, _, _| FrameFate {
            duplicate: true,
            duplicate_extra_delay: 0.05,
            ..FrameFate::deliver()
        });
        let m = Message::RequestBid { round: RoundId(1) };
        net.send(Endpoint::Coordinator, Endpoint::Node(0), &m)
            .unwrap();
        assert_eq!(net.pending(), 2);
        assert_eq!(net.duplicated(), 1);
        assert_eq!(
            net.stats().messages,
            1,
            "duplicates are link noise, not protocol messages"
        );
        let first = net.deliver_next().unwrap().unwrap();
        let second = net.deliver_next().unwrap().unwrap();
        assert_eq!(first.message, m);
        assert_eq!(second.message, m);
        assert!(second.at > first.at);
    }

    #[test]
    fn fate_corrupt_is_always_detected() {
        let mut net = SimNetwork::with_constant_latency(0.01);
        net.set_fate_fn(|_, _, _| FrameFate {
            corrupt: true,
            ..FrameFate::deliver()
        });
        let m = Message::RequestBid { round: RoundId(1) };
        net.send(Endpoint::Coordinator, Endpoint::Node(3), &m)
            .unwrap();
        assert_eq!(net.corrupted(), 1);
        match net.poll().unwrap().unwrap() {
            NetPoll::Corrupt { to, .. } => assert_eq!(to, Endpoint::Node(3)),
            NetPoll::Frame(d) => panic!("corrupt frame delivered intact: {d:?}"),
        }
    }

    #[test]
    fn fate_jitter_delays_delivery() {
        let mut net = SimNetwork::with_constant_latency(0.01);
        net.set_fate_fn(|_, _, _| FrameFate {
            extra_delay: 0.1,
            ..FrameFate::deliver()
        });
        let m = Message::RequestBid { round: RoundId(1) };
        net.send(Endpoint::Coordinator, Endpoint::Node(0), &m)
            .unwrap();
        let d = net.deliver_next().unwrap().unwrap();
        assert!((d.at.seconds() - 0.11).abs() < 1e-12);
    }

    #[test]
    fn stateful_drop_filter_can_count_attempts() {
        // Drop only the first attempt per destination; the retry goes through.
        let mut seen = [0u32; 2];
        let mut net = SimNetwork::with_constant_latency(0.01);
        net.set_drop_filter(move |_, to, _| {
            let Endpoint::Node(i) = to else { return false };
            seen[i as usize] += 1;
            seen[i as usize] == 1
        });
        let m = Message::RequestBid { round: RoundId(1) };
        net.send(Endpoint::Coordinator, Endpoint::Node(0), &m)
            .unwrap();
        assert_eq!(net.pending(), 0);
        net.send(Endpoint::Coordinator, Endpoint::Node(0), &m)
            .unwrap();
        assert_eq!(net.pending(), 1);
        assert_eq!(net.dropped(), 1);
    }

    #[test]
    fn telemetry_records_sends_fates_and_deliveries() {
        use lb_telemetry::{MetricsRegistry, RingCollector};
        let ring = Arc::new(RingCollector::new(128));
        let mut net = SimNetwork::with_constant_latency(0.01);
        net.set_collector(ring.clone());
        // First frame to a destination is dropped, others delivered; one
        // frame corrupted.
        let mut first = true;
        net.set_fate_fn(move |_, _, _| {
            if first {
                first = false;
                FrameFate {
                    drop: true,
                    ..FrameFate::deliver()
                }
            } else {
                FrameFate::deliver()
            }
        });
        let m = Message::RequestBid { round: RoundId(1) };
        net.send(Endpoint::Coordinator, Endpoint::Node(0), &m)
            .unwrap();
        net.send(Endpoint::Coordinator, Endpoint::Node(0), &m)
            .unwrap();
        net.send(Endpoint::Coordinator, Endpoint::Node(1), &m)
            .unwrap();
        while let Some(_poll) = net.poll().unwrap() {}

        let mut reg = MetricsRegistry::new();
        reg.ingest(&ring.snapshot());
        assert_eq!(reg.counter("net.messages"), net.stats().messages);
        assert_eq!(reg.counter("net.bytes"), net.stats().bytes);
        assert_eq!(reg.counter("net.fate.dropped"), net.dropped());
        assert_eq!(reg.counter("net.fate.delivered"), 2);
        assert_eq!(reg.counter("net.machine.0"), 2);
        assert_eq!(reg.counter("net.machine.1"), 1);
        let deliveries = ring
            .snapshot()
            .iter()
            .filter(|e| e.name == "net.deliver")
            .count();
        assert_eq!(deliveries, 2);
    }

    #[test]
    fn telemetry_flags_detected_corruption() {
        use lb_telemetry::RingCollector;
        let ring = Arc::new(RingCollector::new(32));
        let mut net = SimNetwork::with_constant_latency(0.01);
        net.set_collector(ring.clone());
        net.set_fate_fn(|_, _, _| FrameFate {
            corrupt: true,
            ..FrameFate::deliver()
        });
        let m = Message::RequestBid { round: RoundId(1) };
        net.send(Endpoint::Coordinator, Endpoint::Node(3), &m)
            .unwrap();
        let _ = net.poll().unwrap().unwrap();
        let events = ring.snapshot();
        assert!(events.iter().any(|e| e.name == "net.corrupt"));
        let send = events.iter().find(|e| e.name == "net.send").unwrap();
        assert_eq!(
            send.field("fate"),
            Some(&lb_telemetry::FieldValue::Str("corrupted".into()))
        );
    }

    #[test]
    fn advance_to_interleaves_timers_with_arrivals() {
        let mut net = SimNetwork::with_constant_latency(0.5);
        let m = Message::RequestBid { round: RoundId(1) };
        net.send(Endpoint::Coordinator, Endpoint::Node(0), &m)
            .unwrap();
        assert_eq!(net.next_arrival_time(), Some(SimTime::new(0.5)));
        net.advance_to(SimTime::new(0.25));
        assert_eq!(net.now(), SimTime::new(0.25));
        let d = net.deliver_next().unwrap().unwrap();
        assert_eq!(d.at, SimTime::new(0.5));
    }

    #[test]
    fn trace_context_rides_the_frame_end_to_end() {
        let mut net = SimNetwork::with_constant_latency(0.01);
        let m = Message::RequestBid { round: RoundId(4) };
        let ctx = TraceContext::root(9, 4, true).with_span(17);
        net.send_traced(Endpoint::Coordinator, Endpoint::Node(0), &m, Some(&ctx))
            .unwrap();
        net.send(Endpoint::Coordinator, Endpoint::Node(1), &m)
            .unwrap();

        let traced = net.deliver_next().unwrap().unwrap();
        assert_eq!(traced.message, m);
        assert_eq!(traced.ctx, Some(ctx));
        let plain = net.deliver_next().unwrap().unwrap();
        assert_eq!(plain.ctx, None, "untraced frames carry no context");
    }

    #[test]
    fn traced_duplicate_copies_both_carry_the_context() {
        let mut net = SimNetwork::with_constant_latency(0.01);
        net.set_fate_fn(|_, _, _| FrameFate {
            duplicate: true,
            duplicate_extra_delay: 0.05,
            ..FrameFate::deliver()
        });
        let m = Message::RequestBid { round: RoundId(4) };
        let ctx = TraceContext::root(9, 4, true);
        net.send_traced(Endpoint::Coordinator, Endpoint::Node(0), &m, Some(&ctx))
            .unwrap();
        let first = net.deliver_next().unwrap().unwrap();
        let second = net.deliver_next().unwrap().unwrap();
        assert_eq!(first.ctx, Some(ctx));
        assert_eq!(second.ctx, Some(ctx), "retransmitted copy keeps the trace");
    }
}
