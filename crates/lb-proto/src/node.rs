//! Node-side behaviour.
//!
//! A node is a machine participating in the protocol. Its *behaviour* is the
//! pair (bid, execution value); strategic reasoning about how to choose them
//! lives in `lb-agents` — the protocol layer only needs the chosen values.

use crate::message::{Message, RoundId};
use serde::{Deserialize, Serialize};

/// Static behaviour specification of one node for one round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// The machine's private true value `t_i`.
    pub true_value: f64,
    /// The bid it will report, `b_i`.
    pub bid: f64,
    /// The execution value it will realise, `t̃_i ≥ t_i`.
    pub exec_value: f64,
}

impl NodeSpec {
    /// A truthful node: bids its true value and executes at full capacity.
    ///
    /// # Panics
    /// Panics unless `true_value` is finite and positive.
    #[must_use]
    pub fn truthful(true_value: f64) -> Self {
        assert!(
            true_value.is_finite() && true_value > 0.0,
            "NodeSpec: invalid true value"
        );
        Self {
            true_value,
            bid: true_value,
            exec_value: true_value,
        }
    }

    /// A strategic node with explicit bid and execution values.
    ///
    /// # Panics
    /// Panics on invalid values or `exec_value < true_value` (machines
    /// cannot run faster than their capacity).
    #[must_use]
    pub fn strategic(true_value: f64, bid: f64, exec_value: f64) -> Self {
        assert!(
            true_value.is_finite() && true_value > 0.0,
            "NodeSpec: invalid true value"
        );
        assert!(bid.is_finite() && bid > 0.0, "NodeSpec: invalid bid");
        assert!(
            exec_value.is_finite() && exec_value >= true_value,
            "NodeSpec: exec value must be >= true value"
        );
        Self {
            true_value,
            bid,
            exec_value,
        }
    }

    /// Whether this node is fully truthful.
    #[must_use]
    pub fn is_truthful(&self) -> bool {
        (self.bid - self.true_value).abs() < 1e-12
            && (self.exec_value - self.true_value).abs() < 1e-12
    }
}

/// Runtime state of a node inside one protocol round.
#[derive(Debug, Clone)]
pub struct NodeAgent {
    /// Machine index.
    pub machine: u32,
    /// Behaviour for this round.
    pub spec: NodeSpec,
    /// Assigned rate, once the coordinator's `Assign` arrives.
    pub assigned_rate: Option<f64>,
    /// Payment received, once `Payment` arrives.
    pub payment: Option<f64>,
}

impl NodeAgent {
    /// Creates a node agent.
    #[must_use]
    pub fn new(machine: u32, spec: NodeSpec) -> Self {
        Self {
            machine,
            spec,
            assigned_rate: None,
            payment: None,
        }
    }

    /// Handles an incoming coordinator message, possibly producing a reply.
    ///
    /// # Panics
    /// Panics if the coordinator sends a node-originated message (protocol
    /// violation — indicates a routing bug, not recoverable state).
    pub fn handle(&mut self, message: &Message) -> Option<Message> {
        match *message {
            Message::RequestBid { round } => Some(Message::Bid {
                round,
                machine: self.machine,
                value: self.spec.bid,
            }),
            Message::Assign { round, rate } => {
                self.assigned_rate = Some(rate);
                // Execution itself is simulated by the coordinator's
                // measurement plane; the node just acknowledges completion.
                Some(Message::ExecutionDone {
                    round,
                    machine: self.machine,
                })
            }
            Message::Payment { amount, .. } => {
                // First write wins: a settle fan-out can reach the node more
                // than once (chaos duplication, or a recovered coordinator
                // re-sending from its durable ledger), and the duplicate
                // must not re-apply — the ledger already holds exactly one
                // payment per round.
                if self.payment.is_none() {
                    self.payment = Some(amount);
                }
                None
            }
            Message::Bid { .. }
            | Message::ExecutionDone { .. }
            | Message::ShardSum { .. }
            | Message::ShardEstimates { .. }
            | Message::ShardProfile { .. } => {
                panic!(
                    "node {} received node-originated or shard-control message",
                    self.machine
                )
            }
        }
    }

    /// The node's realised utility for a finished round: payment plus its
    /// valuation under the given model.
    #[must_use]
    pub fn utility(&self, model: lb_mechanism::traits::ValuationModel) -> Option<f64> {
        let p = self.payment?;
        let x = self.assigned_rate?;
        Some(p + model.valuation(x, self.spec.exec_value))
    }

    /// Resets per-round state, keeping the behaviour.
    pub fn reset(&mut self) {
        self.assigned_rate = None;
        self.payment = None;
    }
}

/// Convenience: the round id both sides agree on for a fresh protocol run.
#[must_use]
pub fn first_round() -> RoundId {
    RoundId(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_mechanism::traits::ValuationModel;

    #[test]
    fn truthful_spec() {
        let s = NodeSpec::truthful(2.0);
        assert!(s.is_truthful());
        assert_eq!(s.bid, 2.0);
        assert_eq!(s.exec_value, 2.0);
    }

    #[test]
    fn strategic_spec_validation() {
        let s = NodeSpec::strategic(1.0, 3.0, 2.0);
        assert!(!s.is_truthful());
        assert_eq!(s.bid, 3.0);
    }

    #[test]
    #[should_panic(expected = "exec value must be >= true value")]
    fn exec_below_truth_panics() {
        let _ = NodeSpec::strategic(2.0, 2.0, 1.0);
    }

    #[test]
    fn node_replies_to_protocol_messages() {
        let mut node = NodeAgent::new(3, NodeSpec::truthful(2.0));
        let round = RoundId(5);
        let bid = node.handle(&Message::RequestBid { round }).unwrap();
        assert_eq!(
            bid,
            Message::Bid {
                round,
                machine: 3,
                value: 2.0
            }
        );

        let done = node.handle(&Message::Assign { round, rate: 1.5 }).unwrap();
        assert_eq!(done, Message::ExecutionDone { round, machine: 3 });
        assert_eq!(node.assigned_rate, Some(1.5));

        assert!(node
            .handle(&Message::Payment { round, amount: 7.0 })
            .is_none());
        assert_eq!(node.payment, Some(7.0));

        let u = node.utility(ValuationModel::PerJobLatency).unwrap();
        assert!((u - (7.0 - 2.0 * 1.5)).abs() < 1e-12);
    }

    #[test]
    fn utility_is_none_before_settlement() {
        let node = NodeAgent::new(0, NodeSpec::truthful(1.0));
        assert!(node.utility(ValuationModel::PerJobLatency).is_none());
    }

    #[test]
    fn reset_clears_round_state() {
        let mut node = NodeAgent::new(0, NodeSpec::truthful(1.0));
        node.handle(&Message::Assign {
            round: RoundId(0),
            rate: 1.0,
        });
        node.handle(&Message::Payment {
            round: RoundId(0),
            amount: 1.0,
        });
        node.reset();
        assert!(node.assigned_rate.is_none());
        assert!(node.payment.is_none());
    }

    #[test]
    #[should_panic(expected = "node-originated")]
    fn routing_violation_panics() {
        let mut node = NodeAgent::new(0, NodeSpec::truthful(1.0));
        node.handle(&Message::Bid {
            round: RoundId(0),
            machine: 1,
            value: 1.0,
        });
    }
}
