//! Write-ahead round journal: the durability substrate for crash recovery.
//!
//! The coordinator appends a [`JournalRecord`] at every state transition that
//! must survive process death, and calls [`Journal::commit`] at the three
//! commit points (allocation, payments, seal). After a crash the journal is
//! the *only* source of truth: `recovery::recover_round` replays the records
//! to rebuild the coordinator mid-round.
//!
//! # Record framing
//!
//! The journal is a flat byte stream of length-prefixed, checksummed records:
//!
//! ```text
//! record := len:u32-le  crc:u32-le  payload[len]
//! ```
//!
//! where `payload` is the record encoded with the crate's wire codec and
//! `crc` is the CRC-32 (IEEE) of `payload`. A crash can tear the final
//! record at any byte; on replay the torn tail is detected (incomplete
//! header, incomplete payload, or checksum mismatch) and discarded, never
//! misparsed. A record whose checksum verifies but whose payload does not
//! decode is *not* a torn write — it is hard corruption and surfaces as
//! [`JournalError::CorruptRecord`].
//!
//! # Backends
//!
//! * [`MemJournal`] — an in-memory byte buffer; commit is a watermark.
//! * [`FileJournal`] — an append-only file; commit is `fsync` (`sync_data`).
//!   Opening an existing file truncates any torn tail before appending.
//! * [`CrashingJournal`] — a fault-injection wrapper that kills the journal
//!   at a configured byte offset, tearing the in-flight record mid-write,
//!   exactly as a crashed process would.

use crate::codec::{decode, encode, CodecError};
use crate::message::RoundId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Why a machine was excluded from the current round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExclusionReason {
    /// Excluded up front by the session health policy (quarantine).
    Quarantine,
    /// Excluded by the coordinator after failing to bid before the deadline.
    Timeout,
}

/// One durable event in the life of a protocol round.
///
/// Records are written in protocol order; `RoundOpened` is always first in a
/// round's block and `RoundSealed` (if the round completed and its payment
/// fan-out was sent) is always last.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A round began with `n` machines competing for `total_rate`.
    RoundOpened {
        /// Round identifier.
        round: RoundId,
        /// Number of machines in the round (including excluded ones).
        n: u32,
        /// Total rate `R` being allocated.
        total_rate: f64,
    },
    /// A bid was accepted from `machine`.
    BidAccepted {
        /// Bidding machine.
        machine: u32,
        /// Bid value `b_i`.
        value: f64,
    },
    /// `machine` was excluded from the round.
    ExclusionDecided {
        /// Excluded machine.
        machine: u32,
        /// Why it was excluded.
        reason: ExclusionReason,
    },
    /// The allocation (and execution estimates) were computed and are about
    /// to be fanned out. Commit point: `Assign` frames may only be sent
    /// after this record is durable.
    AllocationCommitted {
        /// Allocated rates, full width (zeros for excluded machines).
        rates: Vec<f64>,
        /// Estimated execution values, full width.
        estimated_exec: Vec<f64>,
    },
    /// `machine` acknowledged execution completion.
    ExecutionObserved {
        /// Acknowledging machine.
        machine: u32,
    },
    /// Payments were computed. Commit point: the settle fan-out may only be
    /// sent after this record is durable — on replay payments are read from
    /// here, never recomputed, which is what makes settle exactly-once.
    PaymentsCommitted {
        /// Payments, full width (zeros for excluded machines).
        payments: Vec<f64>,
    },
    /// The payment fan-out was handed to the network; the round is finished
    /// and will never emit again.
    RoundSealed,
    /// Tamper-evidence seal: the [`LedgerChain`] head computed over every
    /// framed journal byte written before this record. Appended by
    /// `Coordinator::seal` immediately before [`JournalRecord::RoundSealed`];
    /// an auditor replaying the journal recomputes the chain and compares —
    /// see `lb_audit::verify_ledger`. Kept at the end of the enum so journals
    /// written before this variant existed still decode.
    LedgerSealed {
        /// Chain head digest at the moment of sealing.
        digest: u64,
    },
}

/// Errors from journal backends and replay.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O operation on a [`FileJournal`] failed.
    Io {
        /// What the journal was doing.
        context: &'static str,
        /// The underlying error message.
        message: String,
    },
    /// A [`CrashingJournal`] hit its configured crash point. The process
    /// holding the journal is considered dead; call
    /// [`CrashingJournal::revive`] to simulate a restart.
    Crashed {
        /// Byte offset at which the journal died.
        at_byte: u64,
    },
    /// A record failed to encode or decode through the wire codec.
    Codec(CodecError),
    /// A record's checksum verified but its payload did not decode: the
    /// journal is corrupt in a way a torn write cannot explain.
    CorruptRecord {
        /// Byte offset of the corrupt record's header.
        offset: usize,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { context, message } => write!(f, "journal io ({context}): {message}"),
            Self::Crashed { at_byte } => write!(f, "journal crashed at byte {at_byte}"),
            Self::Codec(e) => write!(f, "journal codec error: {e}"),
            Self::CorruptRecord { offset } => {
                write!(f, "journal record at byte {offset} is corrupt")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<CodecError> for JournalError {
    fn from(e: CodecError) -> Self {
        Self::Codec(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Bitwise, std-only; journal
/// records are small enough that a lookup table buys nothing.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Upper bound on a single record's payload; a length prefix beyond this is
/// treated as garbage (torn tail), bounding allocation during replay.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// FNV-1a over `bytes`, 64-bit.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// SplitMix64 finaliser: a full-avalanche 64-bit mix.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Tamper-evident hash chain over the journal's framed record bytes.
///
/// Each framed record (header + checksum + payload, exactly as it sits on
/// disk) is folded into a running 64-bit head:
///
/// ```text
/// head' = mix64(head ^ fnv1a64(frame) ^ frame.len())
/// ```
///
/// so the head after record `k` commits to every byte of records `0..=k`
/// *and their order*. `Coordinator::seal` writes the current head into a
/// [`JournalRecord::LedgerSealed`] record (which is itself then absorbed, so
/// the chain stays continuous across rounds and process generations), and
/// `lb_audit::verify_ledger` replays the chain to localise the first
/// divergent record.
///
/// This is an FNV/SplitMix construction, **not** a cryptographic hash: it
/// makes accidental corruption and casual tampering evident (any byte flip,
/// record drop, reorder or splice changes the head with full avalanche), but
/// an adversary who can rewrite the whole journal can recompute the seals.
/// External trust therefore comes from exporting the head digest out-of-band
/// — the `/health` endpoint publishes it live precisely so a scrape archive
/// pins the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerChain {
    head: u64,
}

impl LedgerChain {
    /// Chain seed ("lbmv ldg 1" as a number): the head of the empty journal.
    pub const SEED: u64 = 0x6c62_6d76_6c64_6731;

    /// A chain positioned at the start of an empty journal.
    #[must_use]
    pub fn new() -> Self {
        Self { head: Self::SEED }
    }

    /// A chain resumed from a previously exported `head` — lets a long-lived
    /// session carry the chain across rounds without re-reading the whole
    /// journal.
    #[must_use]
    pub fn with_head(head: u64) -> Self {
        Self { head }
    }

    /// Folds one framed record (as produced by [`encode_record`]) into the
    /// chain.
    pub fn absorb_frame(&mut self, frame: &[u8]) {
        self.head = mix64(self.head ^ fnv1a64(frame) ^ frame.len() as u64);
    }

    /// The current chain head.
    #[must_use]
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Rebuilds the chain over every intact framed record in `bytes`
    /// (torn tail excluded), e.g. after reopening a journal.
    #[must_use]
    pub fn replay(bytes: &[u8]) -> Self {
        let mut chain = Self::new();
        let mut at = 0usize;
        while let Some((range, next)) = next_record(bytes, at) {
            chain.absorb_frame(&bytes[range.start - 8..range.end]);
            at = next;
        }
        chain
    }
}

impl Default for LedgerChain {
    fn default() -> Self {
        Self::new()
    }
}

/// Encodes one record into its framed byte representation.
///
/// # Errors
/// Returns [`JournalError::Codec`] if the record fails to encode (cannot
/// happen for well-formed records; kept fallible for symmetry).
pub fn encode_record(record: &JournalRecord) -> Result<Vec<u8>, JournalError> {
    let payload = encode(record)?;
    let mut framed = Vec::with_capacity(8 + payload.len());
    framed.extend_from_slice(
        &u32::try_from(payload.len())
            .map_err(|_| JournalError::Codec(CodecError::LengthOverflow(payload.len() as u64)))?
            .to_le_bytes(),
    );
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    Ok(framed)
}

/// The result of replaying a journal byte stream.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalReplay {
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// Length of the valid prefix in bytes; everything past it is torn tail.
    pub valid_len: usize,
    /// Bytes of torn tail discarded (a partial final record, or garbage
    /// after the last checksummed record).
    pub truncated_tail: usize,
}

impl JournalReplay {
    /// Byte offset of the end of each record boundary, starting with 0 (the
    /// empty prefix). Useful for crash-point enumeration: truncating the
    /// journal at any of these offsets yields a clean (untorn) prefix.
    #[must_use]
    pub fn boundaries(bytes: &[u8]) -> Vec<usize> {
        let mut offsets = vec![0];
        let mut at = 0usize;
        while let Some((_, next)) = next_record(bytes, at) {
            offsets.push(next);
            at = next;
        }
        offsets
    }
}

/// Parses the record starting at `at`, returning `(payload_range, next)` if
/// the header, payload, and checksum are all intact.
fn next_record(bytes: &[u8], at: usize) -> Option<(std::ops::Range<usize>, usize)> {
    let header = bytes.get(at..at + 8)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return None;
    }
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let start = at + 8;
    let end = start.checked_add(len as usize)?;
    let payload = bytes.get(start..end)?;
    if crc32(payload) != crc {
        return None;
    }
    Some((start..end, end))
}

/// Replays a journal byte stream into its records.
///
/// The valid prefix is parsed record by record; the first incomplete or
/// checksum-failing record ends the stream and everything from there on is
/// reported as torn tail. This is the write-ahead-log convention: a crash
/// can only tear the *final* record, so any checksum failure marks the
/// durable frontier.
///
/// # Errors
/// Returns [`JournalError::CorruptRecord`] if a record's checksum verifies
/// but its payload fails to decode — corruption no torn write can produce.
pub fn read_journal(bytes: &[u8]) -> Result<JournalReplay, JournalError> {
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some((range, next)) = next_record(bytes, at) {
        let record: JournalRecord =
            decode(&bytes[range]).map_err(|_| JournalError::CorruptRecord { offset: at })?;
        records.push(record);
        at = next;
    }
    Ok(JournalReplay {
        records,
        valid_len: at,
        truncated_tail: bytes.len() - at,
    })
}

/// An append-only, checksummed record log.
///
/// `append` stages a record; `commit` makes everything appended so far
/// durable. Backends differ only in where bytes live and what "durable"
/// means.
pub trait Journal {
    /// Appends one framed record.
    ///
    /// # Errors
    /// Backend-specific write failures, or [`JournalError::Crashed`] from a
    /// fault-injecting backend.
    fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError>;

    /// Makes all appended records durable (fsync for file backends).
    ///
    /// # Errors
    /// Backend-specific sync failures.
    fn commit(&mut self) -> Result<(), JournalError>;

    /// A snapshot of the journal's current byte content, including any
    /// uncommitted tail.
    ///
    /// # Errors
    /// Backend-specific read failures.
    fn bytes(&self) -> Result<Vec<u8>, JournalError>;
}

/// In-memory journal backend. `commit` advances a watermark so tests can
/// distinguish durable bytes from staged ones.
#[derive(Debug, Clone, Default)]
pub struct MemJournal {
    buf: Vec<u8>,
    committed: usize,
}

impl MemJournal {
    /// An empty in-memory journal.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A journal pre-loaded with `bytes` (e.g. a recorded round, possibly
    /// truncated), all considered committed.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        let committed = bytes.len();
        Self {
            buf: bytes,
            committed,
        }
    }

    /// Bytes made durable by `commit` so far.
    #[must_use]
    pub fn committed_len(&self) -> usize {
        self.committed
    }
}

impl Journal for MemJournal {
    fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        self.buf.extend_from_slice(&encode_record(record)?);
        Ok(())
    }

    fn commit(&mut self) -> Result<(), JournalError> {
        self.committed = self.buf.len();
        Ok(())
    }

    fn bytes(&self) -> Result<Vec<u8>, JournalError> {
        Ok(self.buf.clone())
    }
}

fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> JournalError {
    move |e| JournalError::Io {
        context,
        message: e.to_string(),
    }
}

/// File-backed journal. Appends buffer in the OS page cache; `commit` calls
/// `sync_data`, so a record is durable exactly when the commit point that
/// follows it returns.
#[derive(Debug)]
pub struct FileJournal {
    file: File,
    path: PathBuf,
}

impl FileJournal {
    /// Creates a fresh journal file, truncating any existing content.
    ///
    /// # Errors
    /// Returns [`JournalError::Io`] if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(io_err("create"))?;
        Ok(Self { file, path })
    }

    /// Opens an existing journal file, replays it, truncates any torn tail
    /// left by a crash, and positions for appending. Returns the journal and
    /// the replay of its intact records.
    ///
    /// # Errors
    /// Returns [`JournalError::Io`] on file errors and
    /// [`JournalError::CorruptRecord`] on non-torn corruption.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, JournalReplay), JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(io_err("open"))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err("read"))?;
        let replay = read_journal(&bytes)?;
        if replay.truncated_tail > 0 {
            file.set_len(replay.valid_len as u64)
                .map_err(io_err("truncate torn tail"))?;
            file.sync_data().map_err(io_err("sync after truncate"))?;
        }
        file.seek(SeekFrom::End(0)).map_err(io_err("seek"))?;
        Ok((Self { file, path }, replay))
    }

    /// The path this journal writes to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Journal for FileJournal {
    fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        self.file
            .write_all(&encode_record(record)?)
            .map_err(io_err("append"))
    }

    fn commit(&mut self) -> Result<(), JournalError> {
        self.file.sync_data().map_err(io_err("fsync"))
    }

    fn bytes(&self) -> Result<Vec<u8>, JournalError> {
        let mut file = File::open(&self.path).map_err(io_err("reopen"))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err("read"))?;
        Ok(bytes)
    }
}

/// Fault-injecting journal backend for crash tests and the `recovery` fuzz
/// oracle.
///
/// Wraps a [`MemJournal`] and dies at configured absolute byte offsets: an
/// append that would carry the journal past the next pending crash offset
/// writes only the bytes up to that offset — a torn record, exactly what a
/// process killed mid-`write` leaves behind — and every subsequent operation
/// fails with [`JournalError::Crashed`] until [`CrashingJournal::revive`]
/// simulates a restart by discarding the torn tail.
#[derive(Debug, Clone, Default)]
pub struct CrashingJournal {
    inner: MemJournal,
    /// Pending crash offsets, ascending; the front one is armed.
    crash_offsets: Vec<u64>,
    crashed: bool,
}

impl CrashingJournal {
    /// A journal that never crashes.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A journal pre-loaded with `bytes` that crashes when its length would
    /// exceed each offset in `crash_offsets` (absolute, in bytes).
    #[must_use]
    pub fn with_crashes(bytes: Vec<u8>, mut crash_offsets: Vec<u64>) -> Self {
        crash_offsets.sort_unstable();
        let len = bytes.len() as u64;
        crash_offsets.retain(|&o| o >= len);
        Self {
            inner: MemJournal::from_bytes(bytes),
            crash_offsets,
            crashed: false,
        }
    }

    /// Whether the journal is currently dead.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Simulates a process restart: discards the torn tail (if any), clears
    /// the crashed flag, and returns the replay of the surviving records.
    ///
    /// # Errors
    /// Returns [`JournalError::CorruptRecord`] on non-torn corruption.
    pub fn revive(&mut self) -> Result<JournalReplay, JournalError> {
        let replay = read_journal(&self.inner.buf)?;
        self.inner.buf.truncate(replay.valid_len);
        self.inner.committed = self.inner.committed.min(replay.valid_len);
        self.crashed = false;
        Ok(replay)
    }
}

impl Journal for CrashingJournal {
    fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        if self.crashed {
            return Err(JournalError::Crashed {
                at_byte: self.inner.buf.len() as u64,
            });
        }
        let framed = encode_record(record)?;
        let end = self.inner.buf.len() as u64 + framed.len() as u64;
        if let Some(&at) = self.crash_offsets.first() {
            if end > at {
                // Torn write: only the bytes before the crash point land.
                let keep = (at as usize).saturating_sub(self.inner.buf.len());
                self.inner.buf.extend_from_slice(&framed[..keep]);
                self.crash_offsets.remove(0);
                self.crashed = true;
                return Err(JournalError::Crashed { at_byte: at });
            }
        }
        self.inner.buf.extend_from_slice(&framed);
        Ok(())
    }

    fn commit(&mut self) -> Result<(), JournalError> {
        if self.crashed {
            return Err(JournalError::Crashed {
                at_byte: self.inner.buf.len() as u64,
            });
        }
        self.inner.commit()
    }

    fn bytes(&self) -> Result<Vec<u8>, JournalError> {
        self.inner.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::RoundOpened {
                round: RoundId(7),
                n: 3,
                total_rate: 10.0,
            },
            JournalRecord::ExclusionDecided {
                machine: 2,
                reason: ExclusionReason::Quarantine,
            },
            JournalRecord::BidAccepted {
                machine: 0,
                value: 1.5,
            },
            JournalRecord::BidAccepted {
                machine: 1,
                value: 2.5,
            },
            JournalRecord::AllocationCommitted {
                rates: vec![6.0, 4.0, 0.0],
                estimated_exec: vec![1.5, 2.5, 0.0],
            },
            JournalRecord::ExecutionObserved { machine: 0 },
            JournalRecord::ExecutionObserved { machine: 1 },
            JournalRecord::PaymentsCommitted {
                payments: vec![-3.0, -2.0, 0.0],
            },
            JournalRecord::LedgerSealed {
                digest: 0x0123_4567_89ab_cdef,
            },
            JournalRecord::RoundSealed,
        ]
    }

    fn journal_bytes(records: &[JournalRecord]) -> Vec<u8> {
        let mut j = MemJournal::new();
        for r in records {
            j.append(r).unwrap();
        }
        j.bytes().unwrap()
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/IEEE of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let records = sample_records();
        let bytes = journal_bytes(&records);
        let replay = read_journal(&bytes).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.valid_len, bytes.len());
        assert_eq!(replay.truncated_tail, 0);
    }

    #[test]
    fn every_truncation_point_is_torn_tail_never_misparse() {
        let records = sample_records();
        let bytes = journal_bytes(&records);
        let boundaries = JournalReplay::boundaries(&bytes);
        assert_eq!(boundaries.len(), records.len() + 1);
        for cut in 0..=bytes.len() {
            let replay = read_journal(&bytes[..cut]).unwrap();
            // The replayed prefix must be an exact prefix of the records.
            assert_eq!(
                replay.records.as_slice(),
                &records[..replay.records.len()],
                "cut at {cut}"
            );
            // At a record boundary nothing is torn; in between, the torn
            // tail is exactly the partial record.
            if boundaries.contains(&cut) {
                assert_eq!(replay.truncated_tail, 0, "cut at {cut}");
            } else {
                assert!(replay.truncated_tail > 0, "cut at {cut}");
            }
            assert_eq!(replay.valid_len + replay.truncated_tail, cut);
        }
    }

    #[test]
    fn bit_flip_in_payload_ends_the_stream() {
        let bytes = journal_bytes(&sample_records());
        let boundaries = JournalReplay::boundaries(&bytes);
        // Flip a byte inside the third record's payload.
        let mut corrupt = bytes.clone();
        let offset = boundaries[2] + 8; // past len+crc header
        corrupt[offset] ^= 0xFF;
        let replay = read_journal(&corrupt).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.valid_len, boundaries[2]);
    }

    #[test]
    fn absurd_length_prefix_is_torn_tail() {
        let mut bytes = journal_bytes(&sample_records()[..2]);
        let good = bytes.len();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        let replay = read_journal(&bytes).unwrap();
        assert_eq!(replay.valid_len, good);
        assert_eq!(replay.truncated_tail, 16);
    }

    #[test]
    fn crc_valid_undecodable_payload_is_hard_corruption() {
        // A payload that passes the checksum but holds an invalid enum
        // variant index: not producible by a torn write.
        let payload = 99u32.to_le_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match read_journal(&bytes) {
            Err(JournalError::CorruptRecord { offset: 0 }) => {}
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
    }

    #[test]
    fn mem_journal_commit_watermark() {
        let mut j = MemJournal::new();
        j.append(&JournalRecord::RoundSealed).unwrap();
        assert_eq!(j.committed_len(), 0);
        j.commit().unwrap();
        assert_eq!(j.committed_len(), j.bytes().unwrap().len());
    }

    #[test]
    fn file_journal_roundtrip_and_torn_tail_truncation() {
        let path = std::env::temp_dir().join(format!(
            "lb-journal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let records = sample_records();
        {
            let mut j = FileJournal::create(&path).unwrap();
            for r in &records {
                j.append(r).unwrap();
            }
            j.commit().unwrap();
        }
        // Tear the tail mid-record, as a crash would.
        let bytes = std::fs::read(&path).unwrap();
        let boundaries = JournalReplay::boundaries(&bytes);
        let cut = boundaries[boundaries.len() - 2] + 3;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let (mut j, replay) = FileJournal::open(&path).unwrap();
        assert_eq!(replay.records.as_slice(), &records[..records.len() - 1]);
        assert_eq!(replay.truncated_tail, 3);
        // The torn tail is physically gone and appends continue cleanly.
        j.append(&JournalRecord::RoundSealed).unwrap();
        j.commit().unwrap();
        let replay2 = read_journal(&j.bytes().unwrap()).unwrap();
        assert_eq!(replay2.records, records);
        assert_eq!(replay2.truncated_tail, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crashing_journal_tears_midwrite_and_revives() {
        let records = sample_records();
        let clean = journal_bytes(&records);
        let boundaries = JournalReplay::boundaries(&clean);
        // Crash 3 bytes into the AllocationCommitted record.
        let crash_at = boundaries[4] as u64 + 3;
        let mut j = CrashingJournal::with_crashes(Vec::new(), vec![crash_at]);
        let mut failed_at = None;
        for (i, r) in records.iter().enumerate() {
            match j.append(r) {
                Ok(()) => {}
                Err(JournalError::Crashed { at_byte }) => {
                    assert_eq!(at_byte, crash_at);
                    failed_at = Some(i);
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(failed_at, Some(4));
        assert!(j.is_crashed());
        // Dead until revived.
        assert!(matches!(j.commit(), Err(JournalError::Crashed { .. })));
        let replay = j.revive().unwrap();
        assert_eq!(replay.records.as_slice(), &records[..4]);
        assert_eq!(replay.truncated_tail, 3);
        // After revival the journal accepts the rest of the round.
        for r in &records[4..] {
            j.append(r).unwrap();
        }
        j.commit().unwrap();
        assert_eq!(read_journal(&j.bytes().unwrap()).unwrap().records, records);
    }

    #[test]
    fn ledger_chain_replay_matches_incremental_absorption() {
        let records = sample_records();
        let mut incremental = LedgerChain::new();
        let mut bytes = Vec::new();
        for r in &records {
            let frame = encode_record(r).unwrap();
            incremental.absorb_frame(&frame);
            bytes.extend_from_slice(&frame);
        }
        assert_eq!(LedgerChain::replay(&bytes).head(), incremental.head());
        assert_ne!(incremental.head(), LedgerChain::SEED);
        // Resume from an exported head: same terminal state.
        let mid = LedgerChain::replay(&journal_bytes(&records[..4]));
        let mut resumed = LedgerChain::with_head(mid.head());
        let tail = journal_bytes(&records);
        let boundaries = JournalReplay::boundaries(&tail);
        let mut at = boundaries[4];
        for &next in &boundaries[5..] {
            resumed.absorb_frame(&tail[at..next]);
            at = next;
        }
        assert_eq!(resumed.head(), incremental.head());
    }

    #[test]
    fn ledger_chain_sees_any_tamper() {
        let records = sample_records();
        let bytes = journal_bytes(&records);
        let clean = LedgerChain::replay(&bytes).head();
        let boundaries = JournalReplay::boundaries(&bytes);

        // A payload byte flip with a recomputed checksum — invisible to the
        // CRC framing — still diverges the chain.
        let mut forged = bytes.clone();
        let (start, end) = (boundaries[7], boundaries[8]);
        forged[start + 8] ^= 0x01;
        let crc = crc32(&forged[start + 8..end]).to_le_bytes();
        forged[start + 4..start + 8].copy_from_slice(&crc);
        assert_eq!(read_journal(&forged).unwrap().records.len(), records.len());
        assert_ne!(LedgerChain::replay(&forged).head(), clean);

        // Dropping a whole record diverges too.
        let mut dropped = bytes[..boundaries[2]].to_vec();
        dropped.extend_from_slice(&bytes[boundaries[3]..]);
        assert_ne!(LedgerChain::replay(&dropped).head(), clean);

        // Reordering two adjacent records diverges (order is committed).
        let mut swapped = bytes[..boundaries[2]].to_vec();
        swapped.extend_from_slice(&bytes[boundaries[3]..boundaries[4]]);
        swapped.extend_from_slice(&bytes[boundaries[2]..boundaries[3]]);
        swapped.extend_from_slice(&bytes[boundaries[4]..]);
        assert_ne!(LedgerChain::replay(&swapped).head(), clean);
    }

    #[test]
    fn crash_exactly_at_boundary_is_clean() {
        let records = sample_records();
        let clean = journal_bytes(&records);
        let boundaries = JournalReplay::boundaries(&clean);
        let crash_at = boundaries[2] as u64;
        let mut j = CrashingJournal::with_crashes(Vec::new(), vec![crash_at]);
        let mut wrote = 0;
        for r in &records {
            if j.append(r).is_err() {
                break;
            }
            wrote += 1;
        }
        assert_eq!(wrote, 2);
        let replay = j.revive().unwrap();
        assert_eq!(replay.truncated_tail, 0);
        assert_eq!(replay.records.as_slice(), &records[..2]);
    }
}
