//! Fault-tolerant protocol runtime: lost messages, silent machines,
//! coordinator timeouts.
//!
//! The paper's protocol implicitly assumes a reliable network; a deployable
//! version cannot. This runtime drives the same round as
//! [`crate::runtime::run_protocol_round`] over a lossy [`SimNetwork`] and
//! applies two timeout rules when the network drains without progress:
//!
//! * **Bid timeout** — machines whose bids never arrived are *excluded*:
//!   the round proceeds over the respondents (the excluded machine receives
//!   no jobs and no payment, which is exactly the `L_{-i}` counterfactual
//!   its bonus is measured against, so incentives are unaffected).
//! * **Completion timeout** — settlement does not wait for lost completion
//!   acknowledgements: payments derive from the coordinator's *own*
//!   measurements, the acks are liveness signals only.

use crate::coordinator::{Coordinator, CoordinatorPhase, ProtocolError};
use crate::message::{Message, RoundId};
use crate::network::{Endpoint, SimNetwork};
use crate::node::{NodeAgent, NodeSpec};
use crate::runtime::{ProtocolConfig, ProtocolOutcome};
use lb_mechanism::{MechanismError, VerifiedMechanism};

/// Declarative fault plan for one round.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Machines whose `Bid` messages are lost in transit — every attempt,
    /// so under a retrying runtime these machines exhaust their retries and
    /// are excluded.
    pub lose_bids_from: Vec<u32>,
    /// Machines whose `ExecutionDone` acknowledgements are lost.
    pub lose_acks_from: Vec<u32>,
    /// Machines that never receive any coordinator message (full partition).
    pub partitioned: Vec<u32>,
    /// `(machine, k)` pairs: only the machine's first `k` bid transmissions
    /// are lost. Under [`run_protocol_round_with_faults`] (which never
    /// retries) any `k >= 1` behaves like `lose_bids_from`; under the chaos
    /// runtime a retransmission gets through once `k` attempts have failed,
    /// demonstrating retry-then-include.
    pub lose_bid_attempts: Vec<(u32, u32)>,
}

impl FaultPlan {
    /// A plan with no faults (the runtime then matches the reliable one).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    fn drops(&self, from: Endpoint, to: Endpoint, message: &Message) -> bool {
        match (from, to, message) {
            (Endpoint::Node(i), _, Message::Bid { .. }) if self.lose_bids_from.contains(&i) => true,
            (Endpoint::Node(i), _, Message::ExecutionDone { .. })
                if self.lose_acks_from.contains(&i) =>
            {
                true
            }
            (_, Endpoint::Node(i), _) if self.partitioned.contains(&i) => true,
            (Endpoint::Node(i), _, _) if self.partitioned.contains(&i) => true,
            _ => false,
        }
    }

    /// Like `drops`, additionally counting bid transmissions per machine in
    /// `bid_attempts` so `lose_bid_attempts` can lose only the first `k`.
    pub(crate) fn drops_counted(
        &self,
        from: Endpoint,
        to: Endpoint,
        message: &Message,
        bid_attempts: &mut [u32],
    ) -> bool {
        if let (Endpoint::Node(i), Message::Bid { .. }) = (from, message) {
            let attempt = match bid_attempts.get_mut(i as usize) {
                Some(count) => {
                    *count += 1;
                    *count
                }
                None => 1,
            };
            if self
                .lose_bid_attempts
                .iter()
                .any(|&(m, k)| m == i && attempt <= k)
            {
                return true;
            }
        }
        self.drops(from, to, message)
    }
}

/// Runs one protocol round over a lossy network with timeout handling.
///
/// Returns the full-width outcome: excluded machines have rate 0, payment 0
/// and utility 0.
///
/// # Errors
/// Propagates mechanism errors — notably [`MechanismError::NeedTwoAgents`]
/// when fewer than two machines' bids survive.
///
/// # Panics
/// Panics if `specs` is empty or on internal protocol violations.
pub fn run_protocol_round_with_faults<M: VerifiedMechanism>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
    faults: &FaultPlan,
) -> Result<ProtocolOutcome, MechanismError> {
    assert!(
        !specs.is_empty(),
        "run_protocol_round_with_faults: need at least one node"
    );
    let n = specs.len();
    let round = RoundId(0);
    let codec_err = |e: crate::codec::CodecError| {
        MechanismError::Core(lb_core::CoreError::Infeasible {
            reason: e.to_string(),
        })
    };

    let mut nodes: Vec<NodeAgent> = specs
        .iter()
        .enumerate()
        .map(|(i, &spec)| NodeAgent::new(u32::try_from(i).expect("fits u32"), spec))
        .collect();
    let actual_exec: Vec<f64> = specs.iter().map(|s| s.exec_value).collect();

    // Strict: the drop filter only *loses* frames, so every frame that does
    // arrive is still protocol-conformant.
    let mut coordinator =
        Coordinator::new(mechanism, n, config.total_rate, round, config.simulation)
            .with_strict(true);
    let mut network = SimNetwork::with_constant_latency(config.link_latency);
    {
        let plan = faults.clone();
        let mut bid_attempts = vec![0u32; n];
        network
            .set_drop_filter(move |from, to, m| plan.drops_counted(from, to, m, &mut bid_attempts));
    }

    for (i, msg) in coordinator.open().into_iter().enumerate() {
        network
            .send(
                Endpoint::Coordinator,
                Endpoint::Node(u32::try_from(i).expect("fits u32")),
                &msg,
            )
            .map_err(codec_err)?;
    }

    // Drive until done, applying timeouts whenever the network drains.
    loop {
        match network.deliver_next().map_err(codec_err)? {
            Some(delivery) => match delivery.to {
                Endpoint::Node(i) => {
                    if let Some(reply) = nodes[i as usize].handle(&delivery.message) {
                        network
                            .send(Endpoint::Node(i), Endpoint::Coordinator, &reply)
                            .map_err(codec_err)?;
                    }
                }
                Endpoint::Coordinator => {
                    let outgoing = coordinator
                        .handle(&delivery.message, &actual_exec)
                        .map_err(ProtocolError::into_mechanism)?;
                    for (i, msg) in outgoing {
                        network
                            .send(Endpoint::Coordinator, Endpoint::Node(i), &msg)
                            .map_err(codec_err)?;
                    }
                }
            },
            None => match coordinator.phase() {
                CoordinatorPhase::Done => break,
                CoordinatorPhase::CollectingBids => {
                    // Bid timeout fired.
                    let outgoing = coordinator
                        .close_bidding(&actual_exec)
                        .map_err(ProtocolError::into_mechanism)?;
                    for (i, msg) in outgoing {
                        network
                            .send(Endpoint::Coordinator, Endpoint::Node(i), &msg)
                            .map_err(codec_err)?;
                    }
                }
                CoordinatorPhase::Executing => {
                    // Completion timeout fired.
                    let outgoing = coordinator
                        .close_execution()
                        .map_err(ProtocolError::into_mechanism)?;
                    for (i, msg) in outgoing {
                        network
                            .send(Endpoint::Coordinator, Endpoint::Node(i), &msg)
                            .map_err(codec_err)?;
                    }
                }
                CoordinatorPhase::Settling => unreachable!("settling is instantaneous"),
            },
        }
    }

    let payments = coordinator.payments().expect("settled").to_vec();
    let estimated = coordinator
        .estimated_exec_values()
        .expect("verified")
        .to_vec();
    let allocation = coordinator.allocation().expect("allocated");

    let rates: Vec<f64> = (0..n).map(|i| allocation.rate(i)).collect();
    let utilities: Vec<f64> = (0..n)
        .map(|i| {
            // Node-side accounting where settlement reached the node; the
            // coordinator's ledger elsewhere (excluded/partitioned machines
            // served no jobs, so their valuation is 0 and utility equals the
            // ledger payment, i.e. 0).
            nodes[i]
                .utility(mechanism.valuation_model())
                .unwrap_or(if rates[i] == 0.0 {
                    payments[i]
                } else {
                    payments[i] + mechanism.valuation(rates[i], specs[i].exec_value)
                })
        })
        .collect();

    Ok(ProtocolOutcome {
        rates,
        payments,
        utilities,
        estimated_exec_values: estimated,
        stats: network.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_protocol_round;
    use lb_core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
    use lb_mechanism::{run_mechanism, CompensationBonusMechanism, Profile};
    use lb_sim::driver::SimulationConfig;
    use lb_sim::server::ServiceModel;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            total_rate: PAPER_ARRIVAL_RATE,
            link_latency: 0.001,
            simulation: SimulationConfig {
                horizon: 300.0,
                seed: 3,
                model: ServiceModel::StationaryDeterministic,
                workload: Default::default(),
                warmup: 0.0,
                estimator: lb_sim::estimator::EstimatorConfig::default(),
            },
        }
    }

    fn truthful_specs() -> Vec<NodeSpec> {
        paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect()
    }

    #[test]
    fn no_faults_matches_reliable_runtime() {
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let reliable = run_protocol_round(&mech, &specs, &config()).unwrap();
        let faulty =
            run_protocol_round_with_faults(&mech, &specs, &config(), &FaultPlan::none()).unwrap();
        assert_eq!(reliable.payments, faulty.payments);
        assert_eq!(reliable.stats, faulty.stats);
    }

    #[test]
    fn lost_bid_excludes_the_machine_and_round_completes() {
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let faults = FaultPlan {
            lose_bids_from: vec![0],
            ..FaultPlan::none()
        };
        let outcome = run_protocol_round_with_faults(&mech, &specs, &config(), &faults).unwrap();

        assert_eq!(outcome.rates[0], 0.0);
        assert_eq!(outcome.payments[0], 0.0);
        assert_eq!(outcome.utilities[0], 0.0);

        // The surviving machines are settled exactly as the 15-machine
        // system C2..C16 (the L_{-C1} world).
        let trues = paper_true_values();
        let sub_sys = lb_core::System::from_true_values(&trues[1..]).unwrap();
        let sub = run_mechanism(
            &mech,
            &Profile::truthful(&sub_sys, PAPER_ARRIVAL_RATE).unwrap(),
        )
        .unwrap();
        for j in 1..16 {
            assert!(
                (outcome.payments[j] - sub.payments[j - 1]).abs() < 1e-6,
                "machine {j}: {} vs {}",
                outcome.payments[j],
                sub.payments[j - 1]
            );
        }
    }

    #[test]
    fn lost_ack_does_not_change_payments() {
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let clean = run_protocol_round(&mech, &specs, &config()).unwrap();
        let faults = FaultPlan {
            lose_acks_from: vec![3, 7],
            ..FaultPlan::none()
        };
        let outcome = run_protocol_round_with_faults(&mech, &specs, &config(), &faults).unwrap();
        for i in 0..16 {
            assert!(
                (clean.payments[i] - outcome.payments[i]).abs() < 1e-9,
                "payment {i}"
            );
        }
    }

    #[test]
    fn partitioned_machine_is_fully_excluded() {
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let faults = FaultPlan {
            partitioned: vec![5],
            ..FaultPlan::none()
        };
        let outcome = run_protocol_round_with_faults(&mech, &specs, &config(), &faults).unwrap();
        assert_eq!(outcome.rates[5], 0.0);
        assert_eq!(outcome.payments[5], 0.0);
        // Load conservation still holds over the survivors.
        let total: f64 = outcome.rates.iter().sum();
        assert!((total - PAPER_ARRIVAL_RATE).abs() < 1e-9);
    }

    #[test]
    fn too_many_lost_bids_is_a_clean_error() {
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = vec![NodeSpec::truthful(1.0), NodeSpec::truthful(2.0)];
        let faults = FaultPlan {
            lose_bids_from: vec![0],
            ..FaultPlan::none()
        };
        assert!(matches!(
            run_protocol_round_with_faults(&mech, &specs, &config(), &faults),
            Err(MechanismError::NeedTwoAgents)
        ));
    }

    #[test]
    fn first_attempt_loss_excludes_without_retransmission() {
        // The declarative runtime never retries, so losing just the first
        // bid attempt is as fatal as losing them all.
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let faults = FaultPlan {
            lose_bid_attempts: vec![(0, 1)],
            ..FaultPlan::none()
        };
        let outcome = run_protocol_round_with_faults(&mech, &specs, &config(), &faults).unwrap();
        assert_eq!(outcome.rates[0], 0.0);
        assert_eq!(outcome.payments[0], 0.0);
    }

    #[test]
    fn lazy_machine_is_still_penalized_under_faults() {
        // A lossy network must not launder a lazy machine's behaviour.
        let mech = CompensationBonusMechanism::paper();
        let mut specs = truthful_specs();
        specs[1] = NodeSpec::strategic(1.0, 1.0, 2.0);
        let faults = FaultPlan {
            lose_acks_from: vec![1],
            ..FaultPlan::none()
        };
        let outcome = run_protocol_round_with_faults(&mech, &specs, &config(), &faults).unwrap();

        let honest = run_protocol_round(&mech, &truthful_specs(), &config()).unwrap();
        assert!(outcome.payments[1] < honest.payments[1] - 1e-6);
    }
}
