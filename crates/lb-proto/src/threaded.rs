//! Threaded protocol runtime: real concurrency, identical outcomes.
//!
//! The same round as [`crate::runtime::run_protocol_round`], but each node
//! runs on its own OS thread and talks to the coordinator over crossbeam
//! channels carrying *encoded* frames. The coordinator serialises message
//! handling (its state machine is sequential by design), so the outcome is
//! bit-identical to the deterministic runtime — asserted by tests — while
//! the transport is genuinely concurrent.

use crate::codec::{decode, encode, CodecError};
use crate::coordinator::{Coordinator, CoordinatorPhase};
use crate::message::{Message, RoundId};
use crate::network::MessageStats;
use crate::node::{NodeAgent, NodeSpec};
use crate::runtime::{ProtocolConfig, ProtocolOutcome};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use lb_mechanism::{MechanismError, VerifiedMechanism};
use lb_telemetry::{noop_collector, Collector, Subsystem};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

fn codec_err(e: CodecError) -> MechanismError {
    MechanismError::Core(lb_core::CoreError::Infeasible {
        reason: e.to_string(),
    })
}

fn chan_err(context: &str) -> MechanismError {
    MechanismError::Core(lb_core::CoreError::Infeasible {
        reason: format!("protocol channel closed: {context}"),
    })
}

/// Runs one protocol round with every node on its own thread.
///
/// # Errors
/// Propagates mechanism/simulation/codec errors. A codec failure on any
/// thread (or a channel closed by an early error) surfaces as an `Err`; the
/// worker threads shut down cleanly in every error path rather than
/// panicking or deadlocking.
///
/// # Panics
/// Panics if `specs` is empty, or if a worker thread panics.
pub fn run_protocol_round_threaded<M: VerifiedMechanism + Sync>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
) -> Result<ProtocolOutcome, MechanismError> {
    run_protocol_round_threaded_observed(mechanism, specs, config, noop_collector())
}

/// [`run_protocol_round_threaded`] with a telemetry collector attached.
///
/// Unlike the deterministic runtimes there is no simulated clock here, so
/// events are timestamped with *wall-clock seconds since the round started*
/// (a monotonic [`Instant`] offset). Node threads bump the `net.messages` /
/// `net.bytes` counters concurrently — which is exactly why [`Collector`]
/// implementations must be thread-safe — while the coordinator's phase spans
/// come from its own sequential state machine, so the recording still
/// replays cleanly.
///
/// # Errors
/// Propagates the same errors as [`run_protocol_round_threaded`].
///
/// # Panics
/// Panics if `specs` is empty, or if a worker thread panics.
pub fn run_protocol_round_threaded_observed<M: VerifiedMechanism + Sync>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
    collector: Arc<dyn Collector>,
) -> Result<ProtocolOutcome, MechanismError> {
    assert!(
        !specs.is_empty(),
        "run_protocol_round_threaded: need at least one node"
    );
    let n = specs.len();
    let round = RoundId(0);
    let actual_exec: Vec<f64> = specs.iter().map(|s| s.exec_value).collect();
    let epoch = Instant::now();

    let stats = Mutex::new(MessageStats::default());
    let count = |stats: &Mutex<MessageStats>, payload: &Bytes| {
        let mut s = stats.lock();
        s.messages += 1;
        s.bytes += payload.len() as u64;
        drop(s);
        if collector.enabled() {
            let at = epoch.elapsed().as_secs_f64();
            collector.counter(at, "net.messages", Subsystem::Network, 1);
            collector.counter(at, "net.bytes", Subsystem::Network, payload.len() as u64);
        }
    };

    let finished_nodes: Mutex<Vec<Option<NodeAgent>>> = Mutex::new((0..n).map(|_| None).collect());

    let result: Result<(Vec<f64>, MessageStats), MechanismError> =
        crossbeam::thread::scope(|scope| {
            // Channels: coordinator -> node i, and a shared node ->
            // coordinator lane carrying `Result` so a worker can report a
            // corrupt frame instead of panicking. Created *inside* the scope
            // so an early `?` return drops every sender, unblocking worker
            // `recv`s and letting the scope join instead of deadlocking.
            type NodeFrame = (u32, Result<Bytes, CodecError>);
            let (to_coord_tx, to_coord_rx): (Sender<NodeFrame>, Receiver<NodeFrame>) = unbounded();
            let mut to_node_txs: Vec<Sender<Option<Bytes>>> = Vec::with_capacity(n);
            let mut node_rxs: Vec<Receiver<Option<Bytes>>> = Vec::with_capacity(n);
            for _ in 0..n {
                let (tx, rx) = unbounded();
                to_node_txs.push(tx);
                node_rxs.push(rx);
            }

            // Node threads: decode incoming frames, reply through the shared lane.
            for (i, rx) in node_rxs.into_iter().enumerate() {
                let to_coord = to_coord_tx.clone();
                let spec = specs[i];
                let stats = &stats;
                let finished = &finished_nodes;
                scope.spawn(move |_| {
                    let machine = u32::try_from(i).expect("fits u32");
                    let mut agent = NodeAgent::new(machine, spec);
                    while let Ok(Some(frame)) = rx.recv() {
                        let message: Message = match decode(&frame) {
                            Ok(m) => m,
                            Err(e) => {
                                // Report the corrupt frame; the coordinator
                                // turns it into a round error.
                                let _ = to_coord.send((machine, Err(e)));
                                break;
                            }
                        };
                        if let Some(reply) = agent.handle(&message) {
                            match encode(&reply) {
                                Ok(payload) => {
                                    count(stats, &payload);
                                    if to_coord.send((machine, Ok(payload))).is_err() {
                                        // Coordinator dropped the lane (early
                                        // error return): shut down quietly.
                                        break;
                                    }
                                }
                                Err(e) => {
                                    let _ = to_coord.send((machine, Err(e)));
                                    break;
                                }
                            }
                        }
                    }
                    finished.lock()[i] = Some(agent);
                });
            }
            drop(to_coord_tx);

            // Coordinator: sequential state machine over the shared lane.
            // Strict — the channel transport never corrupts or reorders
            // per-sender, so a protocol violation here is a bug.
            let mut coordinator =
                Coordinator::new(mechanism, n, config.total_rate, round, config.simulation)
                    .with_strict(true)
                    .with_collector(Arc::clone(&collector));
            let drive = (|| -> Result<(), MechanismError> {
                coordinator.set_now(epoch.elapsed().as_secs_f64());
                for (i, msg) in coordinator.open().into_iter().enumerate() {
                    let payload = encode(&msg).map_err(codec_err)?;
                    count(&stats, &payload);
                    to_node_txs[i]
                        .send(Some(payload))
                        .map_err(|_| chan_err("node hung up"))?;
                }

                while coordinator.phase() != CoordinatorPhase::Done {
                    let (_, frame) = to_coord_rx
                        .recv()
                        .map_err(|_| chan_err("all nodes hung up"))?;
                    let frame = frame.map_err(codec_err)?;
                    let message: Message = decode(&frame).map_err(codec_err)?;
                    coordinator.set_now(epoch.elapsed().as_secs_f64());
                    let outgoing = coordinator.handle(&message, &actual_exec)?;
                    for (i, msg) in outgoing {
                        let payload = encode(&msg).map_err(codec_err)?;
                        count(&stats, &payload);
                        to_node_txs[i as usize]
                            .send(Some(payload))
                            .map_err(|_| chan_err("node hung up"))?;
                    }
                }
                Ok(())
            })();
            if let Err(e) = drive {
                // Close any open spans before the early return drops the
                // senders, so a partial recording still replays cleanly.
                coordinator.end_telemetry();
                return Err(e);
            }

            // Close node channels so threads exit and park their agents.
            for tx in &to_node_txs {
                let _ = tx.send(None);
            }
            // Drain any straggler frames (none expected, but don't deadlock).
            while to_coord_rx.try_recv().is_ok() {}

            let payments = coordinator.payments().expect("settled").to_vec();
            let estimated = coordinator
                .estimated_exec_values()
                .expect("verified")
                .to_vec();
            let _ = estimated;
            Ok((payments, *stats.lock()))
        })
        .expect("protocol thread panicked");

    let (payments, stats) = result?;
    let nodes = finished_nodes.into_inner();
    let model = mechanism.valuation_model();
    let mut rates = Vec::with_capacity(n);
    let mut utilities = Vec::with_capacity(n);
    let mut estimated = vec![0.0; n];
    for (i, slot) in nodes.into_iter().enumerate() {
        let agent = slot.expect("node thread finished");
        rates.push(agent.assigned_rate.expect("assigned"));
        utilities.push(agent.utility(model).expect("settled"));
        let _ = i;
    }
    // Re-derive the estimates deterministically (same simulation seed) for
    // the outcome record: the coordinator's copy was consumed inside the
    // scope, and the simulation is a pure function of (bids, exec, config).
    let bids: Vec<f64> = specs.iter().map(|s| s.bid).collect();
    if let Ok(report) =
        lb_sim::driver::simulate_round(&bids, &actual_exec, config.total_rate, &config.simulation)
    {
        estimated = report.estimated_exec_values;
    }

    Ok(ProtocolOutcome {
        rates,
        payments,
        utilities,
        estimated_exec_values: estimated,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_protocol_round;
    use lb_core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
    use lb_mechanism::CompensationBonusMechanism;
    use lb_sim::driver::SimulationConfig;
    use lb_sim::server::ServiceModel;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            total_rate: PAPER_ARRIVAL_RATE,
            link_latency: 0.001,
            simulation: SimulationConfig {
                horizon: 300.0,
                seed: 3,
                model: ServiceModel::StationaryDeterministic,
                workload: Default::default(),
                warmup: 0.0,
                estimator: lb_sim::estimator::EstimatorConfig::default(),
            },
        }
    }

    #[test]
    fn threaded_outcome_equals_deterministic_outcome() {
        let mech = CompensationBonusMechanism::paper();
        let trues = paper_true_values();
        let mut specs: Vec<NodeSpec> = trues.iter().map(|&t| NodeSpec::truthful(t)).collect();
        specs[0] = NodeSpec::strategic(1.0, 3.0, 3.0); // paper's High1 for spice

        let st = run_protocol_round(&mech, &specs, &config()).unwrap();
        let mt = run_protocol_round_threaded(&mech, &specs, &config()).unwrap();

        assert_eq!(st.rates.len(), mt.rates.len());
        for i in 0..specs.len() {
            assert!((st.rates[i] - mt.rates[i]).abs() < 1e-12, "rate {i}");
            assert!(
                (st.payments[i] - mt.payments[i]).abs() < 1e-9,
                "payment {i}"
            );
            assert!(
                (st.utilities[i] - mt.utilities[i]).abs() < 1e-9,
                "utility {i}"
            );
            assert!(
                (st.estimated_exec_values[i] - mt.estimated_exec_values[i]).abs() < 1e-12,
                "estimate {i}"
            );
        }
        // Same control-plane traffic.
        assert_eq!(st.stats, mt.stats);
    }

    #[test]
    fn mechanism_error_shuts_down_workers_cleanly() {
        // An invalid total rate makes allocation fail once the last bid is
        // in. The error must surface as `Err` — not a panic, and not a
        // deadlock waiting on worker threads.
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = vec![NodeSpec::truthful(1.0), NodeSpec::truthful(2.0)];
        let mut cfg = config();
        cfg.total_rate = -1.0;
        assert!(run_protocol_round_threaded(&mech, &specs, &cfg).is_err());
    }

    #[test]
    fn observed_threaded_round_records_replayable_spans() {
        use lb_telemetry::{replay_spans, MetricsRegistry, RingCollector};
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect();
        let ring = Arc::new(RingCollector::new(16_384));
        let outcome =
            run_protocol_round_threaded_observed(&mech, &specs, &config(), ring.clone()).unwrap();

        // Node threads recorded counters concurrently; the coordinator's
        // sequential spans still replay cleanly around them.
        let events = ring.snapshot();
        let spans = replay_spans(&events).expect("recording replays cleanly");
        assert_eq!(spans.iter().filter(|s| s.name == "round").count(), 1);
        assert!(spans.iter().any(|s| s.name == "phase.settle"));

        let mut reg = MetricsRegistry::new();
        reg.ingest(&events);
        assert_eq!(reg.counter("net.messages"), outcome.stats.messages);
        assert_eq!(reg.counter("net.bytes"), outcome.stats.bytes);
    }

    #[test]
    fn threaded_round_is_repeatable() {
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect();
        let a = run_protocol_round_threaded(&mech, &specs, &config()).unwrap();
        let b = run_protocol_round_threaded(&mech, &specs, &config()).unwrap();
        assert_eq!(a.payments, b.payments);
        assert_eq!(a.stats, b.stats);
    }
}
