//! Threaded protocol runtime: real concurrency, identical outcomes.
//!
//! The same round as [`crate::runtime::run_protocol_round`], but each node
//! runs on its own OS thread and talks to the coordinator over crossbeam
//! channels carrying *encoded* frames. The coordinator serialises message
//! handling (its state machine is sequential by design), so the outcome is
//! bit-identical to the deterministic runtime — asserted by tests — while
//! the transport is genuinely concurrent.
//!
//! # Distributed tracing
//!
//! When a sampled round runs with a collector attached
//! ([`run_protocol_round_threaded_sampled`]), every coordinator frame
//! carries a [`TraceContext`] trailer naming the currently open phase span.
//! Node threads continue that trace: they open `node.bid` / `node.execute`
//! spans parented on the span named in the trailer and stamp their replies
//! with the child context, so one round stitches into a single trace across
//! all threads. The parent is always still open when a node span starts —
//! the coordinator records a phase span *before* sending the phase's frames
//! and closes it only *after* receiving the replies the nodes record their
//! spans ahead of. Unsampled or untraced rounds put nothing on the wire and
//! are byte-identical to the pre-tracing protocol.

use crate::codec::{decode_with_context, encode_with_context, CodecError};
use crate::coordinator::{Coordinator, CoordinatorPhase, ProtocolError};
use crate::message::{Message, RoundId};
use crate::network::MessageStats;
use crate::node::{NodeAgent, NodeSpec};
use crate::runtime::{ProtocolConfig, ProtocolOutcome};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use lb_mechanism::{MechanismError, VerifiedMechanism};
use lb_telemetry::{
    noop_collector, Collector, Exposition, Field, MetricsRegistry, RingCollector, Sampler, SpanId,
    Subsystem, TraceContext,
};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

fn codec_err(e: CodecError) -> MechanismError {
    MechanismError::Core(lb_core::CoreError::Infeasible {
        reason: e.to_string(),
    })
}

fn chan_err(context: &str) -> MechanismError {
    MechanismError::Core(lb_core::CoreError::Infeasible {
        reason: format!("protocol channel closed: {context}"),
    })
}

/// Runs one protocol round with every node on its own thread.
///
/// # Errors
/// Propagates mechanism/simulation/codec errors. A codec failure on any
/// thread (or a channel closed by an early error) surfaces as an `Err`; the
/// worker threads shut down cleanly in every error path rather than
/// panicking or deadlocking.
///
/// # Panics
/// Panics if `specs` is empty, or if a worker thread panics.
pub fn run_protocol_round_threaded<M: VerifiedMechanism + Sync>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
) -> Result<ProtocolOutcome, MechanismError> {
    run_protocol_round_threaded_observed(mechanism, specs, config, noop_collector())
}

/// [`run_protocol_round_threaded`] with a telemetry collector attached.
///
/// Unlike the deterministic runtimes there is no simulated clock here, so
/// events are timestamped with *wall-clock seconds since the round started*
/// (a monotonic [`Instant`] offset). Node threads bump the `net.messages` /
/// `net.bytes` counters concurrently — which is exactly why [`Collector`]
/// implementations must be thread-safe — while the coordinator's phase spans
/// come from its own sequential state machine, so the recording still
/// replays cleanly.
///
/// # Errors
/// Propagates the same errors as [`run_protocol_round_threaded`].
///
/// # Panics
/// Panics if `specs` is empty, or if a worker thread panics.
pub fn run_protocol_round_threaded_observed<M: VerifiedMechanism + Sync>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
    collector: Arc<dyn Collector>,
) -> Result<ProtocolOutcome, MechanismError> {
    run_protocol_round_threaded_sampled(mechanism, specs, config, collector, &Sampler::Always)
}

/// [`run_protocol_round_threaded_observed`] with an explicit head-based
/// sampling policy for the wire-propagated trace.
///
/// When the collector is enabled, the round's [`TraceContext`] is derived
/// deterministically from `(config.simulation.seed, round)` and `sampler`
/// decides — once, at the head of the round — whether it goes on the wire.
/// Sampled rounds append the context trailer to every frame and the node
/// threads record `node.bid` / `node.execute` spans (plus a `node.payment`
/// instant) that stitch into the coordinator's phase spans. Unsampled
/// rounds carry no trailer: the byte stream is identical to an untraced
/// run, and allocations and payments are identical in every case.
///
/// # Errors
/// Propagates the same errors as [`run_protocol_round_threaded`].
///
/// # Panics
/// Panics if `specs` is empty, or if a worker thread panics.
pub fn run_protocol_round_threaded_sampled<M: VerifiedMechanism + Sync>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
    collector: Arc<dyn Collector>,
    sampler: &Sampler,
) -> Result<ProtocolOutcome, MechanismError> {
    assert!(
        !specs.is_empty(),
        "run_protocol_round_threaded: need at least one node"
    );
    let n = specs.len();
    let round = RoundId(0);
    let actual_exec: Vec<f64> = specs.iter().map(|s| s.exec_value).collect();
    let epoch = Instant::now();

    // One deterministic trace per round; the sampling decision is made here
    // at the head and propagated to every participant in the wire context.
    let trace = collector.enabled().then(|| {
        TraceContext::root(
            config.simulation.seed,
            round.0,
            sampler.admits(config.simulation.seed, round.0),
        )
    });

    let stats = Mutex::new(MessageStats::default());
    let count = |stats: &Mutex<MessageStats>, payload: &Bytes| {
        let mut s = stats.lock();
        s.messages += 1;
        s.bytes += payload.len() as u64;
        drop(s);
        if collector.enabled() {
            let at = epoch.elapsed().as_secs_f64();
            collector.counter(at, "net.messages", Subsystem::Network, 1);
            collector.counter(at, "net.bytes", Subsystem::Network, payload.len() as u64);
        }
    };

    let finished_nodes: Mutex<Vec<Option<NodeAgent>>> = Mutex::new((0..n).map(|_| None).collect());

    let result: Result<(Vec<f64>, MessageStats), MechanismError> =
        crossbeam::thread::scope(|scope| {
            // Channels: coordinator -> node i, and a shared node ->
            // coordinator lane carrying `Result` so a worker can report a
            // corrupt frame instead of panicking. Created *inside* the scope
            // so an early `?` return drops every sender, unblocking worker
            // `recv`s and letting the scope join instead of deadlocking.
            type NodeFrame = (u32, Result<Bytes, CodecError>);
            let (to_coord_tx, to_coord_rx): (Sender<NodeFrame>, Receiver<NodeFrame>) = unbounded();
            let mut to_node_txs: Vec<Sender<Option<Bytes>>> = Vec::with_capacity(n);
            let mut node_rxs: Vec<Receiver<Option<Bytes>>> = Vec::with_capacity(n);
            for _ in 0..n {
                let (tx, rx) = unbounded();
                to_node_txs.push(tx);
                node_rxs.push(rx);
            }

            // Node threads: decode incoming frames, reply through the shared lane.
            for (i, rx) in node_rxs.into_iter().enumerate() {
                let to_coord = to_coord_tx.clone();
                let spec = specs[i];
                let stats = &stats;
                let finished = &finished_nodes;
                let collector = &collector;
                scope.spawn(move |_| {
                    let machine = u32::try_from(i).expect("fits u32");
                    let mut agent = NodeAgent::new(machine, spec);
                    while let Ok(Some(frame)) = rx.recv() {
                        let (message, ctx): (Message, Option<TraceContext>) =
                            match decode_with_context(&frame) {
                                Ok(v) => v,
                                Err(e) => {
                                    // Report the corrupt frame; the coordinator
                                    // turns it into a round error.
                                    let _ = to_coord.send((machine, Err(e)));
                                    break;
                                }
                            };
                        // Continue the coordinator's trace. The span named in
                        // the trailer is still open: the coordinator records a
                        // phase span before sending its frames and closes it
                        // only after receiving the replies this handler sends,
                        // so the recording replays cleanly despite the
                        // threads racing each other into the ring.
                        let ctx = ctx.filter(|c| c.sampled && collector.enabled());
                        let span = ctx.map_or(SpanId::NULL, |c| {
                            let at = epoch.elapsed().as_secs_f64();
                            let fields = vec![Field::u64("machine", u64::from(machine))];
                            match message {
                                Message::RequestBid { .. } => collector.span_start_in(
                                    at,
                                    "node.bid",
                                    Subsystem::Node,
                                    SpanId(c.span_id),
                                    fields,
                                ),
                                Message::Assign { .. } => collector.span_start_in(
                                    at,
                                    "node.execute",
                                    Subsystem::Node,
                                    SpanId(c.span_id),
                                    fields,
                                ),
                                Message::Payment { .. } => {
                                    collector.instant(at, "node.payment", Subsystem::Node, fields);
                                    SpanId::NULL
                                }
                                _ => SpanId::NULL,
                            }
                        });
                        let reply = agent.handle(&message);
                        if !span.is_null() {
                            // Close before replying: the parent phase span
                            // cannot end until the reply arrives, so child
                            // spans always nest inside it.
                            collector.span_end(epoch.elapsed().as_secs_f64(), span);
                        }
                        if let Some(reply) = reply {
                            let child =
                                ctx.filter(|_| !span.is_null()).map(|c| c.with_span(span.0));
                            match encode_with_context(&reply, child.as_ref()) {
                                Ok(payload) => {
                                    count(stats, &payload);
                                    if to_coord.send((machine, Ok(payload))).is_err() {
                                        // Coordinator dropped the lane (early
                                        // error return): shut down quietly.
                                        break;
                                    }
                                }
                                Err(e) => {
                                    let _ = to_coord.send((machine, Err(e)));
                                    break;
                                }
                            }
                        }
                    }
                    finished.lock()[i] = Some(agent);
                });
            }
            drop(to_coord_tx);

            // Coordinator: sequential state machine over the shared lane.
            // Strict — the channel transport never corrupts or reorders
            // per-sender, so a protocol violation here is a bug.
            let mut coordinator =
                Coordinator::new(mechanism, n, config.total_rate, round, config.simulation)
                    .with_strict(true)
                    .with_collector(Arc::clone(&collector));
            if let Some(ctx) = trace {
                coordinator = coordinator.with_trace(ctx);
            }
            let drive = (|| -> Result<(), MechanismError> {
                coordinator.set_now(epoch.elapsed().as_secs_f64());
                let open = coordinator.open();
                let wire = coordinator.wire_context();
                for (i, msg) in open.into_iter().enumerate() {
                    let payload = encode_with_context(&msg, wire.as_ref()).map_err(codec_err)?;
                    count(&stats, &payload);
                    to_node_txs[i]
                        .send(Some(payload))
                        .map_err(|_| chan_err("node hung up"))?;
                }

                while coordinator.phase() != CoordinatorPhase::Done {
                    let (_, frame) = to_coord_rx
                        .recv()
                        .map_err(|_| chan_err("all nodes hung up"))?;
                    let frame = frame.map_err(codec_err)?;
                    let (message, _child): (Message, Option<TraceContext>) =
                        decode_with_context(&frame).map_err(codec_err)?;
                    coordinator.set_now(epoch.elapsed().as_secs_f64());
                    let outgoing = coordinator
                        .handle(&message, &actual_exec)
                        .map_err(ProtocolError::into_mechanism)?;
                    // Stamp after handling: a phase transition re-parents the
                    // wire context onto the freshly opened phase span.
                    let wire = coordinator.wire_context();
                    for (i, msg) in outgoing {
                        let payload =
                            encode_with_context(&msg, wire.as_ref()).map_err(codec_err)?;
                        count(&stats, &payload);
                        to_node_txs[i as usize]
                            .send(Some(payload))
                            .map_err(|_| chan_err("node hung up"))?;
                    }
                }
                Ok(())
            })();
            if let Err(e) = drive {
                // Close any open spans before the early return drops the
                // senders, so a partial recording still replays cleanly.
                coordinator.end_telemetry();
                return Err(e);
            }

            // Close node channels so threads exit and park their agents.
            for tx in &to_node_txs {
                let _ = tx.send(None);
            }
            // Drain any straggler frames (none expected, but don't deadlock).
            while to_coord_rx.try_recv().is_ok() {}

            let payments = coordinator.payments().expect("settled").to_vec();
            let estimated = coordinator
                .estimated_exec_values()
                .expect("verified")
                .to_vec();
            let _ = estimated;
            Ok((payments, *stats.lock()))
        })
        .expect("protocol thread panicked");

    let (payments, stats) = result?;
    let nodes = finished_nodes.into_inner();
    let model = mechanism.valuation_model();
    let mut rates = Vec::with_capacity(n);
    let mut utilities = Vec::with_capacity(n);
    let mut estimated = vec![0.0; n];
    for (i, slot) in nodes.into_iter().enumerate() {
        let agent = slot.expect("node thread finished");
        rates.push(agent.assigned_rate.expect("assigned"));
        utilities.push(agent.utility(model).expect("settled"));
        let _ = i;
    }
    // Re-derive the estimates deterministically (same simulation seed) for
    // the outcome record: the coordinator's copy was consumed inside the
    // scope, and the simulation is a pure function of (bids, exec, config).
    let bids: Vec<f64> = specs.iter().map(|s| s.bid).collect();
    if let Ok(report) =
        lb_sim::driver::simulate_round(&bids, &actual_exec, config.total_rate, &config.simulation)
    {
        estimated = report.estimated_exec_values;
    }

    Ok(ProtocolOutcome {
        rates,
        payments,
        utilities,
        estimated_exec_values: estimated,
        stats,
    })
}

/// [`run_protocol_round_threaded_sampled`] that additionally publishes the
/// round's live telemetry to an [`Exposition`] after settlement.
///
/// The ring recording is ingested into a [`MetricsRegistry`] and published
/// as a Prometheus text-format snapshot alongside the raw trace (JSONL), so
/// an [`lb_telemetry::ExposeServer`] bound to the same [`Exposition`] serves
/// the round on `/metrics` and `/trace` the moment it settles. Exposition is
/// opt-in: the plain entry points never touch a socket or publish anything.
///
/// # Errors
/// Propagates the same errors as [`run_protocol_round_threaded`]. Rounds
/// that fail publish nothing.
///
/// # Panics
/// Panics if `specs` is empty, or if a worker thread panics.
pub fn run_protocol_round_threaded_exposed<M: VerifiedMechanism + Sync>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
    collector: Arc<RingCollector>,
    sampler: &Sampler,
    exposition: &Exposition,
) -> Result<ProtocolOutcome, MechanismError> {
    let outcome = run_protocol_round_threaded_sampled(
        mechanism,
        specs,
        config,
        Arc::clone(&collector) as Arc<dyn Collector>,
        sampler,
    )?;
    let events = collector.snapshot();
    let mut registry = MetricsRegistry::new();
    registry.ingest(&events);
    exposition.publish_metrics(&registry.snapshot());
    exposition.publish_trace(&events);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_protocol_round;
    use lb_core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
    use lb_mechanism::CompensationBonusMechanism;
    use lb_sim::driver::SimulationConfig;
    use lb_sim::server::ServiceModel;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            total_rate: PAPER_ARRIVAL_RATE,
            link_latency: 0.001,
            simulation: SimulationConfig {
                horizon: 300.0,
                seed: 3,
                model: ServiceModel::StationaryDeterministic,
                workload: Default::default(),
                warmup: 0.0,
                estimator: lb_sim::estimator::EstimatorConfig::default(),
            },
        }
    }

    #[test]
    fn threaded_outcome_equals_deterministic_outcome() {
        let mech = CompensationBonusMechanism::paper();
        let trues = paper_true_values();
        let mut specs: Vec<NodeSpec> = trues.iter().map(|&t| NodeSpec::truthful(t)).collect();
        specs[0] = NodeSpec::strategic(1.0, 3.0, 3.0); // paper's High1 for spice

        let st = run_protocol_round(&mech, &specs, &config()).unwrap();
        let mt = run_protocol_round_threaded(&mech, &specs, &config()).unwrap();

        assert_eq!(st.rates.len(), mt.rates.len());
        for i in 0..specs.len() {
            assert!((st.rates[i] - mt.rates[i]).abs() < 1e-12, "rate {i}");
            assert!(
                (st.payments[i] - mt.payments[i]).abs() < 1e-9,
                "payment {i}"
            );
            assert!(
                (st.utilities[i] - mt.utilities[i]).abs() < 1e-9,
                "utility {i}"
            );
            assert!(
                (st.estimated_exec_values[i] - mt.estimated_exec_values[i]).abs() < 1e-12,
                "estimate {i}"
            );
        }
        // Same control-plane traffic.
        assert_eq!(st.stats, mt.stats);
    }

    #[test]
    fn mechanism_error_shuts_down_workers_cleanly() {
        // An invalid total rate makes allocation fail once the last bid is
        // in. The error must surface as `Err` — not a panic, and not a
        // deadlock waiting on worker threads.
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = vec![NodeSpec::truthful(1.0), NodeSpec::truthful(2.0)];
        let mut cfg = config();
        cfg.total_rate = -1.0;
        assert!(run_protocol_round_threaded(&mech, &specs, &cfg).is_err());
    }

    #[test]
    fn observed_threaded_round_records_replayable_spans() {
        use lb_telemetry::{replay_spans, MetricsRegistry, RingCollector};
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect();
        let ring = Arc::new(RingCollector::new(16_384));
        let outcome =
            run_protocol_round_threaded_observed(&mech, &specs, &config(), ring.clone()).unwrap();

        // Node threads recorded counters concurrently; the coordinator's
        // sequential spans still replay cleanly around them.
        let events = ring.snapshot();
        let spans = replay_spans(&events).expect("recording replays cleanly");
        assert_eq!(spans.iter().filter(|s| s.name == "round").count(), 1);
        assert!(spans.iter().any(|s| s.name == "phase.settle"));

        let mut reg = MetricsRegistry::new();
        reg.ingest(&events);
        assert_eq!(reg.counter("net.messages"), outcome.stats.messages);
        assert_eq!(reg.counter("net.bytes"), outcome.stats.bytes);
    }

    #[test]
    fn traced_threaded_round_stitches_one_trace_across_all_nodes() {
        use lb_telemetry::{replay_spans, EventKind, FieldValue, RingCollector};
        use std::collections::BTreeSet;
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect();
        let n = specs.len();
        let ring = Arc::new(RingCollector::new(16_384));
        run_protocol_round_threaded_sampled(
            &mech,
            &specs,
            &config(),
            ring.clone(),
            &Sampler::Always,
        )
        .unwrap();

        let events = ring.snapshot();
        let spans = replay_spans(&events).expect("traced recording replays cleanly");

        // The round span advertises the deterministic trace id.
        let expected = TraceContext::root(config().simulation.seed, 0, true);
        let round_start = events
            .iter()
            .find(|e| e.name == "round" && matches!(e.kind, EventKind::SpanStart { .. }))
            .expect("round span recorded");
        #[allow(clippy::cast_possible_truncation)]
        let lo = expected.trace_id as u64;
        let hi = (expected.trace_id >> 64) as u64;
        assert_eq!(round_start.field("trace_lo"), Some(&FieldValue::U64(lo)));
        assert_eq!(round_start.field("trace_hi"), Some(&FieldValue::U64(hi)));

        // Every node contributed a bid span and an execute span, parented on
        // the coordinator's matching phase span — one stitched trace.
        let phase_id = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} span recorded"))
                .id
        };
        let collect = phase_id("phase.collect_bids");
        let execute = phase_id("phase.execute");
        let bids: Vec<_> = spans.iter().filter(|s| s.name == "node.bid").collect();
        let execs: Vec<_> = spans.iter().filter(|s| s.name == "node.execute").collect();
        assert_eq!(bids.len(), n, "one bid span per node");
        assert_eq!(execs.len(), n, "one execute span per node");
        assert!(bids.iter().all(|s| s.parent == Some(collect)));
        assert!(execs.iter().all(|s| s.parent == Some(execute)));

        // All n distinct machines participated (not one node recorded n times),
        // and every one acknowledged its payment.
        let machines: BTreeSet<u64> = events
            .iter()
            .filter(|e| e.name == "node.bid")
            .filter_map(|e| match e.field("machine") {
                Some(&FieldValue::U64(m)) => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(machines.len(), n);
        assert_eq!(
            events.iter().filter(|e| e.name == "node.payment").count(),
            n
        );
    }

    #[test]
    fn tracing_does_not_change_allocations_or_payments() {
        use lb_telemetry::RingCollector;
        let mech = CompensationBonusMechanism::paper();
        let mut specs: Vec<NodeSpec> = paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect();
        specs[0] = NodeSpec::strategic(1.0, 3.0, 3.0);

        let off = run_protocol_round_threaded(&mech, &specs, &config()).unwrap();
        let on = run_protocol_round_threaded_sampled(
            &mech,
            &specs,
            &config(),
            Arc::new(RingCollector::new(16_384)),
            &Sampler::Always,
        )
        .unwrap();
        let unsampled = run_protocol_round_threaded_sampled(
            &mech,
            &specs,
            &config(),
            Arc::new(RingCollector::new(16_384)),
            &Sampler::Never,
        )
        .unwrap();

        // Bit-identical outcomes with tracing off, on, and head-sampled out.
        assert_eq!(off.rates, on.rates);
        assert_eq!(off.payments, on.payments);
        assert_eq!(off.utilities, on.utilities);
        assert_eq!(off.rates, unsampled.rates);
        assert_eq!(off.payments, unsampled.payments);
        // Tracing adds a trailer to each frame, never extra frames; an
        // unsampled round doesn't even pay the trailer.
        assert_eq!(off.stats.messages, on.stats.messages);
        assert_eq!(off.stats, unsampled.stats);
        assert!(on.stats.bytes > off.stats.bytes);
    }

    #[test]
    fn exposed_round_serves_prometheus_metrics_over_http() {
        use lb_telemetry::{ExposeServer, RingCollector};
        use std::io::{Read as _, Write as _};
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect();

        let exposition = Exposition::new();
        let server = ExposeServer::bind("127.0.0.1:0", exposition.clone()).unwrap();
        let addr = server.local_addr().unwrap();
        let serving = std::thread::spawn(move || server.serve_one());

        let ring = Arc::new(RingCollector::new(16_384));
        let outcome = run_protocol_round_threaded_exposed(
            &mech,
            &specs,
            &config(),
            ring,
            &Sampler::Always,
            &exposition,
        )
        .unwrap();

        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        serving.join().unwrap().unwrap();

        assert!(response.starts_with("HTTP/1.0 200"), "{response}");
        assert!(
            response.contains("net_messages_total"),
            "prometheus exposition carries the message counter: {response}"
        );
        assert!(
            response.contains(&format!("net_messages_total {}", outcome.stats.messages)),
            "{response}"
        );
    }

    #[test]
    fn threaded_round_is_repeatable() {
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect();
        let a = run_protocol_round_threaded(&mech, &specs, &config()).unwrap();
        let b = run_protocol_round_threaded(&mech, &specs, &config()).unwrap();
        assert_eq!(a.payments, b.payments);
        assert_eq!(a.stats, b.stats);
    }
}
