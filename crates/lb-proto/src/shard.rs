//! Sharded hierarchical coordinator: million-machine rounds over a
//! two-level tree.
//!
//! The single [`crate::coordinator::Coordinator`] tops out well below 10⁶
//! machines: every phase funnels through one state machine that touches
//! every frame. This module splits a round across `k` *shard coordinators*,
//! each owning a contiguous slice of `n/k` machines:
//!
//! * **Collect** — each shard requests and gathers its own slice's bids in
//!   parallel (one worker thread per shard), forwarding the accepted `Bid`
//!   frames upward over the existing wire codec.
//! * **Aggregate** — each shard reduces its respondent bids to a partial
//!   double-double harmonic sum `Σ 1/b_i`, shipped upward as a
//!   [`Message::ShardSum`] carrying both limbs; the root merges the partials
//!   with [`lb_core::merge_inv_sums`] (a balanced pairwise tree) and runs
//!   the PR allocation against the merged sum.
//! * **Execute / verify** — each shard runs the verification simulation for
//!   its own respondents ([`lb_sim::driver::simulate_partition`], whose
//!   per-machine RNG streams are keyed by global respondent ordinal, so the
//!   sharded observation is bit-identical to the unsharded one) and ships
//!   the estimates upward as [`Message::ShardEstimates`].
//! * **Settle** — the root computes payments against the merged sum and the
//!   shards fan the `Payment` frames back down in parallel.
//!
//! The root stays on the calling thread (it owns the non-`Send` journal
//! handle); shard workers run under [`std::thread::scope`] and only touch
//! their own agents plus the shared, thread-safe
//! [`lb_telemetry::Collector`]. Frames are decoded and ingested at the root
//! in shard order, so the journal grammar — `RoundOpened`, ascending
//! `BidAccepted`/`ExclusionDecided`, `AllocationCommitted`,
//! `ExecutionObserved`, `PaymentsCommitted`, the seals — is byte-identical
//! to an uninterrupted run regardless of worker scheduling, and
//! [`crate::recovery::recover_round`] + [`drive_sharded_round`] resume a
//! crashed sharded round from any record boundary.
//!
//! # Numerical contract
//!
//! The merged harmonic sum differs from the sequential single-coordinator
//! fold only by the double-double representation error, about `n · 2⁻¹⁰⁶`
//! relative — far below the `2⁻⁵³` step of the final `f64` rounding, so
//! allocations and payments are bit-identical to the single-coordinator
//! round for every shard count (`k = 1` *is* the sequential fold). The
//! `lb-fuzz` `shard` oracle re-checks this differentially every CI run.

use crate::codec::{decode_with_context, encode_with_context, CodecError};
use crate::coordinator::{Coordinator, CoordinatorPhase, ProtocolError};
use crate::faults::FaultPlan;
use crate::message::{Message, RoundId};
use crate::network::MessageStats;
use crate::node::{NodeAgent, NodeSpec};
use crate::runtime::ProtocolConfig;
use bytes::Bytes;
use lb_core::{inv_sum_dd, merge_inv_sums, CoreError, TwoF64};
use lb_mechanism::{MechanismError, VerifiedMechanism};
use lb_prof::{LatencySketch, RoundProfiler, WireShardProfile, PHASES};
use lb_sim::driver::{simulate_partition_observed, simulate_partition_timed, SimulationConfig};
use lb_telemetry::{
    noop_collector, Collector, EventKind, Field, SpanId, Subsystem, TelemetryEvent, TraceContext,
};
use std::borrow::Cow;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Contiguous shard ranges: `k` slices covering `0..n`, the first `n % k`
/// one element longer. `k` is clamped to `1..=n` (a shard never owns zero
/// machines, and at least one shard exists).
#[must_use]
pub fn shard_ranges(n: usize, k: usize) -> Vec<Range<usize>> {
    let k = k.clamp(1, n.max(1));
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for s in 0..k {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// The shard owning global machine index `i` under `ranges`.
fn shard_of(ranges: &[Range<usize>], i: usize) -> usize {
    ranges.partition_point(|r| r.end <= i)
}

/// Narrows a shard index to the `u32` wire width used by `ShardSum` /
/// `ShardEstimates` / `ShardProfile` frames. Reachable only with an absurd
/// shard count, but it answers with a typed error instead of panicking
/// mid-round.
fn shard_wire_id(shard: usize) -> Result<u32, ProtocolError> {
    u32::try_from(shard).map_err(|_| ProtocolError::TooManyShards { shard })
}

/// Wall-clock seconds spent in each phase of a sharded round, measured at
/// the root (collect includes the upward bid forwarding; allocate includes
/// the partial-sum merge and the distributed verification simulation).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardPhaseTimings {
    /// Bid request fan-out, shard-local collection, upward ingest, timeout.
    pub collect: f64,
    /// Partial-sum aggregation, allocation, verification, commit.
    pub allocate: f64,
    /// Assign fan-out and completion acknowledgements.
    pub execute: f64,
    /// Payment computation, downward delivery, seal.
    pub settle: f64,
}

/// Outcome of one sharded round, read from the root coordinator's ledger
/// (full-width; excluded machines have rate 0 and payment 0).
#[derive(Debug, Clone)]
pub struct ShardRoundReport {
    /// Per-machine assigned rates.
    pub rates: Vec<f64>,
    /// Per-machine payments from the durable ledger.
    pub payments: Vec<f64>,
    /// Verification estimates (0 for excluded machines).
    pub estimated_exec_values: Vec<f64>,
    /// Which machines were excluded from the round.
    pub excluded: Vec<bool>,
    /// Protocol anomalies the root absorbed.
    pub anomalies: crate::trace::AnomalyStats,
    /// Control-plane traffic, both tiers combined.
    pub stats: MessageStats,
    /// Number of shard coordinators the round ran over.
    pub shards: usize,
    /// Per-phase wall-clock timings.
    pub timings: ShardPhaseTimings,
}

/// Control messages a fault-free sharded round exchanges: the
/// single-coordinator `5n` (request, bid, assign, ack, payment per node)
/// plus one `ShardSum` and one `ShardEstimates` per shard.
#[must_use]
pub fn expected_sharded_message_count(n: usize, shards: usize) -> u64 {
    5 * n as u64 + 2 * shard_ranges(n, shards).len() as u64
}

fn codec_err(e: CodecError) -> ProtocolError {
    MechanismError::Core(CoreError::Infeasible {
        reason: e.to_string(),
    })
    .into()
}

/// Counts one encoded frame into shard-local stats and, when telemetry is
/// on, the shared `net.*` counters (same accounting as the threaded
/// runtime).
fn count_frame(stats: &mut MessageStats, collector: &dyn Collector, epoch: Instant, frame: &Bytes) {
    stats.messages += 1;
    stats.bytes += frame.len() as u64;
    if collector.enabled() {
        let at = epoch.elapsed().as_secs_f64();
        collector.counter(at, "net.messages", Subsystem::Network, 1);
        collector.counter(at, "net.bytes", Subsystem::Network, frame.len() as u64);
    }
}

fn shard_span(
    collector: &dyn Collector,
    epoch: Instant,
    name: &'static str,
    parent: SpanId,
    shard: usize,
    machines: usize,
) -> SpanId {
    if !collector.enabled() {
        return SpanId::NULL;
    }
    collector.span_start_in(
        epoch.elapsed().as_secs_f64(),
        name,
        Subsystem::Shard,
        parent,
        vec![
            Field::u64("shard", shard as u64),
            Field::u64("machines", machines as u64),
        ],
    )
}

/// The context upward frames carry: the shard's own span when one is open,
/// otherwise the root's wire context unchanged.
fn upward_ctx(wire: Option<TraceContext>, span: SpanId) -> Option<TraceContext> {
    if span.is_null() {
        wire
    } else {
        wire.map(|c| c.with_span(span.0))
    }
}

/// Whether a machine's bid is lost on the way up. `lose_bid_attempts` with
/// any `k >= 1` is fatal here because the sharded driver, like
/// [`crate::faults::run_protocol_round_with_faults`], never retries.
fn bid_lost(faults: &FaultPlan, machine: u32) -> bool {
    faults.lose_bids_from.contains(&machine)
        || faults.partitioned.contains(&machine)
        || faults
            .lose_bid_attempts
            .iter()
            .any(|&(m, k)| m == machine && k >= 1)
}

fn ack_lost(faults: &FaultPlan, machine: u32) -> bool {
    faults.lose_acks_from.contains(&machine) || faults.partitioned.contains(&machine)
}

/// Splits `agents` into per-shard mutable slices following `ranges`.
fn shard_slices<'a>(
    agents: &'a mut [NodeAgent],
    ranges: &[Range<usize>],
) -> Vec<&'a mut [NodeAgent]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut rest = agents;
    for r in ranges {
        let (head, tail) = rest.split_at_mut(r.len());
        out.push(head);
        rest = tail;
    }
    out
}

/// The root's view of who can still participate: the accepted bid for
/// non-excluded machines, `None` elsewhere.
fn respondent_bids(root: &Coordinator<'_>) -> Vec<Option<f64>> {
    root.bid_slots()
        .iter()
        .zip(root.excluded())
        .map(|(bid, &excluded)| if excluded { None } else { *bid })
        .collect()
}

/// Recomputes the merged harmonic sum from the root's current bid state —
/// per-shard partials over the same ranges, merged the same way — so a
/// recovered round settles against bit-identically the sum the crashed
/// process allocated with.
fn merged_sum(root: &Coordinator<'_>, ranges: &[Range<usize>]) -> TwoF64 {
    let bids = respondent_bids(root);
    let partials: Vec<TwoF64> = ranges
        .iter()
        .map(|r| {
            let values: Vec<f64> = bids[r.clone()].iter().filter_map(|b| *b).collect();
            inv_sum_dd(&values)
        })
        .collect();
    merge_inv_sums(&partials)
}

/// What one shard worker hands back up: the encoded node-originated frames
/// in ascending machine order, plus the frames it counted (both directions).
///
/// `elapsed` and `prof` are profiler-only side channels: the worker's own
/// wall time, and — on profiled verify stages — the encoded
/// [`Message::ShardProfile`] frame, carried *outside* `up` so it never
/// enters the protocol's frame accounting or the root's ingest loop.
#[derive(Default)]
struct ShardBatch {
    up: Vec<Bytes>,
    sent: MessageStats,
    elapsed: f64,
    prof: Option<Bytes>,
}

#[allow(clippy::too_many_arguments)]
fn collect_shard(
    shard: usize,
    range: Range<usize>,
    agents: &mut [NodeAgent],
    already: &[bool],
    excluded: &[bool],
    faults: &FaultPlan,
    round: RoundId,
    wire: Option<TraceContext>,
    parent: SpanId,
    collector: &dyn Collector,
    epoch: Instant,
) -> Result<ShardBatch, ProtocolError> {
    let started = Instant::now();
    let mut batch = ShardBatch::default();
    let span = shard_span(
        collector,
        epoch,
        "shard.collect",
        parent,
        shard,
        range.len(),
    );
    for (agent, i) in agents.iter_mut().zip(range) {
        let machine = agent.machine;
        // Machines that already bid (a recovered round's durable prefix),
        // quarantined machines, and partitioned machines get no request.
        if already[i] || excluded[i] || faults.partitioned.contains(&machine) {
            continue;
        }
        let request = Message::RequestBid { round };
        let frame = encode_with_context(&request, wire.as_ref()).map_err(codec_err)?;
        count_frame(&mut batch.sent, collector, epoch, &frame);
        let (request, _ctx): (Message, Option<TraceContext>) =
            decode_with_context(&frame).map_err(codec_err)?;
        let Some(bid) = agent.handle(&request) else {
            continue;
        };
        if bid_lost(faults, machine) {
            continue;
        }
        let ctx = upward_ctx(wire, span);
        let frame = encode_with_context(&bid, ctx.as_ref()).map_err(codec_err)?;
        count_frame(&mut batch.sent, collector, epoch, &frame);
        batch.up.push(frame);
    }
    collector.span_end(epoch.elapsed().as_secs_f64(), span);
    batch.elapsed = started.elapsed().as_secs_f64();
    Ok(batch)
}

#[allow(clippy::too_many_arguments)]
fn verify_shard(
    shard: usize,
    sub_bids: &[f64],
    sub_exec: &[f64],
    sub_rates: &[f64],
    stream_offset: u64,
    sim: &SimulationConfig,
    round: RoundId,
    wire: Option<TraceContext>,
    parent: SpanId,
    collector: &dyn Collector,
    epoch: Instant,
    profile: bool,
) -> Result<ShardBatch, ProtocolError> {
    let started = Instant::now();
    let mut batch = ShardBatch::default();
    let span = shard_span(
        collector,
        epoch,
        "shard.verify",
        parent,
        shard,
        sub_bids.len(),
    );
    let shard_u32 = shard_wire_id(shard)?;
    let report = if profile {
        // Profiled verify: identical kernel, plus a per-machine wall-time
        // probe feeding the shard's sketch. The probe observes the loop
        // without participating, so estimates are bit-identical to the
        // unprofiled path.
        let mut machine_wall = LatencySketch::new();
        let mut slowest: Option<(u64, f64)> = None;
        let report = simulate_partition_timed(
            sub_bids,
            sub_exec,
            sub_rates,
            sim,
            stream_offset,
            collector,
            span,
            &mut |machine, wall| {
                machine_wall.record(wall);
                if slowest.is_none_or(|(_, w)| wall > w) {
                    // Keep the *local* respondent ordinal: the worker does
                    // not know the global index space; the root maps it.
                    slowest = Some((machine - stream_offset, wall));
                }
            },
        )
        .map_err(|e| ProtocolError::from(MechanismError::Core(e)))?;
        let msg = Message::ShardProfile {
            round,
            shard: shard_u32,
            profile: WireShardProfile {
                shard: shard_u32,
                machines: sub_bids.len() as u64,
                machine_wall: machine_wall.to_wire(),
                slowest,
            },
        };
        let ctx = upward_ctx(wire, span);
        // Deliberately NOT count_frame'd: profiling frames are accounted by
        // the profiler alone, never MessageStats or the net.* counters.
        batch.prof = Some(encode_with_context(&msg, ctx.as_ref()).map_err(codec_err)?);
        report
    } else {
        simulate_partition_observed(
            sub_bids,
            sub_exec,
            sub_rates,
            sim,
            stream_offset,
            collector,
            span,
        )
        .map_err(|e| ProtocolError::from(MechanismError::Core(e)))?
    };
    let msg = Message::ShardEstimates {
        round,
        shard: shard_u32,
        estimates: report.estimated_exec_values,
    };
    let ctx = upward_ctx(wire, span);
    let frame = encode_with_context(&msg, ctx.as_ref()).map_err(codec_err)?;
    count_frame(&mut batch.sent, collector, epoch, &frame);
    batch.up.push(frame);
    collector.span_end(epoch.elapsed().as_secs_f64(), span);
    batch.elapsed = started.elapsed().as_secs_f64();
    Ok(batch)
}

#[allow(clippy::too_many_arguments)]
fn execute_shard(
    shard: usize,
    range: Range<usize>,
    agents: &mut [NodeAgent],
    assigns: &[(usize, Message)],
    faults: &FaultPlan,
    wire: Option<TraceContext>,
    parent: SpanId,
    collector: &dyn Collector,
    epoch: Instant,
) -> Result<ShardBatch, ProtocolError> {
    let started = Instant::now();
    let mut batch = ShardBatch::default();
    let span = shard_span(
        collector,
        epoch,
        "shard.execute",
        parent,
        shard,
        assigns.len(),
    );
    for (i, msg) in assigns {
        let local = i - range.start;
        let machine = agents[local].machine;
        if faults.partitioned.contains(&machine) {
            continue;
        }
        let frame = encode_with_context(msg, wire.as_ref()).map_err(codec_err)?;
        count_frame(&mut batch.sent, collector, epoch, &frame);
        let (assign, _ctx): (Message, Option<TraceContext>) =
            decode_with_context(&frame).map_err(codec_err)?;
        let Some(ack) = agents[local].handle(&assign) else {
            continue;
        };
        if ack_lost(faults, machine) {
            continue;
        }
        let ctx = upward_ctx(wire, span);
        let frame = encode_with_context(&ack, ctx.as_ref()).map_err(codec_err)?;
        count_frame(&mut batch.sent, collector, epoch, &frame);
        batch.up.push(frame);
    }
    collector.span_end(epoch.elapsed().as_secs_f64(), span);
    batch.elapsed = started.elapsed().as_secs_f64();
    Ok(batch)
}

#[allow(clippy::too_many_arguments)]
fn settle_shard(
    shard: usize,
    range: Range<usize>,
    agents: &mut [NodeAgent],
    payments: &[(usize, Message)],
    faults: &FaultPlan,
    wire: Option<TraceContext>,
    collector: &dyn Collector,
    epoch: Instant,
) -> Result<ShardBatch, ProtocolError> {
    let started = Instant::now();
    let mut batch = ShardBatch::default();
    for (i, msg) in payments {
        let local = i - range.start;
        let machine = agents[local].machine;
        if faults.partitioned.contains(&machine) {
            continue;
        }
        let frame = encode_with_context(msg, wire.as_ref()).map_err(codec_err)?;
        count_frame(&mut batch.sent, collector, epoch, &frame);
        let (payment, _ctx): (Message, Option<TraceContext>) =
            decode_with_context(&frame).map_err(codec_err)?;
        let _ = agents[local].handle(&payment);
    }
    // The phase spans closed when the root settled, so the downward
    // delivery is an instant, not a span.
    collector.instant(
        epoch.elapsed().as_secs_f64(),
        "shard.settle",
        Subsystem::Shard,
        vec![
            Field::u64("shard", shard as u64),
            Field::u64("machines", payments.len() as u64),
        ],
    );
    batch.elapsed = started.elapsed().as_secs_f64();
    Ok(batch)
}

/// Joins one stage's workers in shard order, folding their traffic into
/// `stats` and returning the whole batches (upward frames plus the
/// profiler-only side channels), still shard-ordered.
fn join_stage(
    handles: Vec<std::thread::ScopedJoinHandle<'_, Result<ShardBatch, ProtocolError>>>,
    stats: &mut MessageStats,
) -> Result<Vec<ShardBatch>, ProtocolError> {
    let mut batches = Vec::with_capacity(handles.len());
    // Join *every* handle even after a failure: an unjoined panicked scoped
    // thread would re-raise its panic when the scope closes, turning a
    // contained shard failure back into a root abort. The first error wins;
    // traffic from shards that did complete still counts.
    let mut first_err: Option<ProtocolError> = None;
    for (shard, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(batch)) => {
                stats.messages += batch.sent.messages;
                stats.bytes += batch.sent.bytes;
                batches.push(batch);
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => first_err = first_err.or(Some(ProtocolError::ShardPanicked { shard })),
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(batches),
    }
}

/// Drives one sharded round to completion on `root`, which may be freshly
/// constructed *or* recovered mid-round by [`crate::recovery::recover_round`]
/// — the driver picks up from whatever phase the replay reconstructed, and
/// the records it appends continue the journal exactly where an
/// uninterrupted run would have, so crash-recovered and uninterrupted rounds
/// produce byte-identical journals.
///
/// `faults` drops frames exactly as
/// [`crate::faults::run_protocol_round_with_faults`]: lost bids exclude the
/// machine at the bid timeout, lost acks don't delay settlement, partitioned
/// machines see nothing.
///
/// # Errors
/// Propagates mechanism errors (notably
/// [`lb_mechanism::MechanismError::NeedTwoAgents`] when fewer than two bids
/// survive), journal failures (including injected crashes) and codec
/// errors. A panicking shard worker no longer takes the root down: it
/// surfaces as [`ProtocolError::ShardPanicked`] after every other worker
/// has been joined, with the journal truncated at a record boundary so the
/// round replays exactly like any other crash-interrupted round.
///
/// # Panics
/// Panics only with a strict root, on protocol violations.
pub fn drive_sharded_round(
    root: &mut Coordinator<'_>,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
    shards: usize,
    faults: &FaultPlan,
) -> Result<(MessageStats, ShardPhaseTimings), ProtocolError> {
    drive_sharded_round_profiled(root, specs, config, shards, faults, None)
}

/// [`drive_sharded_round`] with an optional [`RoundProfiler`] attached.
///
/// When the profiler samples this round, each shard's verify worker ships a
/// [`Message::ShardProfile`] frame (its per-machine wall-time sketch plus
/// its slowest machine) alongside the estimates, and the root ingests them
/// into the profiler's cross-shard rollup together with each worker's
/// per-phase wall time. Profiling frames are counted exclusively by the
/// profiler's own accounting — never [`MessageStats`] or the `net.*`
/// counters — and the probe observes the verification kernel without
/// participating, so rates, payments, estimates, exclusions, the journal
/// and the message statistics are bit-identical with the profiler attached,
/// detached, or sampling.
///
/// # Errors
/// As [`drive_sharded_round`], plus
/// [`ProtocolError::ReplayMismatch`] if a profiled verify worker returns a
/// missing or corrupt profile frame.
///
/// # Panics
/// Panics only with a strict root, on protocol violations.
pub fn drive_sharded_round_profiled(
    root: &mut Coordinator<'_>,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
    shards: usize,
    faults: &FaultPlan,
    mut profiler: Option<&mut RoundProfiler>,
) -> Result<(MessageStats, ShardPhaseTimings), ProtocolError> {
    let n = specs.len();
    if n != root.bid_slots().len() {
        return Err(CoreError::LengthMismatch {
            expected: root.bid_slots().len(),
            actual: n,
        }
        .into());
    }
    let round = root.round();
    let collector = Arc::clone(root.collector());
    let epoch = Instant::now();
    let ranges = shard_ranges(n, shards);
    let mut stats = MessageStats::default();
    let mut timings = ShardPhaseTimings::default();
    let profiling = profiler.as_ref().is_some_and(|p| p.should_profile(round.0));
    // This round's per-shard phase seconds, kept for the gauge emission
    // after settlement (telemetry-only; outcomes never read it).
    let mut shard_phase: Vec<[f64; 4]> = vec![[0.0; 4]; ranges.len()];

    // Machine ids travel as u32; the width was validated when the root was
    // constructed, but the driver re-checks instead of carrying a reachable
    // panic on the hot path.
    if u32::try_from(n).is_err() {
        return Err(ProtocolError::TooManyNodes { n });
    }
    #[allow(clippy::cast_possible_truncation)]
    let mut agents: Vec<NodeAgent> = specs
        .iter()
        .enumerate()
        .map(|(i, &spec)| NodeAgent::new(i as u32, spec))
        .collect();

    // The merged harmonic sum, carried from allocation to settlement.
    // Recomputed from journal state when the round resumes past allocation.
    let mut merged: Option<TwoF64> = None;

    // ---- Collect: shard-local bid gathering, upward ingest, timeout. ----
    if root.phase() == CoordinatorPhase::CollectingBids {
        let t = Instant::now();
        root.set_now(epoch.elapsed().as_secs_f64());
        root.ensure_round_span();
        let wire = root.wire_context();
        let parent = root.phase_span();
        let already: Vec<bool> = root.bid_slots().iter().map(Option::is_some).collect();
        let excluded = root.excluded().to_vec();

        let batches = std::thread::scope(|scope| {
            let handles = ranges
                .iter()
                .enumerate()
                .zip(shard_slices(&mut agents, &ranges))
                .map(|((s, range), slice)| {
                    let (already, excluded, collector) = (&already, &excluded, &collector);
                    let range = range.clone();
                    scope.spawn(move || {
                        collect_shard(
                            s,
                            range,
                            slice,
                            already,
                            excluded,
                            faults,
                            round,
                            wire,
                            parent,
                            &**collector,
                            epoch,
                        )
                    })
                })
                .collect();
            join_stage(handles, &mut stats)
        })?;
        if profiling {
            if let Some(p) = profiler.as_deref_mut() {
                for (s, batch) in batches.iter().enumerate() {
                    p.record_phase(s as u32, 0, batch.elapsed);
                    shard_phase[s][0] = batch.elapsed;
                }
            }
        }
        for frame in batches.into_iter().flat_map(|b| b.up) {
            let (msg, _ctx): (Message, Option<TraceContext>) =
                decode_with_context(&frame).map_err(codec_err)?;
            root.set_now(epoch.elapsed().as_secs_f64());
            root.ingest(&msg)?;
        }
        root.set_now(epoch.elapsed().as_secs_f64());
        root.close_bidding_sharded()?;
        timings.collect = t.elapsed().as_secs_f64();
    }

    // ---- Aggregate + allocate + distributed verification. ----
    if root.phase() == CoordinatorPhase::CollectingBids {
        let t = Instant::now();
        let bids = respondent_bids(root);
        let wire = root.wire_context();

        // Partial harmonic sums travel as ShardSum frames: both double-double
        // limbs on the wire, so the merge at the root is exact.
        let mut partials = Vec::with_capacity(ranges.len());
        for (s, range) in ranges.iter().enumerate() {
            let values: Vec<f64> = bids[range.clone()].iter().filter_map(|b| *b).collect();
            let partial = inv_sum_dd(&values);
            let msg = Message::ShardSum {
                round,
                shard: shard_wire_id(s)?,
                sum_hi: partial.hi,
                sum_lo: partial.lo,
            };
            let frame = encode_with_context(&msg, wire.as_ref()).map_err(codec_err)?;
            count_frame(&mut stats, &*collector, epoch, &frame);
            let (decoded, _ctx): (Message, Option<TraceContext>) =
                decode_with_context(&frame).map_err(codec_err)?;
            let Message::ShardSum { sum_hi, sum_lo, .. } = decoded else {
                return Err(ProtocolError::ReplayMismatch {
                    what: "shard sum frame decoded to a different message",
                });
            };
            partials.push(TwoF64 {
                hi: sum_hi,
                lo: sum_lo,
            });
        }
        let s_dd = merge_inv_sums(&partials);
        merged = Some(s_dd);

        root.set_now(epoch.elapsed().as_secs_f64());
        let rates = root.begin_allocation_sharded(s_dd)?;
        let parent = root.phase_span();

        // Per-shard verification simulation: each shard simulates its own
        // respondents at their global respondent stream offsets.
        let mut shard_inputs = Vec::with_capacity(ranges.len());
        let mut offset = 0u64;
        for range in &ranges {
            // An empty bid slot inside the range is a silent machine (lost
            // frame, timeout exclusion): it is filtered into the same
            // excluded-respondent path the root applied at the bid timeout,
            // never assumed to have answered.
            let present: Vec<(usize, f64)> = range
                .clone()
                .filter_map(|i| bids[i].map(|b| (i, b)))
                .collect();
            let idx: Vec<usize> = present.iter().map(|&(i, _)| i).collect();
            let sub_bids: Vec<f64> = present.iter().map(|&(_, b)| b).collect();
            let sub_exec: Vec<f64> = idx.iter().map(|&i| specs[i].exec_value).collect();
            let sub_rates: Vec<f64> = idx.iter().map(|&i| rates[i]).collect();
            let m = idx.len() as u64;
            shard_inputs.push((idx, sub_bids, sub_exec, sub_rates, offset));
            offset += m;
        }
        let sim = config.simulation;
        let batches = std::thread::scope(|scope| {
            let handles = shard_inputs
                .iter()
                .enumerate()
                .map(|(s, (_, sub_bids, sub_exec, sub_rates, off))| {
                    let (collector, sim) = (&collector, &sim);
                    let off = *off;
                    scope.spawn(move || {
                        verify_shard(
                            s,
                            sub_bids,
                            sub_exec,
                            sub_rates,
                            off,
                            sim,
                            round,
                            wire,
                            parent,
                            &**collector,
                            epoch,
                            profiling,
                        )
                    })
                })
                .collect();
            join_stage(handles, &mut stats)
        })?;

        // Ingest the profiling side channel: per-shard wall time and the
        // ShardProfile frames, with the slowest machine's shard-local
        // ordinal mapped back to its global index via the respondent map.
        if profiling {
            if let Some(p) = profiler.as_deref_mut() {
                for (s, batch) in batches.iter().enumerate() {
                    p.record_phase(s as u32, 1, batch.elapsed);
                    shard_phase[s][1] = batch.elapsed;
                    let frame = batch.prof.as_ref().ok_or(ProtocolError::ReplayMismatch {
                        what: "missing shard profile frame",
                    })?;
                    p.note_frame(frame.len());
                    let (msg, _ctx): (Message, Option<TraceContext>) =
                        decode_with_context(frame).map_err(codec_err)?;
                    let Message::ShardProfile { profile, .. } = msg else {
                        return Err(ProtocolError::ReplayMismatch {
                            what: "shard profile frame decoded to a different message",
                        });
                    };
                    let slowest_global = profile
                        .slowest
                        .map(|(local, w)| (shard_inputs[s].0[local as usize] as u64, w));
                    p.ingest_shard(&profile, slowest_global).map_err(|_| {
                        ProtocolError::ReplayMismatch {
                            what: "corrupt shard profile frame",
                        }
                    })?;
                }
            }
        }

        // Scatter the shard estimates into the full-width vector the commit
        // journals (excluded machines: no verification evidence, 0).
        let mut estimates = vec![0.0; n];
        for (batch, (idx, ..)) in batches.iter().zip(&shard_inputs) {
            let frame = batch.up.first().ok_or(ProtocolError::ReplayMismatch {
                what: "missing shard estimate frame",
            })?;
            let (msg, _ctx): (Message, Option<TraceContext>) =
                decode_with_context(frame).map_err(codec_err)?;
            let Message::ShardEstimates { estimates: est, .. } = msg else {
                return Err(ProtocolError::ReplayMismatch {
                    what: "shard estimate frame decoded to a different message",
                });
            };
            if est.len() != idx.len() {
                return Err(CoreError::LengthMismatch {
                    expected: idx.len(),
                    actual: est.len(),
                }
                .into());
            }
            for (&i, v) in idx.iter().zip(est) {
                estimates[i] = v;
            }
        }
        root.set_now(epoch.elapsed().as_secs_f64());
        root.commit_allocation_sharded(rates, estimates)?;
        timings.allocate = t.elapsed().as_secs_f64();
    }

    // ---- Execute: Assign fan-out, shard-local acks, upward ingest. ----
    if root.phase() == CoordinatorPhase::Executing {
        let t = Instant::now();
        // Rebuild the pending fan-out from round state rather than trusting
        // the commit's return value: on a recovered round, machines whose
        // acks are already journalled must not be re-assigned.
        let assigns: Vec<Vec<(usize, Message)>> = {
            let bids = respondent_bids(root);
            let done = root.done_flags();
            let alloc = root
                .allocation()
                .ok_or(ProtocolError::MissingState { what: "allocation" })?;
            ranges
                .iter()
                .map(|r| {
                    r.clone()
                        .filter(|&i| bids[i].is_some() && !done[i])
                        .map(|i| {
                            (
                                i,
                                Message::Assign {
                                    round,
                                    rate: alloc.rate(i),
                                },
                            )
                        })
                        .collect()
                })
                .collect()
        };
        let wire = root.wire_context();
        let parent = root.phase_span();
        let batches = std::thread::scope(|scope| {
            let handles = ranges
                .iter()
                .enumerate()
                .zip(shard_slices(&mut agents, &ranges))
                .zip(&assigns)
                .map(|(((s, range), slice), shard_assigns)| {
                    let collector = &collector;
                    let range = range.clone();
                    scope.spawn(move || {
                        execute_shard(
                            s,
                            range,
                            slice,
                            shard_assigns,
                            faults,
                            wire,
                            parent,
                            &**collector,
                            epoch,
                        )
                    })
                })
                .collect();
            join_stage(handles, &mut stats)
        })?;
        if profiling {
            if let Some(p) = profiler.as_deref_mut() {
                for (s, batch) in batches.iter().enumerate() {
                    p.record_phase(s as u32, 2, batch.elapsed);
                    shard_phase[s][2] = batch.elapsed;
                }
            }
        }
        for frame in batches.into_iter().flat_map(|b| b.up) {
            let (msg, _ctx): (Message, Option<TraceContext>) =
                decode_with_context(&frame).map_err(codec_err)?;
            root.set_now(epoch.elapsed().as_secs_f64());
            root.ingest(&msg)?;
        }
        timings.execute = t.elapsed().as_secs_f64();

        // ---- Settle against the merged sum; fan payments back down. ----
        let t = Instant::now();
        let s_dd = merged.unwrap_or_else(|| merged_sum(root, &ranges));
        root.set_now(epoch.elapsed().as_secs_f64());
        let payments = root.settle_sharded(s_dd)?;
        let (sent, shard_settle) = deliver_payments(
            root,
            &mut agents,
            &ranges,
            payments,
            faults,
            &collector,
            epoch,
        )?;
        stats.messages += sent.messages;
        stats.bytes += sent.bytes;
        if profiling {
            if let Some(p) = profiler.as_deref_mut() {
                for (s, &e) in shard_settle.iter().enumerate() {
                    p.record_phase(s as u32, 3, e);
                    shard_phase[s][3] = e;
                }
            }
        }
        timings.settle = t.elapsed().as_secs_f64();
    } else if root.phase() == CoordinatorPhase::Done && !root.is_sealed() {
        // Recovered past settlement but before the seal: re-send the Payment
        // fan-out from the durable ledger (idempotent at the nodes), then
        // seal.
        let t = Instant::now();
        root.set_now(epoch.elapsed().as_secs_f64());
        let payments = root.resume(&[])?;
        let (sent, shard_settle) = deliver_payments(
            root,
            &mut agents,
            &ranges,
            payments,
            faults,
            &collector,
            epoch,
        )?;
        stats.messages += sent.messages;
        stats.bytes += sent.bytes;
        if profiling {
            if let Some(p) = profiler.as_deref_mut() {
                for (s, &e) in shard_settle.iter().enumerate() {
                    p.record_phase(s as u32, 3, e);
                    shard_phase[s][3] = e;
                }
            }
        }
        timings.settle = t.elapsed().as_secs_f64();
    }

    // Close the profiled round: fold the root's phase wall times into the
    // trend series, then surface this round's per-shard phase seconds as
    // `shard.phase.seconds` gauges (telemetry only — the round's outcome
    // was sealed above and never depends on the profiler).
    if profiling && root.is_sealed() {
        if let Some(p) = profiler.as_deref_mut() {
            p.finish_round(
                round.0,
                [
                    timings.collect,
                    timings.allocate,
                    timings.execute,
                    timings.settle,
                ],
            );
            if collector.enabled() {
                let at = epoch.elapsed().as_secs_f64();
                for (s, phases) in shard_phase.iter().enumerate() {
                    for (pidx, &seconds) in phases.iter().enumerate() {
                        collector.record(TelemetryEvent {
                            at,
                            name: Cow::Borrowed("shard.phase.seconds"),
                            cat: Subsystem::Shard,
                            kind: EventKind::Gauge { value: seconds },
                            fields: vec![
                                Field::u64("shard", s as u64),
                                Field::str("phase", PHASES[pidx]),
                            ],
                        });
                    }
                }
            }
        }
    }

    Ok((stats, timings))
}

/// Payment delivery tail shared by the fresh and recovered paths: partition
/// the fan-out by shard, deliver in parallel, seal the round. Returns the
/// delivery traffic plus each shard worker's wall time (profiler-only).
fn deliver_payments(
    root: &mut Coordinator<'_>,
    agents: &mut [NodeAgent],
    ranges: &[Range<usize>],
    payments: Vec<(u32, Message)>,
    faults: &FaultPlan,
    collector: &Arc<dyn Collector>,
    epoch: Instant,
) -> Result<(MessageStats, Vec<f64>), ProtocolError> {
    let wire = root.wire_context();
    let mut per_shard: Vec<Vec<(usize, Message)>> = vec![Vec::new(); ranges.len()];
    for (machine, msg) in payments {
        let i = machine as usize;
        per_shard[shard_of(ranges, i)].push((i, msg));
    }
    let mut stats = MessageStats::default();
    let batches = std::thread::scope(|scope| {
        let handles = ranges
            .iter()
            .enumerate()
            .zip(shard_slices(agents, ranges))
            .zip(&per_shard)
            .map(|(((s, range), slice), shard_payments)| {
                let collector = &*collector;
                let range = range.clone();
                scope.spawn(move || {
                    settle_shard(
                        s,
                        range,
                        slice,
                        shard_payments,
                        faults,
                        wire,
                        &**collector,
                        epoch,
                    )
                })
            })
            .collect();
        join_stage(handles, &mut stats)
    })?;
    let elapsed = batches.iter().map(|b| b.elapsed).collect();
    root.set_now(epoch.elapsed().as_secs_f64());
    root.seal()?;
    Ok((stats, elapsed))
}

/// Runs one fault-free sharded round from scratch and reads the outcome off
/// the root's ledger.
///
/// # Errors
/// Propagates mechanism, journal and codec errors — see
/// [`drive_sharded_round`].
///
/// # Panics
/// Panics if a shard worker thread panics or on protocol violations (the
/// root is strict: on a loss-free transport any violation is a bug).
pub fn run_round_sharded<M: VerifiedMechanism>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
    shards: usize,
) -> Result<ShardRoundReport, ProtocolError> {
    run_round_sharded_observed(mechanism, specs, config, shards, noop_collector())
}

/// [`run_round_sharded`] with a telemetry collector attached: the root's
/// `round`/`phase.*` spans plus per-shard `shard.collect` / `shard.verify` /
/// `shard.execute` spans (each parenting its machines' `sim.machine` spans)
/// and `shard.settle` instants, timestamped with wall-clock seconds since
/// the round started.
///
/// # Errors
/// Propagates mechanism, journal and codec errors — see
/// [`drive_sharded_round`].
///
/// # Panics
/// Panics if a shard worker thread panics or on protocol violations.
pub fn run_round_sharded_observed<M: VerifiedMechanism>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
    shards: usize,
    collector: Arc<dyn Collector>,
) -> Result<ShardRoundReport, ProtocolError> {
    let n = specs.len();
    let round = RoundId(0);
    let mut root = Coordinator::try_new(mechanism, n, config.total_rate, round, config.simulation)?
        .with_strict(true)
        .with_collector(Arc::clone(&collector));
    if collector.enabled() {
        root = root.with_trace(TraceContext::root(config.simulation.seed, round.0, true));
    }
    let (stats, timings) =
        drive_sharded_round(&mut root, specs, config, shards, &FaultPlan::none())?;
    report_from_root(&root, stats, shards, timings)
}

/// [`run_round_sharded_observed`] with a [`RoundProfiler`] attached: when
/// the profiler samples round 0 it collects the cross-shard rollup, the
/// per-phase trend series, and the per-shard `shard.phase.seconds` gauges,
/// all without perturbing the round's outcome (rates, payments, estimates,
/// exclusions, journal and message statistics are bit-identical to the
/// unprofiled run).
///
/// # Errors
/// Propagates mechanism, journal and codec errors — see
/// [`drive_sharded_round_profiled`].
///
/// # Panics
/// Panics if a shard worker thread panics or on protocol violations.
pub fn run_round_sharded_profiled<M: VerifiedMechanism>(
    mechanism: &M,
    specs: &[NodeSpec],
    config: &ProtocolConfig,
    shards: usize,
    collector: Arc<dyn Collector>,
    profiler: &mut RoundProfiler,
) -> Result<ShardRoundReport, ProtocolError> {
    let n = specs.len();
    let round = RoundId(0);
    let mut root = Coordinator::try_new(mechanism, n, config.total_rate, round, config.simulation)?
        .with_strict(true)
        .with_collector(Arc::clone(&collector));
    if collector.enabled() {
        root = root.with_trace(TraceContext::root(config.simulation.seed, round.0, true));
    }
    let (stats, timings) = drive_sharded_round_profiled(
        &mut root,
        specs,
        config,
        shards,
        &FaultPlan::none(),
        Some(profiler),
    )?;
    report_from_root(&root, stats, shards, timings)
}

/// Reads the full-width outcome off a settled root coordinator.
///
/// # Errors
/// Returns [`ProtocolError::MissingState`] if the round has not settled.
pub fn report_from_root(
    root: &Coordinator<'_>,
    stats: MessageStats,
    shards: usize,
    timings: ShardPhaseTimings,
) -> Result<ShardRoundReport, ProtocolError> {
    let n = root.bid_slots().len();
    let alloc = root
        .allocation()
        .ok_or(ProtocolError::MissingState { what: "allocation" })?;
    let payments = root
        .payments()
        .ok_or(ProtocolError::MissingState { what: "payments" })?
        .to_vec();
    let estimated = root
        .estimated_exec_values()
        .ok_or(ProtocolError::MissingState {
            what: "execution estimates",
        })?
        .to_vec();
    Ok(ShardRoundReport {
        rates: (0..n).map(|i| alloc.rate(i)).collect(),
        payments,
        estimated_exec_values: estimated,
        excluded: root.excluded().to_vec(),
        anomalies: *root.anomalies(),
        stats,
        shards: shard_ranges(n, shards).len(),
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalReplay, MemJournal};
    use crate::recovery::{recover_round, RoundContext};
    use crate::runtime::run_protocol_round;
    use lb_core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
    use lb_mechanism::CompensationBonusMechanism;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            total_rate: PAPER_ARRIVAL_RATE,
            simulation: SimulationConfig {
                horizon: 300.0,
                seed: 3,
                ..SimulationConfig::default()
            },
            ..ProtocolConfig::default()
        }
    }

    fn truthful_specs() -> Vec<NodeSpec> {
        paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect()
    }

    #[test]
    fn shard_ranges_partition_the_index_space() {
        for (n, k) in [(10, 3), (16, 4), (5, 5), (7, 64), (1, 1), (4096, 7)] {
            let ranges = shard_ranges(n, k);
            assert_eq!(ranges.len(), k.min(n));
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
                assert!(w[0].len() >= w[1].len(), "longer shards first");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()));
            for i in 0..n {
                assert!(ranges[shard_of(&ranges, i)].contains(&i));
            }
        }
    }

    #[test]
    fn fault_free_sharded_round_matches_the_single_coordinator_runtime() {
        let mech = CompensationBonusMechanism::paper();
        let mut specs = truthful_specs();
        specs[0] = NodeSpec::strategic(1.0, 1.0, 2.0); // a lazy machine
        let single = run_protocol_round(&mech, &specs, &config()).unwrap();
        let sharded = run_round_sharded(&mech, &specs, &config(), 4).unwrap();

        assert_eq!(single.rates, sharded.rates, "allocations bit-identical");
        assert_eq!(single.payments, sharded.payments, "payments bit-identical");
        assert_eq!(
            single.estimated_exec_values, sharded.estimated_exec_values,
            "verification estimates bit-identical"
        );
        assert!(sharded.excluded.iter().all(|&x| !x));
        assert_eq!(sharded.anomalies.total(), 0);
        assert_eq!(
            sharded.stats.messages,
            expected_sharded_message_count(specs.len(), 4)
        );
    }

    #[test]
    fn shard_count_is_a_no_op_for_the_round_outcome() {
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let reference = run_round_sharded(&mech, &specs, &config(), 1).unwrap();
        for k in [2usize, 3, 5, 7, 16, 64] {
            let report = run_round_sharded(&mech, &specs, &config(), k).unwrap();
            assert_eq!(reference.rates, report.rates, "k = {k}");
            assert_eq!(reference.payments, report.payments, "k = {k}");
            assert_eq!(
                reference.estimated_exec_values, report.estimated_exec_values,
                "k = {k}"
            );
        }
    }

    #[test]
    fn faulted_sharded_round_matches_the_lossy_runtime() {
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let faults = FaultPlan {
            lose_bids_from: vec![0],
            lose_acks_from: vec![3],
            partitioned: vec![5],
            lose_bid_attempts: vec![(9, 2)],
        };
        let single =
            crate::faults::run_protocol_round_with_faults(&mech, &specs, &config(), &faults)
                .unwrap();

        let mut root = Coordinator::try_new(
            &mech,
            specs.len(),
            config().total_rate,
            RoundId(0),
            config().simulation,
        )
        .unwrap()
        .with_strict(true);
        let (stats, _timings) =
            drive_sharded_round(&mut root, &specs, &config(), 3, &faults).unwrap();
        let report = report_from_root(&root, stats, 3, ShardPhaseTimings::default()).unwrap();

        assert_eq!(single.rates, report.rates);
        assert_eq!(single.payments, report.payments);
        assert_eq!(single.estimated_exec_values, report.estimated_exec_values);
        for &m in &[0usize, 5, 9] {
            assert!(report.excluded[m], "machine {m} excluded");
            assert_eq!(report.payments[m], 0.0);
        }
        assert!(!report.excluded[3], "a lost ack is not an exclusion");
        assert_eq!(report.anomalies.total(), 0, "drops cause no anomalies");
    }

    #[test]
    fn sharded_round_recovers_bit_identically_from_any_crash_point() {
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let cfg = ProtocolConfig {
            simulation: SimulationConfig {
                horizon: 40.0,
                ..config().simulation
            },
            ..config()
        };
        let ctx = RoundContext {
            n: specs.len(),
            total_rate: cfg.total_rate,
            round: RoundId(0),
            sim: cfg.simulation,
        };

        // Reference: one uninterrupted durable sharded round.
        let journal: Rc<RefCell<MemJournal>> = Rc::new(RefCell::new(MemJournal::new()));
        let mut root = Coordinator::try_new(&mech, ctx.n, ctx.total_rate, ctx.round, ctx.sim)
            .unwrap()
            .with_journal(journal.clone());
        drive_sharded_round(&mut root, &specs, &cfg, 4, &FaultPlan::none()).unwrap();
        let reference_bytes = journal.borrow().bytes().unwrap();
        let reference_payments = root.payments().unwrap().to_vec();
        assert!(root.is_sealed());

        // Crash at every record boundary, recover, finish, compare.
        let boundaries = JournalReplay::boundaries(&reference_bytes);
        assert!(boundaries.len() > 10, "round journals several records");
        for &cut in &boundaries {
            let truncated = reference_bytes[..cut].to_vec();
            let recovered: Rc<RefCell<dyn Journal>> =
                Rc::new(RefCell::new(MemJournal::from_bytes(truncated)));
            let (mut root, _report) =
                recover_round(&mech, recovered.clone(), &ctx, noop_collector(), 0.0).unwrap();
            drive_sharded_round(&mut root, &specs, &cfg, 4, &FaultPlan::none()).unwrap();
            assert_eq!(
                root.payments().unwrap(),
                &reference_payments[..],
                "payments after crash at byte {cut}"
            );
            let replayed_bytes = recovered.borrow().bytes().unwrap();
            assert_eq!(
                replayed_bytes, reference_bytes,
                "journal after crash at byte {cut}"
            );
        }
    }

    #[test]
    fn observed_sharded_round_records_replayable_shard_spans() {
        use lb_telemetry::{replay_spans, RingCollector};
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let ring = Arc::new(RingCollector::new(16_384));
        let k = 4;
        let report = run_round_sharded_observed(&mech, &specs, &config(), k, ring.clone()).unwrap();

        let events = ring.snapshot();
        let spans = replay_spans(&events).expect("recording replays cleanly");
        let phase_id = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} span recorded"))
                .id
        };
        let collect = phase_id("phase.collect_bids");
        let allocate = phase_id("phase.allocate");
        let execute = phase_id("phase.execute");
        for (name, parent) in [
            ("shard.collect", collect),
            ("shard.verify", allocate),
            ("shard.execute", execute),
        ] {
            let shard_spans: Vec<_> = spans.iter().filter(|s| s.name == name).collect();
            assert_eq!(shard_spans.len(), k, "{name}: one span per shard");
            assert!(
                shard_spans.iter().all(|s| s.parent == Some(parent)),
                "{name} parents on its phase span"
            );
        }
        // The per-machine verification spans nest inside their shard's span.
        let verify_ids: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "shard.verify")
            .map(|s| s.id)
            .collect();
        let machines: Vec<_> = spans.iter().filter(|s| s.name == "sim.machine").collect();
        assert_eq!(machines.len(), specs.len());
        assert!(machines
            .iter()
            .all(|s| s.parent.is_some_and(|p| verify_ids.contains(&p))));
        assert_eq!(
            events.iter().filter(|e| e.name == "shard.settle").count(),
            k
        );
        // The net counters agree with the report's frame accounting.
        let mut reg = lb_telemetry::MetricsRegistry::new();
        reg.ingest(&events);
        assert_eq!(reg.counter("net.messages"), report.stats.messages);
        assert_eq!(reg.counter("net.bytes"), report.stats.bytes);
    }

    #[test]
    fn profiled_round_is_bit_identical_and_fills_the_rollup() {
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let k = 4;
        let plain = run_round_sharded(&mech, &specs, &config(), k).unwrap();

        let mut profiler = RoundProfiler::new();
        let profiled = run_round_sharded_profiled(
            &mech,
            &specs,
            &config(),
            k,
            noop_collector(),
            &mut profiler,
        )
        .unwrap();

        assert_eq!(plain.rates, profiled.rates, "allocations bit-identical");
        assert_eq!(plain.payments, profiled.payments, "payments bit-identical");
        assert_eq!(
            plain.estimated_exec_values, profiled.estimated_exec_values,
            "estimates bit-identical"
        );
        assert_eq!(plain.excluded, profiled.excluded);
        assert_eq!(
            plain.stats.messages, profiled.stats.messages,
            "profile frames never enter the protocol's message count"
        );
        assert_eq!(plain.stats.bytes, profiled.stats.bytes);

        assert_eq!(profiler.rounds_profiled(), 1);
        let (frames, bytes) = profiler.frames();
        assert_eq!(frames, k as u64, "one profile frame per shard");
        assert!(bytes > 0);
        let rollup = profiler.rollup();
        assert_eq!(rollup.shards().count(), k);
        assert_eq!(
            rollup.fleet_machine().count(),
            specs.len() as u64,
            "every respondent's verification wall time lands in the fleet sketch"
        );
        for phase in 0..PHASES.len() {
            assert_eq!(rollup.fleet_phase(phase).count(), k as u64);
            assert_eq!(profiler.series()[phase].count(), 1);
        }
        for shard in rollup.shards() {
            let (machine, wall) = shard.slowest_machine.expect("slowest recorded");
            assert!(
                shard_ranges(specs.len(), k)[shard.shard as usize].contains(&(machine as usize)),
                "slowest machine id is global and inside its own shard"
            );
            assert!(wall.is_finite() && wall >= 0.0);
        }
        let (round, phase_wall) = profiler.last_round().expect("round recorded");
        assert_eq!(round, 0);
        assert!(phase_wall.iter().all(|w| w.is_finite() && *w >= 0.0));
    }

    #[test]
    fn sampled_profiler_skips_unsampled_rounds_without_perturbing_them() {
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let round = RoundId(1);
        let mut root = Coordinator::try_new(
            &mech,
            specs.len(),
            config().total_rate,
            round,
            config().simulation,
        )
        .unwrap()
        .with_strict(true);
        // Every-2nd-round sampling: round 1 is off-sample, so the profiled
        // driver must behave exactly like the plain one.
        let mut profiler = RoundProfiler::sampled(2);
        let (stats, _timings) = drive_sharded_round_profiled(
            &mut root,
            &specs,
            &config(),
            3,
            &FaultPlan::none(),
            Some(&mut profiler),
        )
        .unwrap();
        assert_eq!(
            stats.messages,
            expected_sharded_message_count(specs.len(), 3)
        );
        assert_eq!(profiler.rounds_profiled(), 0);
        assert_eq!(profiler.frames(), (0, 0));
        assert!(profiler.rollup().is_empty());
        let report = report_from_root(&root, stats, 3, ShardPhaseTimings::default()).unwrap();
        let plain = run_round_sharded(&mech, &specs, &config(), 3).unwrap();
        assert_eq!(plain.rates, report.rates);
        assert_eq!(plain.payments, report.payments);
    }

    #[test]
    fn profiled_round_emits_per_shard_phase_gauges_and_stays_replayable() {
        use lb_telemetry::{replay_spans, FieldValue, RingCollector};
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let ring = Arc::new(RingCollector::new(16_384));
        let k = 4;
        let mut profiler = RoundProfiler::new();
        let report =
            run_round_sharded_profiled(&mech, &specs, &config(), k, ring.clone(), &mut profiler)
                .unwrap();

        let events = ring.snapshot();
        replay_spans(&events).expect("profiled recording still replays cleanly");
        // The net counters still agree with the report: gauges and profile
        // frames are invisible to the protocol's accounting.
        let mut reg = lb_telemetry::MetricsRegistry::new();
        reg.ingest(&events);
        assert_eq!(reg.counter("net.messages"), report.stats.messages);
        assert_eq!(reg.counter("net.bytes"), report.stats.bytes);

        let gauges: Vec<_> = events
            .iter()
            .filter(|e| e.name == "shard.phase.seconds")
            .collect();
        assert_eq!(gauges.len(), k * PHASES.len(), "one gauge per shard-phase");
        for phase in PHASES {
            for shard in 0..k as u64 {
                assert!(
                    gauges.iter().any(|e| {
                        e.field("shard") == Some(&FieldValue::U64(shard))
                            && e.field("phase") == Some(&FieldValue::Str(phase.to_string()))
                    }),
                    "gauge for shard {shard} phase {phase}"
                );
            }
        }
    }

    #[test]
    fn sharded_transitions_enforce_width_agreement() {
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        let mut root = Coordinator::try_new(
            &mech,
            4,
            config().total_rate,
            RoundId(0),
            config().simulation,
        )
        .unwrap();
        assert!(matches!(
            drive_sharded_round(&mut root, &specs, &config(), 2, &FaultPlan::none()),
            Err(ProtocolError::Mechanism(MechanismError::Core(
                CoreError::LengthMismatch { .. }
            )))
        ));
    }

    // Pinned regression (ISSUE 10): shard ids that exceed the u32 wire
    // width answer with a typed error, not the former
    // `expect("shard count fits u32")` panic.
    #[test]
    fn oversized_shard_index_is_a_typed_error() {
        assert_eq!(shard_wire_id(0).unwrap(), 0);
        assert_eq!(shard_wire_id(u32::MAX as usize).unwrap(), u32::MAX);
        assert!(matches!(
            shard_wire_id(u32::MAX as usize + 1),
            Err(ProtocolError::TooManyShards { shard }) if shard == u32::MAX as usize + 1
        ));
        let err = shard_wire_id(usize::MAX).unwrap_err();
        assert!(err.to_string().contains("u32 wire-format limit"));
        assert!(!err.is_crash(), "an oversized shard id is not a crash");
    }

    // Pinned regression (ISSUE 10): a panicking shard worker surfaces as
    // `ProtocolError::ShardPanicked` after every other worker has been
    // joined — the former `handle.join().expect(...)` took the whole root
    // down, and an unjoined sibling would have re-raised at scope exit.
    #[test]
    fn panicking_shard_worker_degrades_to_a_typed_error() {
        let mut stats = MessageStats::default();
        let err = std::thread::scope(|scope| {
            let handles = vec![
                scope.spawn(|| {
                    let mut batch = ShardBatch::default();
                    batch.sent.messages = 3;
                    batch.sent.bytes = 96;
                    Ok(batch)
                }),
                scope.spawn(|| -> Result<ShardBatch, ProtocolError> {
                    panic!("worker dies mid-phase")
                }),
                scope.spawn(|| Ok(ShardBatch::default())),
            ];
            match join_stage(handles, &mut stats) {
                Err(e) => e,
                Ok(_) => panic!("a panicking worker must fail the stage"),
            }
        });
        assert!(matches!(err, ProtocolError::ShardPanicked { shard: 1 }));
        assert!(err.to_string().contains("shard 1"));
        // Traffic from the shards that completed is still accounted.
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.bytes, 96);
    }

    // Pinned regression (ISSUE 10): a machine that stays silent inside a
    // shard (its bid frame lost before the allocate stage) is routed
    // through the exclusion path — the verify fan-out used to index the
    // bid slot with `expect("respondent")`.
    #[test]
    fn silent_machine_inside_a_shard_is_excluded_not_a_panic() {
        let mech = CompensationBonusMechanism::paper();
        let specs = truthful_specs();
        // Machine 5 sits strictly inside the middle of three shards over
        // the paper's ten machines (ranges 0..4, 4..7, 7..10).
        let faults = FaultPlan {
            lose_bids_from: vec![5],
            ..FaultPlan::default()
        };
        let journal: Rc<RefCell<dyn Journal>> = Rc::new(RefCell::new(MemJournal::new()));
        let mut root = Coordinator::try_new(
            &mech,
            specs.len(),
            config().total_rate,
            RoundId(0),
            config().simulation,
        )
        .unwrap()
        .with_journal(Rc::clone(&journal))
        .with_strict(true);
        let (stats, _timings) =
            drive_sharded_round(&mut root, &specs, &config(), 3, &faults).unwrap();
        let report = report_from_root(&root, stats, 3, ShardPhaseTimings::default()).unwrap();
        assert!(report.excluded[5], "silent machine is excluded");
        assert_eq!(report.rates[5], 0.0);
        assert_eq!(report.payments[5], 0.0);
        assert!(root.is_sealed(), "round completes and seals");
        // The journal of the degraded round still replays cleanly.
        let replay = crate::journal::read_journal(&journal.borrow().bytes().unwrap()).unwrap();
        assert!(!replay.records.is_empty());
        assert_eq!(replay.truncated_tail, 0);
    }
}
