//! Crash recovery: deterministic replay of the round journal.
//!
//! After a coordinator process dies, the journal (see [`crate::journal`]) is
//! the only surviving state. [`recover_round`] rebuilds a [`Coordinator`]
//! from it: records of the current round are replayed in order into a fresh
//! state machine, the journal is re-attached so new appends continue where
//! the dead process stopped, and [`Coordinator::resume`] then derives the
//! fan-out the recovered round needs to move forward.
//!
//! Two properties make the replay safe:
//!
//! * **Determinism** — everything not read from the journal is recomputed
//!   from the same inputs the dead process had (same bids, same
//!   round-adjusted simulation seed), so a crash *before* a commit point
//!   reproduces bit-identical allocations and estimates.
//! * **Exactly-once settle** — payments are restored from the
//!   `PaymentsCommitted` record, never recomputed, and the re-sent Payment
//!   fan-out is idempotent at the nodes; a crash *after* the commit point
//!   therefore cannot change (or double-apply) any payment.
//!
//! [`split_rounds`] is the session-level view of the same bytes: the full
//! journal partitioned into per-round blocks, from which
//! [`crate::session::run_chaos_session_durable`] rebuilds quarantine state
//! and cumulative payment totals across a multi-round crash.

use crate::coordinator::{Coordinator, CoordinatorPhase, ProtocolError};
use crate::journal::{read_journal, ExclusionReason, Journal, JournalRecord, JournalReplay};
use crate::message::RoundId;
use lb_mechanism::VerifiedMechanism;
use lb_sim::driver::SimulationConfig;
use lb_telemetry::{Collector, Field, Subsystem};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// The out-of-band inputs a round's recovery needs: everything the journal
/// deliberately does *not* store because the driver re-derives it the same
/// way every time.
#[derive(Debug, Clone, Copy)]
pub struct RoundContext {
    /// Number of machines in the round.
    pub n: usize,
    /// Total rate `R` being allocated.
    pub total_rate: f64,
    /// The round being recovered.
    pub round: RoundId,
    /// Simulation config with the seed already round-adjusted
    /// (`base seed + round`), exactly as the original driver built it.
    pub sim: SimulationConfig,
}

/// What [`recover_round`] reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal records replayed into the coordinator (0 means the journal
    /// held nothing for this round: the recovery degenerated to a fresh
    /// round).
    pub records_replayed: u64,
    /// Torn-tail bytes found (and ignored) after the last valid record.
    pub truncated_tail: u64,
    /// Phase the coordinator came back in.
    pub phase: CoordinatorPhase,
    /// Whether the round was already sealed (nothing left to do).
    pub sealed: bool,
    /// Quarantine exclusions restored from the journal.
    pub quarantine_restored: u64,
}

/// Rebuilds a coordinator for `ctx.round` from `journal`.
///
/// The journal's valid prefix is parsed (a torn tail is ignored — the
/// backends truncate it on revival) and the *last* round block is replayed
/// if it belongs to `ctx.round`; otherwise — an empty journal, or a journal
/// whose last block is an earlier round — the coordinator starts fresh with
/// the journal attached, and the new round's records will append after the
/// existing ones.
///
/// Emits a `recover.replay` span with `recover.records` /
/// `recover.truncated_bytes` counters and one `recover.quarantine` instant
/// per restored quarantine exclusion when `collector` is enabled.
///
/// # Errors
/// [`ProtocolError::Journal`] if the journal cannot be read or holds hard
/// corruption; [`ProtocolError::ReplayMismatch`] if the records contradict
/// `ctx` (wrong width, wrong round, out-of-order commit records).
pub fn recover_round<'m>(
    mechanism: &'m dyn VerifiedMechanism,
    journal: Rc<RefCell<dyn Journal>>,
    ctx: &RoundContext,
    collector: Arc<dyn Collector>,
    now: f64,
) -> Result<(Coordinator<'m>, RecoveryReport), ProtocolError> {
    let bytes = journal.borrow().bytes()?;
    let replay = read_journal(&bytes)?;
    let block = current_round_block(&replay, ctx.round);

    let mut coordinator = Coordinator::new(mechanism, ctx.n, ctx.total_rate, ctx.round, ctx.sim)
        .with_collector(Arc::clone(&collector));

    if block.is_empty() {
        // Nothing durable for this round yet: fresh start, journal attached
        // so the round writes its own block.
        let report = RecoveryReport {
            records_replayed: 0,
            truncated_tail: replay.truncated_tail as u64,
            phase: coordinator.phase(),
            sealed: false,
            quarantine_restored: 0,
        };
        return Ok((coordinator.with_journal(journal), report));
    }

    let span = if collector.enabled() {
        collector.span_start(
            now,
            "recover.replay",
            Subsystem::Coordinator,
            vec![
                Field::u64("round", ctx.round.0),
                Field::u64("records", block.len() as u64),
            ],
        )
    } else {
        lb_telemetry::SpanId::NULL
    };

    let mut quarantine_restored = 0u64;
    for record in block {
        if let JournalRecord::ExclusionDecided {
            machine,
            reason: ExclusionReason::Quarantine,
        } = record
        {
            quarantine_restored += 1;
            if collector.enabled() {
                collector.instant(
                    now,
                    "recover.quarantine",
                    Subsystem::Coordinator,
                    vec![Field::u64("machine", u64::from(*machine))],
                );
            }
        }
        coordinator.apply_record(record)?;
    }
    coordinator.attach_replayed_journal(journal);

    if collector.enabled() {
        collector.counter(
            now,
            "recover.records",
            Subsystem::Coordinator,
            block.len() as u64,
        );
        if replay.truncated_tail > 0 {
            collector.counter(
                now,
                "recover.truncated_bytes",
                Subsystem::Coordinator,
                replay.truncated_tail as u64,
            );
        }
        collector.span_end(now, span);
    }

    let report = RecoveryReport {
        records_replayed: block.len() as u64,
        truncated_tail: replay.truncated_tail as u64,
        phase: coordinator.phase(),
        sealed: coordinator.is_sealed(),
        quarantine_restored,
    };
    Ok((coordinator, report))
}

/// The record slice of the journal's last round block, when it belongs to
/// `round`; empty otherwise.
fn current_round_block(replay: &JournalReplay, round: RoundId) -> &[JournalRecord] {
    let Some(start) = replay
        .records
        .iter()
        .rposition(|r| matches!(r, JournalRecord::RoundOpened { .. }))
    else {
        return &[];
    };
    match &replay.records[start] {
        JournalRecord::RoundOpened { round: r, .. } if *r == round => &replay.records[start..],
        _ => &[],
    }
}

/// One round's worth of journal records, as seen by session-level recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundBlock {
    /// Round identifier from the block's `RoundOpened`.
    pub round: RoundId,
    /// Machine count from the block's `RoundOpened`.
    pub n: usize,
    /// Total rate from the block's `RoundOpened`.
    pub total_rate: f64,
    /// Every record of the block, `RoundOpened` included.
    pub records: Vec<JournalRecord>,
    /// Whether the block ends in `RoundSealed` — a fully finished round.
    pub sealed: bool,
}

impl RoundBlock {
    /// Machines this block quarantined up front (session health policy).
    #[must_use]
    pub fn quarantined(&self) -> Vec<usize> {
        self.records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::ExclusionDecided {
                    machine,
                    reason: ExclusionReason::Quarantine,
                } => Some(*machine as usize),
                _ => None,
            })
            .collect()
    }

    /// Every machine this block excluded, for any reason.
    #[must_use]
    pub fn excluded(&self) -> Vec<usize> {
        self.records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::ExclusionDecided { machine, .. } => Some(*machine as usize),
                _ => None,
            })
            .collect()
    }

    /// The committed payment ledger, if the block got that far.
    #[must_use]
    pub fn payments(&self) -> Option<&[f64]> {
        self.records.iter().rev().find_map(|r| match r {
            JournalRecord::PaymentsCommitted { payments } => Some(payments.as_slice()),
            _ => None,
        })
    }
}

/// Partitions a replayed record stream into per-round blocks, in journal
/// order.
///
/// # Errors
/// [`ProtocolError::ReplayMismatch`] if a record precedes the first
/// `RoundOpened` — every record belongs to exactly one round block.
pub fn split_rounds(records: &[JournalRecord]) -> Result<Vec<RoundBlock>, ProtocolError> {
    let mut blocks: Vec<RoundBlock> = Vec::new();
    for record in records {
        if let JournalRecord::RoundOpened {
            round,
            n,
            total_rate,
        } = record
        {
            blocks.push(RoundBlock {
                round: *round,
                n: *n as usize,
                total_rate: *total_rate,
                records: vec![record.clone()],
                sealed: false,
            });
        } else {
            let Some(block) = blocks.last_mut() else {
                return Err(ProtocolError::ReplayMismatch {
                    what: "journal record before the first RoundOpened",
                });
            };
            block.records.push(record.clone());
            if matches!(record, JournalRecord::RoundSealed) {
                block.sealed = true;
            }
        }
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{encode_record, JournalError, MemJournal};
    use crate::message::Message;
    use lb_mechanism::CompensationBonusMechanism;
    use lb_sim::server::ServiceModel;
    use lb_telemetry::noop_collector;

    fn sim() -> SimulationConfig {
        SimulationConfig {
            horizon: 300.0,
            seed: 9,
            model: ServiceModel::StationaryDeterministic,
            workload: Default::default(),
            warmup: 0.0,
            estimator: lb_sim::estimator::EstimatorConfig::default(),
        }
    }

    fn ctx(n: usize) -> RoundContext {
        RoundContext {
            n,
            total_rate: 3.0,
            round: RoundId(0),
            sim: sim(),
        }
    }

    /// Drives a journalled 2-machine round to completion and returns the
    /// journal bytes plus the settled outcome.
    fn recorded_round(mech: &CompensationBonusMechanism) -> (Vec<u8>, Vec<f64>, Vec<f64>) {
        let journal: Rc<RefCell<MemJournal>> = Rc::new(RefCell::new(MemJournal::new()));
        let mut c = Coordinator::new(mech, 2, 3.0, RoundId(0), sim())
            .with_journal(Rc::clone(&journal) as Rc<RefCell<dyn Journal>>);
        let trues = [1.0, 2.0];
        for m in 0..2u32 {
            c.handle(
                &Message::Bid {
                    round: RoundId(0),
                    machine: m,
                    value: trues[m as usize],
                },
                &trues,
            )
            .unwrap();
        }
        for m in 0..2u32 {
            c.handle(
                &Message::ExecutionDone {
                    round: RoundId(0),
                    machine: m,
                },
                &trues,
            )
            .unwrap();
        }
        c.seal().unwrap();
        let rates = (0..2).map(|i| c.allocation().unwrap().rate(i)).collect();
        let payments = c.payments().unwrap().to_vec();
        let bytes = journal.borrow().bytes().unwrap();
        (bytes, rates, payments)
    }

    #[test]
    fn empty_journal_recovers_to_fresh_round() {
        let mech = CompensationBonusMechanism::paper();
        let journal: Rc<RefCell<dyn Journal>> = Rc::new(RefCell::new(MemJournal::new()));
        let (c, report) = recover_round(&mech, journal, &ctx(2), noop_collector(), 0.0).unwrap();
        assert_eq!(report.records_replayed, 0);
        assert_eq!(c.phase(), CoordinatorPhase::CollectingBids);
        assert!(!report.sealed);
    }

    #[test]
    fn full_journal_recovers_sealed_round_bit_identically() {
        let mech = CompensationBonusMechanism::paper();
        let (bytes, rates, payments) = recorded_round(&mech);
        let journal: Rc<RefCell<dyn Journal>> =
            Rc::new(RefCell::new(MemJournal::from_bytes(bytes)));
        let (mut c, report) =
            recover_round(&mech, journal, &ctx(2), noop_collector(), 0.0).unwrap();
        assert!(report.sealed);
        assert_eq!(report.phase, CoordinatorPhase::Done);
        assert!(report.records_replayed >= 6);
        for i in 0..2 {
            assert_eq!(
                c.allocation().unwrap().rate(i).to_bits(),
                rates[i].to_bits()
            );
            assert_eq!(c.payments().unwrap()[i].to_bits(), payments[i].to_bits());
        }
        // A sealed round has nothing left to send.
        assert!(c.resume(&[1.0, 2.0]).unwrap().is_empty());
    }

    #[test]
    fn recovery_from_every_prefix_completes_identically() {
        let mech = CompensationBonusMechanism::paper();
        let (bytes, rates, payments) = recorded_round(&mech);
        let trues = [1.0, 2.0];
        for cut in 0..=bytes.len() {
            let journal: Rc<RefCell<dyn Journal>> =
                Rc::new(RefCell::new(MemJournal::from_bytes(bytes[..cut].to_vec())));
            let (mut c, _) = recover_round(&mech, journal, &ctx(2), noop_collector(), 0.0).unwrap();
            // Finish the round: re-feed whatever the replayed state still
            // wants, exactly as the driver would.
            c.resume(&trues).unwrap();
            if c.phase() == CoordinatorPhase::CollectingBids {
                for m in 0..2u32 {
                    c.handle(
                        &Message::Bid {
                            round: RoundId(0),
                            machine: m,
                            value: trues[m as usize],
                        },
                        &trues,
                    )
                    .unwrap();
                }
            }
            if c.phase() == CoordinatorPhase::Executing {
                for m in 0..2u32 {
                    c.handle(
                        &Message::ExecutionDone {
                            round: RoundId(0),
                            machine: m,
                        },
                        &trues,
                    )
                    .unwrap();
                }
            }
            c.seal().unwrap();
            for i in 0..2 {
                assert_eq!(
                    c.allocation().unwrap().rate(i).to_bits(),
                    rates[i].to_bits(),
                    "cut at {cut}"
                );
                assert_eq!(
                    c.payments().unwrap()[i].to_bits(),
                    payments[i].to_bits(),
                    "cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn journal_for_a_different_round_starts_fresh() {
        let mech = CompensationBonusMechanism::paper();
        let (bytes, ..) = recorded_round(&mech);
        let journal: Rc<RefCell<dyn Journal>> =
            Rc::new(RefCell::new(MemJournal::from_bytes(bytes)));
        let mut other = ctx(2);
        other.round = RoundId(1);
        other.sim.seed = other.sim.seed.wrapping_add(1);
        let (c, report) = recover_round(&mech, journal, &other, noop_collector(), 0.0).unwrap();
        assert_eq!(report.records_replayed, 0);
        assert_eq!(c.phase(), CoordinatorPhase::CollectingBids);
    }

    #[test]
    fn corrupt_record_surfaces_as_journal_error() {
        let mech = CompensationBonusMechanism::paper();
        // A CRC-valid record whose payload is not a JournalRecord.
        let mut bytes = Vec::new();
        let payload = b"not a journal record".to_vec();
        bytes.extend_from_slice(&u32::try_from(payload.len()).unwrap().to_le_bytes());
        bytes.extend_from_slice(&crate::journal::crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let journal: Rc<RefCell<dyn Journal>> =
            Rc::new(RefCell::new(MemJournal::from_bytes(bytes)));
        let err = recover_round(&mech, journal, &ctx(2), noop_collector(), 0.0).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Journal(JournalError::CorruptRecord { .. })
        ));
    }

    #[test]
    fn split_rounds_partitions_and_flags_sealed_blocks() {
        let records = vec![
            JournalRecord::RoundOpened {
                round: RoundId(0),
                n: 2,
                total_rate: 3.0,
            },
            JournalRecord::BidAccepted {
                machine: 0,
                value: 1.0,
            },
            JournalRecord::PaymentsCommitted {
                payments: vec![0.5, 0.25],
            },
            JournalRecord::RoundSealed,
            JournalRecord::RoundOpened {
                round: RoundId(1),
                n: 2,
                total_rate: 3.0,
            },
            JournalRecord::ExclusionDecided {
                machine: 1,
                reason: ExclusionReason::Quarantine,
            },
        ];
        let blocks = split_rounds(&records).unwrap();
        assert_eq!(blocks.len(), 2);
        assert!(blocks[0].sealed);
        assert_eq!(blocks[0].payments().unwrap(), &[0.5, 0.25]);
        assert!(blocks[0].quarantined().is_empty());
        assert!(!blocks[1].sealed);
        assert_eq!(blocks[1].quarantined(), vec![1]);
        assert_eq!(blocks[1].excluded(), vec![1]);
        assert!(blocks[1].payments().is_none());
    }

    #[test]
    fn record_before_round_opened_is_a_replay_mismatch() {
        let records = vec![JournalRecord::BidAccepted {
            machine: 0,
            value: 1.0,
        }];
        assert!(matches!(
            split_rounds(&records),
            Err(ProtocolError::ReplayMismatch { .. })
        ));
    }

    #[test]
    fn encode_record_roundtrips_through_read_journal() {
        // Sanity link between the two layers recovery depends on.
        let rec = JournalRecord::ExecutionObserved { machine: 7 };
        let bytes = encode_record(&rec).unwrap();
        let replay = read_journal(&bytes).unwrap();
        assert_eq!(replay.records, vec![rec]);
        assert_eq!(replay.truncated_tail, 0);
    }
}
