//! Protocol engine for the centralized load balancing mechanism.
//!
//! The paper describes (end of Sec. 3) a centralized protocol: the mechanism
//! collects bids, computes the PR allocation, allocates the jobs, waits for
//! them to execute while estimating each computer's actual processing rate,
//! then computes and sends the payments — `O(n)` messages in total. This
//! crate realises that protocol as an actual message-passing system:
//!
//! * [`codec`] — a compact, non-self-describing binary serde format
//!   (bincode-style) used as the wire encoding; hand-built on [`bytes`].
//! * [`message`] — the protocol message vocabulary.
//! * [`network`] — an in-memory simulated network with per-link delay and
//!   complete message/byte accounting (validating the O(n) claim).
//! * [`node`] — node-side behaviour: what a machine bids and how it executes.
//! * [`coordinator`] — the mechanism centre as an explicit state machine.
//! * [`runtime`] — a deterministic single-threaded driver over the simulated
//!   network.
//! * [`threaded`] — the same protocol over real threads and crossbeam
//!   channels; produces bit-identical outcomes to the deterministic runtime.
//! * [`chaos`] — seeded probabilistic fault injection (drop / duplicate /
//!   corrupt / jitter) plus the retransmission protocol that survives it:
//!   missing bids are re-requested with exponential backoff before the
//!   exclusion fallback, and multi-round sessions quarantine and re-admit
//!   flaky machines ([`session::run_chaos_session`]).
//! * [`journal`] — a write-ahead round journal (length-prefixed, CRC-checked
//!   records over the wire codec) with in-memory, file-backed, and
//!   crash-injecting backends; torn tails are detected and truncated, never
//!   misparsed.
//! * [`recovery`] — deterministic replay of the journal into a fresh
//!   coordinator mid-round, with exactly-once settle (payments restore from
//!   the `PaymentsCommitted` record, never recompute) and an idempotent
//!   resume fan-out; [`session::run_chaos_session_durable`] crash-tests
//!   whole sessions against a seeded [`session::CrashPlan`].
//! * [`online`] — the streaming mechanism session: joins / leaves /
//!   re-bids maintain the harmonic sum `S = Σ 1/b_i` incrementally in
//!   double-double (O(1) amortized per event, drift re-summed below
//!   `1e-12` relative), and periodic `RoundTick`s settle full payment
//!   rounds against the incremental `S` through the sharded coordinator
//!   entry points.
//! * [`shard`] — a hierarchical two-level topology for million-machine
//!   rounds: `k` shard coordinators run collect/execute locally on worker
//!   threads, ship partial double-double harmonic sums upward as
//!   [`Message::ShardSum`] frames, and the root merges them with
//!   [`lb_core::merge_inv_sums`] — allocations and payments stay
//!   bit-identical to the single-coordinator round for every shard count.
//!
//! Every driver is instrumented for `lb-telemetry`: attach a collector
//! (e.g. [`lb_telemetry::RingCollector`]) via
//! [`Coordinator::with_collector`], [`SimNetwork::set_collector`],
//! [`ChaosRuntime::set_collector`] or the `*_observed` entry points, and the
//! round's phase spans, frame fates, retransmissions and session health
//! decisions are recorded on the simulated clock. The default collector is
//! the noop, which keeps the uninstrumented paths bit-identical and free.
//!
//! Instrumented rounds also carry a **wire-propagated trace context**: a
//! fixed-size [`lb_telemetry::TraceContext`] trailer appended to each
//! frame's payload ([`codec::encode_with_context`] /
//! [`codec::decode_with_context`]), so the receiving side continues the
//! sender's trace and a whole bid → allocate → execute → settle round —
//! retransmissions included — stitches into one trace across threads and
//! runtimes. Trailer-free frames decode exactly as before, head-based
//! sampling ([`lb_telemetry::Sampler`], [`session::run_chaos_session_sampled`],
//! [`threaded::run_protocol_round_threaded_sampled`]) decides per round
//! whether anything goes on the wire, and
//! [`threaded::run_protocol_round_threaded_exposed`] publishes the live
//! `/metrics` + `/trace` documents an [`lb_telemetry::ExposeServer`] serves.

pub mod audit;
pub mod chaos;
pub mod codec;
pub mod coordinator;
pub mod faults;
pub mod framing;
pub mod journal;
pub mod message;
pub mod network;
pub mod node;
pub mod online;
pub mod recovery;
pub mod runtime;
pub mod session;
pub mod shard;
pub mod threaded;
pub mod trace;

pub use audit::{
    audit_broadcast_cost, audit_broadcast_cost_observed, audit_settlement, AuditReport,
    SettlementRecord,
};
pub use chaos::{
    chaos_message_bound, run_chaos_round, ChaosConfig, ChaosNetStats, ChaosRoundReport,
    ChaosRuntime, RoundRecoveryStats,
};
pub use codec::{decode, decode_with_context, encode, encode_with_context, CodecError};
pub use coordinator::{Coordinator, CoordinatorPhase, ProtocolError};
pub use faults::{run_protocol_round_with_faults, FaultPlan};
pub use framing::{FrameReader, FrameWriter, DEFAULT_MAX_FRAME, MAX_FRAME_LEN};
pub use journal::{
    read_journal, CrashingJournal, ExclusionReason, FileJournal, Journal, JournalError,
    JournalRecord, JournalReplay, LedgerChain, MemJournal,
};
pub use message::{Message, RoundId};
pub use network::{FrameFate, MessageStats, NetPoll, SimNetwork};
pub use node::NodeSpec;
pub use online::{OnlineApplied, OnlineEvent, OnlineReport, OnlineSession, OnlineTick};
pub use recovery::{recover_round, split_rounds, RecoveryReport, RoundBlock, RoundContext};
pub use runtime::{
    run_protocol_round, run_protocol_round_observed, run_protocol_round_traced, ProtocolConfig,
    ProtocolOutcome,
};
pub use session::{
    run_chaos_session, run_chaos_session_durable, run_chaos_session_observed,
    run_chaos_session_sampled, run_online_session, run_session, ChaosRoundResult,
    ChaosSessionConfig, ChaosSessionReport, CrashPlan, DurableSessionReport, MachineHealth,
    SessionReport,
};
pub use shard::{
    drive_sharded_round, drive_sharded_round_profiled, expected_sharded_message_count,
    report_from_root, run_round_sharded, run_round_sharded_observed, run_round_sharded_profiled,
    shard_ranges, ShardPhaseTimings, ShardRoundReport,
};
pub use threaded::{
    run_protocol_round_threaded, run_protocol_round_threaded_exposed,
    run_protocol_round_threaded_observed, run_protocol_round_threaded_sampled,
};
pub use trace::{replay_check, Anomaly, AnomalyStats, RoundTrace, TraceEntry, TraceViolation};
