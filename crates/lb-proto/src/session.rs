//! Multi-round protocol sessions.
//!
//! The paper describes a single round; a deployed system runs the protocol
//! repeatedly (its load changes, its machines learn). A [`run_session`] call drives a
//! sequence of rounds, letting the caller supply each round's node behaviour
//! through a policy callback — which is how the strategic learners from
//! `lb-agents` plug into the real protocol (see the workspace integration
//! tests) — and aggregates the per-round outcomes and traffic statistics.
//!
//! [`run_chaos_session`] is the fault-tolerant variant: the same policy
//! interface driven over one persistent [`ChaosRuntime`], with per-machine
//! health tracking across rounds. A machine excluded too often in a row is
//! *quarantined* (excluded up front, no retransmission budget wasted on it)
//! for an exponentially growing number of rounds, then re-admitted — so a
//! transiently faulty machine rejoins the mechanism instead of being lost
//! forever, exactly the recovery story a deployed mechanism needs.
//! [`run_chaos_session_observed`] is the same driver with a telemetry
//! collector attached, recording the whole session down to frame level, and
//! [`run_chaos_session_sampled`] adds deterministic head-based sampling: a
//! [`Sampler`] decides per round — as a pure function of the chaos seed and
//! round index — whether that round records (and wire-propagates) its trace.

use crate::chaos::{ChaosConfig, ChaosNetStats, ChaosRoundReport, ChaosRuntime};
use crate::coordinator::ProtocolError;
use crate::journal::{CrashingJournal, Journal, JournalError};
use crate::message::RoundId;
use crate::node::NodeSpec;
use crate::online::{OnlineEvent, OnlineReport, OnlineSession};
use crate::recovery::split_rounds;
use crate::runtime::{run_protocol_round, ProtocolConfig, ProtocolOutcome};
use crate::trace::AnomalyStats;
use lb_mechanism::{MechanismError, VerifiedMechanism};
use lb_stats::{Rng, Xoshiro256StarStar};
use lb_telemetry::{noop_collector, Collector, Field, Sampler, Subsystem};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Summary of a finished session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Outcome of every round, in order.
    pub rounds: Vec<ProtocolOutcome>,
    /// Total control messages across the session.
    pub total_messages: u64,
    /// Total control bytes across the session.
    pub total_bytes: u64,
}

impl SessionReport {
    /// Number of rounds played.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the session is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Cumulative payment received by machine `i` over the session.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn cumulative_payment(&self, i: usize) -> f64 {
        self.rounds.iter().map(|r| r.payments[i]).sum()
    }

    /// Cumulative utility of machine `i` over the session.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn cumulative_utility(&self, i: usize) -> f64 {
        self.rounds.iter().map(|r| r.utilities[i]).sum()
    }
}

/// Runs `rounds` protocol rounds. Before each round, `policy` is called with
/// the round index and the previous round's outcome (None for the first) and
/// must return every node's behaviour for the round; after each round it can
/// observe the outcome through the next call.
///
/// Each round uses a distinct simulation seed (`base seed + round`) so the
/// measurement noise is independent across rounds.
///
/// # Errors
/// Propagates mechanism/protocol errors from any round.
///
/// # Panics
/// Panics if `rounds == 0` or the policy returns an empty spec list.
pub fn run_session<M, P>(
    mechanism: &M,
    config: &ProtocolConfig,
    rounds: u32,
    mut policy: P,
) -> Result<SessionReport, MechanismError>
where
    M: VerifiedMechanism,
    P: FnMut(u32, Option<&ProtocolOutcome>) -> Vec<NodeSpec>,
{
    assert!(rounds > 0, "run_session: need at least one round");
    let mut outcomes: Vec<ProtocolOutcome> = Vec::with_capacity(rounds as usize);
    let mut total_messages = 0;
    let mut total_bytes = 0;
    for round in 0..rounds {
        let specs = policy(round, outcomes.last());
        assert!(!specs.is_empty(), "run_session: policy returned no nodes");
        let mut round_config = *config;
        round_config.simulation.seed = config.simulation.seed.wrapping_add(u64::from(round));
        let outcome = run_protocol_round(mechanism, &specs, &round_config)?;
        total_messages += outcome.stats.messages;
        total_bytes += outcome.stats.bytes;
        outcomes.push(outcome);
    }
    Ok(SessionReport {
        rounds: outcomes,
        total_messages,
        total_bytes,
    })
}

/// Per-machine health state a chaos session tracks across rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineHealth {
    /// Exclusions in consecutive *active* rounds (quarantined rounds do not
    /// count — the machine was never given a chance).
    pub consecutive_exclusions: u32,
    /// Total rounds in which the machine was active but ended excluded.
    pub total_exclusions: u32,
    /// First round index at which the machine is active again; at or past
    /// this round the machine is not quarantined.
    pub quarantined_until: u32,
    /// Number of quarantine spells served so far.
    pub quarantine_spells: u32,
    /// Length of the most recent quarantine spell (rounds); doubles on each
    /// consecutive offence and resets when the machine completes a round.
    pub last_spell: u32,
}

/// Configuration of a fault-tolerant multi-round session.
#[derive(Debug, Clone)]
pub struct ChaosSessionConfig {
    /// Number of rounds to play.
    pub rounds: u32,
    /// Chaos and retransmission configuration, shared by every round.
    pub chaos: ChaosConfig,
    /// Quarantine a machine after this many consecutive exclusions (≥ 1).
    pub quarantine_after: u32,
    /// Length of the first quarantine spell, in rounds (≥ 1).
    pub quarantine_rounds: u32,
    /// Upper bound on a quarantine spell as it doubles (≥ `quarantine_rounds`).
    pub max_quarantine_rounds: u32,
}

impl ChaosSessionConfig {
    /// A session with the default health policy: quarantine after 2
    /// consecutive exclusions, first spell 1 round, spells capped at 8.
    ///
    /// # Panics
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn new(rounds: u32, chaos: ChaosConfig) -> Self {
        assert!(rounds > 0, "ChaosSessionConfig: need at least one round");
        Self {
            rounds,
            chaos,
            quarantine_after: 2,
            quarantine_rounds: 1,
            max_quarantine_rounds: 8,
        }
    }

    fn validate(&self) {
        assert!(
            self.rounds > 0,
            "ChaosSessionConfig: need at least one round"
        );
        assert!(
            self.quarantine_after >= 1,
            "ChaosSessionConfig: quarantine_after must be >= 1"
        );
        assert!(
            self.quarantine_rounds >= 1,
            "ChaosSessionConfig: quarantine_rounds must be >= 1"
        );
        assert!(
            self.max_quarantine_rounds >= self.quarantine_rounds,
            "ChaosSessionConfig: max_quarantine_rounds must be >= quarantine_rounds"
        );
    }
}

/// How one round of a chaos session ended.
#[derive(Debug)]
pub enum ChaosRoundResult {
    /// The round settled; full report attached.
    Settled(ChaosRoundReport),
    /// The round could not run (fewer than two machines' bids survived);
    /// the session lifted every quarantine and carried on.
    Aborted(MechanismError),
}

impl ChaosRoundResult {
    /// The settled report, if the round settled.
    #[must_use]
    pub fn settled(&self) -> Option<&ChaosRoundReport> {
        match self {
            Self::Settled(report) => Some(report),
            Self::Aborted(_) => None,
        }
    }
}

/// Summary of a finished fault-tolerant session.
#[derive(Debug)]
pub struct ChaosSessionReport {
    /// Result of every round, in order.
    pub rounds: Vec<ChaosRoundResult>,
    /// Final health state of every machine.
    pub health: Vec<MachineHealth>,
    /// Total control messages across the settled rounds.
    pub total_messages: u64,
    /// Total control bytes across the settled rounds.
    pub total_bytes: u64,
    /// Total bid re-requests sent across the settled rounds.
    pub total_retries: u64,
    /// Anomalies absorbed across the settled rounds.
    pub anomalies: AnomalyStats,
    /// Link-level fault counters aggregated across the settled rounds.
    pub faults: ChaosNetStats,
    /// Rounds that aborted with [`MechanismError::NeedTwoAgents`].
    pub aborted_rounds: u32,
    /// Times a previously excluded machine completed a round again.
    pub readmissions: u32,
}

impl ChaosSessionReport {
    /// Cumulative payment received by machine `i` over the settled rounds.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn cumulative_payment(&self, i: usize) -> f64 {
        self.rounds
            .iter()
            .filter_map(ChaosRoundResult::settled)
            .map(|r| r.outcome.payments[i])
            .sum()
    }
}

/// Applies the post-settlement health policy for one round: blame active
/// excluded machines (quarantining repeat offenders), clear the record of
/// active machines that completed. Shared by the live drivers and by
/// journal-based session recovery, so a machine's quarantine schedule is
/// bit-identical whether the round ran in this process or was replayed from
/// a dead one's journal.
fn apply_settled_health(
    health: &mut [MachineHealth],
    session: &ChaosSessionConfig,
    round: u32,
    active: &[bool],
    excluded: &[bool],
    readmissions: &mut u32,
    mut on_quarantine: impl FnMut(usize, u32),
    mut on_readmit: impl FnMut(usize),
) {
    for i in 0..health.len() {
        if !active[i] {
            continue; // quarantined: no chance given, no blame.
        }
        if excluded[i] {
            health[i].consecutive_exclusions += 1;
            health[i].total_exclusions += 1;
            if health[i].consecutive_exclusions >= session.quarantine_after {
                let spell = if health[i].last_spell == 0 {
                    session.quarantine_rounds
                } else {
                    (health[i].last_spell * 2).min(session.max_quarantine_rounds)
                };
                health[i].last_spell = spell;
                health[i].quarantined_until = round + 1 + spell;
                health[i].quarantine_spells += 1;
                on_quarantine(i, spell);
            }
        } else {
            if health[i].consecutive_exclusions > 0 {
                *readmissions += 1;
                on_readmit(i);
            }
            health[i].consecutive_exclusions = 0;
            health[i].last_spell = 0;
        }
    }
}

/// Applies the aborted-round health policy: wipe the slate so the next
/// round can recruit every machine.
fn apply_aborted_health(health: &mut [MachineHealth], round: u32) {
    for h in health {
        h.quarantined_until = round + 1;
        h.consecutive_exclusions = 0;
        h.last_spell = 0;
    }
}

/// Runs a fault-tolerant multi-round session over one persistent chaotic
/// network.
///
/// `policy` is called before each round with the round index and the most
/// recent *settled* report (`None` before the first settlement) and returns
/// every machine's behaviour — the same interface as [`run_session`], so
/// strategic agents plug in unchanged. Machine count must stay constant.
///
/// Health policy: a machine excluded in `quarantine_after` consecutive
/// active rounds is quarantined for `quarantine_rounds` rounds, doubling on
/// each repeat offence up to `max_quarantine_rounds`; completing a round
/// resets its record. A round that cannot run ([`MechanismError::NeedTwoAgents`])
/// is recorded as [`ChaosRoundResult::Aborted`] and lifts every quarantine.
/// If quarantines would leave fewer than two machines active, they are
/// lifted pre-emptively instead of aborting the round.
///
/// # Errors
/// Propagates unexpected mechanism errors ([`MechanismError::NeedTwoAgents`]
/// is handled internally as an aborted round).
///
/// # Panics
/// Panics if the configuration is invalid, the policy returns an empty spec
/// list, or the machine count changes between rounds.
pub fn run_chaos_session<M, P>(
    mechanism: &M,
    config: &ProtocolConfig,
    session: &ChaosSessionConfig,
    policy: P,
) -> Result<ChaosSessionReport, MechanismError>
where
    M: VerifiedMechanism,
    P: FnMut(u32, Option<&ChaosRoundReport>) -> Vec<NodeSpec>,
{
    run_chaos_session_observed(mechanism, config, session, policy, noop_collector())
}

/// [`run_chaos_session`] with a telemetry collector attached.
///
/// The collector is forwarded to the chaos runtime (and through it to the
/// network and each round's coordinator), so a single recording carries the
/// whole story of the session: frame-level `net.*` events, per-round
/// `round`/`phase.*` spans, retransmissions, and the session's own health
/// decisions — a `session.quarantine` instant (fields `machine`, `spell`)
/// when a machine is put away, `session.readmit` (field `machine`) when a
/// previously excluded machine completes a round again, and `session.abort`
/// (field `round`) when a round cannot run. All events carry simulated time
/// from the session's persistent clock, which never resets between rounds.
///
/// # Errors
/// Propagates unexpected mechanism errors, exactly as [`run_chaos_session`].
///
/// # Panics
/// Panics under the same conditions as [`run_chaos_session`].
pub fn run_chaos_session_observed<M, P>(
    mechanism: &M,
    config: &ProtocolConfig,
    session: &ChaosSessionConfig,
    policy: P,
    collector: Arc<dyn Collector>,
) -> Result<ChaosSessionReport, MechanismError>
where
    M: VerifiedMechanism,
    P: FnMut(u32, Option<&ChaosRoundReport>) -> Vec<NodeSpec>,
{
    run_chaos_session_sampled(
        mechanism,
        config,
        session,
        policy,
        collector,
        &Sampler::Always,
    )
}

/// [`run_chaos_session_observed`] with deterministic head-based sampling.
///
/// Before each round, `sampler` decides from `(chaos seed, round index)`
/// whether the round is sampled. Sampled rounds run with `collector` —
/// recording everything [`run_chaos_session_observed`] records, including
/// the wire-propagated trace context — while unsampled rounds run with the
/// noop collector and pay nothing, on the wire or off it. The decision is a
/// pure function of the inputs, so a replay of the same seeds samples
/// exactly the same rounds. Outcomes never depend on sampling.
///
/// # Errors
/// Propagates unexpected mechanism errors, exactly as [`run_chaos_session`].
///
/// # Panics
/// Panics under the same conditions as [`run_chaos_session`].
pub fn run_chaos_session_sampled<M, P>(
    mechanism: &M,
    config: &ProtocolConfig,
    session: &ChaosSessionConfig,
    mut policy: P,
    collector: Arc<dyn Collector>,
    sampler: &Sampler,
) -> Result<ChaosSessionReport, MechanismError>
where
    M: VerifiedMechanism,
    P: FnMut(u32, Option<&ChaosRoundReport>) -> Vec<NodeSpec>,
{
    session.validate();
    let mut runtime: Option<ChaosRuntime> = None;
    let mut health: Vec<MachineHealth> = Vec::new();
    let mut rounds: Vec<ChaosRoundResult> = Vec::with_capacity(session.rounds as usize);
    let mut last_settled: Option<ChaosRoundReport> = None;
    let mut total_messages = 0;
    let mut total_bytes = 0;
    let mut total_retries = 0;
    let mut anomalies = AnomalyStats::default();
    let mut faults = ChaosNetStats::default();
    let mut aborted_rounds = 0;
    let mut readmissions = 0;

    for round in 0..session.rounds {
        let specs = policy(round, last_settled.as_ref());
        assert!(
            !specs.is_empty(),
            "run_chaos_session: policy returned no nodes"
        );
        let n = specs.len();
        let runtime = runtime.get_or_insert_with(|| {
            health = vec![MachineHealth::default(); n];
            ChaosRuntime::new(n, *config, session.chaos.clone())
        });
        assert_eq!(
            health.len(),
            n,
            "run_chaos_session: machine count changed mid-session"
        );

        // Head-based sampling: an unsampled round runs with the noop
        // collector, so it records nothing and its frames carry no trace
        // trailer. The session's own instants follow the same decision.
        let round_collector = if sampler.admits(session.chaos.seed, u64::from(round)) {
            Arc::clone(&collector)
        } else {
            noop_collector()
        };
        runtime.set_collector(Arc::clone(&round_collector));

        let mut active: Vec<bool> = health
            .iter()
            .map(|h| round >= h.quarantined_until)
            .collect();
        if active.iter().filter(|&&a| a).count() < 2 {
            // Quarantine must never starve the mechanism below its minimum
            // participation: give everyone another chance instead.
            for h in &mut health {
                h.quarantined_until = round;
            }
            active = vec![true; n];
        }

        match runtime.run_round(mechanism, &specs, RoundId(u64::from(round)), &active) {
            Ok(report) => {
                total_messages += report.outcome.stats.messages;
                total_bytes += report.outcome.stats.bytes;
                total_retries += report.retries;
                anomalies.merge(&report.anomalies);
                faults.dropped += report.faults.dropped;
                faults.duplicated += report.faults.duplicated;
                faults.corrupted += report.faults.corrupted;
                let at = runtime.now().seconds();
                apply_settled_health(
                    &mut health,
                    session,
                    round,
                    &active,
                    &report.excluded,
                    &mut readmissions,
                    |i, spell| {
                        if round_collector.enabled() {
                            round_collector.instant(
                                at,
                                "session.quarantine",
                                Subsystem::Session,
                                vec![
                                    Field::u64("machine", i as u64),
                                    Field::u64("spell", u64::from(spell)),
                                ],
                            );
                        }
                    },
                    |i| {
                        if round_collector.enabled() {
                            round_collector.instant(
                                at,
                                "session.readmit",
                                Subsystem::Session,
                                vec![Field::u64("machine", i as u64)],
                            );
                        }
                    },
                );
                last_settled = Some(report.clone());
                rounds.push(ChaosRoundResult::Settled(report));
            }
            Err(MechanismError::NeedTwoAgents) => {
                aborted_rounds += 1;
                if round_collector.enabled() {
                    round_collector.instant(
                        runtime.now().seconds(),
                        "session.abort",
                        Subsystem::Session,
                        vec![Field::u64("round", u64::from(round))],
                    );
                }
                // Chaos silenced (or quarantine sidelined) too many machines
                // at once: wipe the slate so the next round can recruit all.
                apply_aborted_health(&mut health, round);
                rounds.push(ChaosRoundResult::Aborted(MechanismError::NeedTwoAgents));
            }
            Err(e) => return Err(e),
        }
    }

    Ok(ChaosSessionReport {
        rounds,
        health,
        total_messages,
        total_bytes,
        total_retries,
        anomalies,
        faults,
        aborted_rounds,
        readmissions,
    })
}

/// When to kill the coordinator process in a durable session: absolute byte
/// offsets into the journal at which the write (and the process) dies
/// mid-record, exactly like a crash between `write(2)` and `fsync(2)`.
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    /// Absolute journal byte offsets to crash at, each consumed once.
    pub offsets: Vec<u64>,
}

impl CrashPlan {
    /// A plan with no crashes: the durable session runs straight through.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Crash at exactly these journal byte offsets.
    #[must_use]
    pub fn at(offsets: Vec<u64>) -> Self {
        Self { offsets }
    }

    /// `crashes` pseudo-random crash offsets in `[0, max_byte)`, derived
    /// from `seed` — the same seed always kills the coordinator at the same
    /// bytes, so any durable-session failure reproduces from its seed.
    #[must_use]
    pub fn seeded(seed: u64, crashes: usize, max_byte: u64) -> Self {
        assert!(max_byte > 0, "CrashPlan::seeded: max_byte must be > 0");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let offsets = (0..crashes).map(|_| rng.next_below(max_byte)).collect();
        Self { offsets }
    }
}

/// Summary of a finished durable (crash-surviving) session.
#[derive(Debug)]
pub struct DurableSessionReport {
    /// The live part of the session, exactly as [`run_chaos_session`] would
    /// report it. Rounds reconstructed from a pre-existing journal are *not*
    /// re-listed here (their full reports died with the process that ran
    /// them); they are accounted in `recovered_rounds`, in the health state,
    /// and in `cumulative_payments`.
    pub session: ChaosSessionReport,
    /// Rounds whose outcome was reconstructed from the initial journal
    /// rather than run in this process.
    pub recovered_rounds: u32,
    /// Injected crashes consumed across the session.
    pub crashes: u64,
    /// Journal records replayed across all in-round recoveries.
    pub records_replayed: u64,
    /// Torn-tail bytes truncated across all recoveries.
    pub truncated_tail_bytes: u64,
    /// Per-machine payments summed over every `PaymentsCommitted` record —
    /// recovered rounds included. One record per settled round regardless of
    /// how many crashes interrupted it, so this total is exactly-once by
    /// construction.
    pub cumulative_payments: Vec<f64>,
    /// The journal's final byte content: feed it back as `initial_journal`
    /// to continue the session in a later process.
    pub journal_bytes: Vec<u8>,
}

/// [`run_chaos_session`] over a crash-injected write-ahead journal: the
/// coordinator process is killed at every offset in `plan` (tearing the
/// in-flight journal record mid-write), recovered by replaying the journal
/// ([`crate::recovery::recover_round`]), and resumed — and the session's
/// allocations, payments and quarantine schedule must come out identical to
/// an uninterrupted run, which is what the `recovery` fuzz oracle and the
/// durability tests assert.
///
/// `initial_journal` carries state across simulated process generations:
/// pass `Vec::new()` for a fresh session, or a previous run's
/// [`DurableSessionReport::journal_bytes`] to restart after its rounds. Any
/// torn tail in it is truncated on open; sealed rounds are folded into the
/// health state and payment totals (the policy is *not* re-consulted for
/// them); an unsealed final round is resumed mid-flight.
///
/// # Errors
/// Propagates unexpected mechanism errors; [`MechanismError::NeedTwoAgents`]
/// aborts the round, journal corruption surfaces as an infeasible-core
/// error, exactly as [`crate::coordinator::ProtocolError::into_mechanism`]
/// maps it.
///
/// # Panics
/// Panics if the configuration is invalid, the policy returns an empty spec
/// list, or the machine count changes between rounds (or differs from the
/// initial journal's).
pub fn run_chaos_session_durable<M, P>(
    mechanism: &M,
    config: &ProtocolConfig,
    session: &ChaosSessionConfig,
    mut policy: P,
    plan: &CrashPlan,
    initial_journal: Vec<u8>,
    collector: Arc<dyn Collector>,
) -> Result<DurableSessionReport, MechanismError>
where
    M: VerifiedMechanism,
    P: FnMut(u32, Option<&ChaosRoundReport>) -> Vec<NodeSpec>,
{
    session.validate();
    let journal = Rc::new(RefCell::new(CrashingJournal::with_crashes(
        initial_journal,
        plan.offsets.clone(),
    )));

    let mut crashes = 0u64;
    let mut records_replayed = 0u64;
    let mut truncated_tail_bytes = 0u64;
    let mut recovered_rounds = 0u32;
    let mut aborted_rounds = 0u32;
    let mut readmissions = 0u32;
    let mut health: Vec<MachineHealth> = Vec::new();
    let mut cumulative_payments: Vec<f64> = Vec::new();
    let mut start_round = 0u32;

    // Fold the pre-existing journal into session state: sealed blocks are
    // finished rounds, a non-final unsealed block is an aborted round (the
    // session moved on without sealing it), and an unsealed *final* block is
    // the round the dead process was in — resume it.
    let replay = {
        let mut j = journal.borrow_mut();
        j.revive().map_err(journal_to_mechanism)?
    };
    truncated_tail_bytes += replay.truncated_tail as u64;
    let blocks = split_rounds(&replay.records).map_err(ProtocolError::into_mechanism)?;
    for (bi, block) in blocks.iter().enumerate() {
        if health.is_empty() {
            health = vec![MachineHealth::default(); block.n];
            cumulative_payments = vec![0.0; block.n];
        }
        assert_eq!(
            health.len(),
            block.n,
            "run_chaos_session_durable: machine count changed in the journal"
        );
        let round = u32::try_from(block.round.0)
            .expect("run_chaos_session_durable: round index exceeds u32");
        let is_last = bi + 1 == blocks.len();
        if block.sealed {
            let quarantined = block.quarantined();
            let active: Vec<bool> = (0..block.n).map(|i| !quarantined.contains(&i)).collect();
            let mut excluded = vec![false; block.n];
            for i in block.excluded() {
                excluded[i] = true;
            }
            apply_settled_health(
                &mut health,
                session,
                round,
                &active,
                &excluded,
                &mut readmissions,
                |_, _| (),
                |_| (),
            );
            if let Some(p) = block.payments() {
                for (total, &x) in cumulative_payments.iter_mut().zip(p) {
                    *total += x;
                }
            }
            recovered_rounds += 1;
            start_round = round + 1;
        } else if !is_last {
            apply_aborted_health(&mut health, round);
            aborted_rounds += 1;
            recovered_rounds += 1;
            start_round = round + 1;
        } else {
            // The dead process's in-flight round: run it (the in-round
            // recovery inside `run_round_durable` replays this block).
            start_round = round;
        }
    }

    let mut runtime: Option<ChaosRuntime> = None;
    let mut rounds: Vec<ChaosRoundResult> = Vec::new();
    let mut last_settled: Option<ChaosRoundReport> = None;
    let mut total_messages = 0;
    let mut total_bytes = 0;
    let mut total_retries = 0;
    let mut anomalies = AnomalyStats::default();
    let mut faults = ChaosNetStats::default();

    for round in start_round..session.rounds {
        let specs = policy(round, last_settled.as_ref());
        assert!(
            !specs.is_empty(),
            "run_chaos_session_durable: policy returned no nodes"
        );
        let n = specs.len();
        let runtime = runtime.get_or_insert_with(|| {
            if health.is_empty() {
                health = vec![MachineHealth::default(); n];
                cumulative_payments = vec![0.0; n];
            }
            let mut rt = ChaosRuntime::new(n, *config, session.chaos.clone());
            rt.set_collector(Arc::clone(&collector));
            rt
        });
        assert_eq!(
            health.len(),
            n,
            "run_chaos_session_durable: machine count changed mid-session"
        );

        let mut active: Vec<bool> = health
            .iter()
            .map(|h| round >= h.quarantined_until)
            .collect();
        if active.iter().filter(|&&a| a).count() < 2 {
            for h in &mut health {
                h.quarantined_until = round;
            }
            active = vec![true; n];
        }

        match runtime.run_round_durable(
            mechanism,
            &specs,
            RoundId(u64::from(round)),
            &active,
            &journal,
        ) {
            Ok((report, stats)) => {
                crashes += stats.crashes;
                records_replayed += stats.records_replayed;
                truncated_tail_bytes += stats.truncated_bytes;
                total_messages += report.outcome.stats.messages;
                total_bytes += report.outcome.stats.bytes;
                total_retries += report.retries;
                anomalies.merge(&report.anomalies);
                faults.dropped += report.faults.dropped;
                faults.duplicated += report.faults.duplicated;
                faults.corrupted += report.faults.corrupted;
                let at = runtime.now().seconds();
                apply_settled_health(
                    &mut health,
                    session,
                    round,
                    &active,
                    &report.excluded,
                    &mut readmissions,
                    |i, spell| {
                        if collector.enabled() {
                            collector.instant(
                                at,
                                "session.quarantine",
                                Subsystem::Session,
                                vec![
                                    Field::u64("machine", i as u64),
                                    Field::u64("spell", u64::from(spell)),
                                ],
                            );
                        }
                    },
                    |i| {
                        if collector.enabled() {
                            collector.instant(
                                at,
                                "session.readmit",
                                Subsystem::Session,
                                vec![Field::u64("machine", i as u64)],
                            );
                        }
                    },
                );
                for (total, &x) in cumulative_payments.iter_mut().zip(&report.outcome.payments) {
                    *total += x;
                }
                last_settled = Some(report.clone());
                rounds.push(ChaosRoundResult::Settled(report));
            }
            Err(e) if matches!(e, ProtocolError::Mechanism(MechanismError::NeedTwoAgents)) => {
                aborted_rounds += 1;
                if collector.enabled() {
                    collector.instant(
                        runtime.now().seconds(),
                        "session.abort",
                        Subsystem::Session,
                        vec![Field::u64("round", u64::from(round))],
                    );
                }
                apply_aborted_health(&mut health, round);
                rounds.push(ChaosRoundResult::Aborted(MechanismError::NeedTwoAgents));
            }
            Err(e) => return Err(e.into_mechanism()),
        }
    }

    if collector.enabled() {
        // Durability counters, exported as gauges so `/metrics` and lb_top
        // show the session's crash history without access to the report.
        // The runtime is lazily constructed per round; a zero-round session
        // never builds one and reports its gauges at t = 0.
        let at = runtime.as_ref().map_or(0.0, |rt| rt.now().seconds());
        #[allow(clippy::cast_precision_loss)]
        let durable = [
            ("durable.crashes", crashes as f64),
            ("durable.recovered_rounds", recovered_rounds as f64),
            ("durable.records_replayed", records_replayed as f64),
            ("durable.truncated_tail_bytes", truncated_tail_bytes as f64),
        ];
        for (name, value) in durable {
            collector.gauge(at, name, Subsystem::Session, value);
        }
    }
    let journal_bytes = journal.borrow().bytes().map_err(journal_to_mechanism)?;
    Ok(DurableSessionReport {
        session: ChaosSessionReport {
            rounds,
            health,
            total_messages,
            total_bytes,
            total_retries,
            anomalies,
            faults,
            aborted_rounds,
            readmissions,
        },
        recovered_rounds,
        crashes,
        records_replayed,
        truncated_tail_bytes,
        cumulative_payments,
        journal_bytes,
    })
}

/// Runs a whole online session over a deterministic churn stream: the
/// seed-reproducible membership events from [`lb_sim::churn::ChurnGen`]
/// (truthful behaviour) drive an [`OnlineSession`] — joins / leaves /
/// re-bids update the harmonic sum incrementally in O(1) amortized, and
/// every [`lb_sim::churn::ChurnEvent::Tick`] settles a payment round.
///
/// This is the streaming counterpart of [`run_session`]: instead of a fixed
/// population re-running the full protocol each round, the population
/// churns between settles and only the settle itself is O(live).
///
/// # Errors
/// Propagates the first event or settle failure, as
/// [`OnlineSession::apply`].
pub fn run_online_session<M: VerifiedMechanism>(
    mechanism: &M,
    config: &ProtocolConfig,
    churn: lb_sim::churn::ChurnConfig,
    seed: u64,
) -> Result<OnlineReport, ProtocolError> {
    let mut session = OnlineSession::new(mechanism, *config)?;
    session.run(lb_sim::churn::ChurnGen::new(churn, seed).map(OnlineEvent::from_churn))
}

fn journal_to_mechanism(e: JournalError) -> MechanismError {
    ProtocolError::Journal(e).into_mechanism()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
    use lb_mechanism::CompensationBonusMechanism;
    use lb_sim::driver::SimulationConfig;
    use lb_sim::server::ServiceModel;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            total_rate: PAPER_ARRIVAL_RATE,
            link_latency: 0.001,
            simulation: SimulationConfig {
                horizon: 200.0,
                seed: 77,
                model: ServiceModel::StationaryDeterministic,
                workload: Default::default(),
                warmup: 0.0,
                estimator: lb_sim::estimator::EstimatorConfig::default(),
            },
        }
    }

    #[test]
    fn constant_policy_session_accumulates_linearly() {
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = paper_true_values()
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect();
        let report = run_session(&mech, &config(), 5, |_, _| specs.clone()).unwrap();
        assert_eq!(report.len(), 5);
        assert_eq!(report.total_messages, 5 * 80);
        // Deterministic service: every round pays the same, so the cumulative
        // payment is 5x a single round.
        let single = report.rounds[0].payments[0];
        assert!((report.cumulative_payment(0) - 5.0 * single).abs() < 1e-9);
        assert!((report.cumulative_utility(0) - 5.0 * report.rounds[0].utilities[0]).abs() < 1e-9);
    }

    #[test]
    fn policy_sees_previous_outcomes() {
        let mech = CompensationBonusMechanism::paper();
        let trues = paper_true_values();
        let mut observed_rounds = Vec::new();
        let report = run_session(&mech, &config(), 3, |round, prev| {
            observed_rounds.push((round, prev.is_some()));
            // A reactive policy: machine 0 throttles whenever its previous
            // utility was above 10 (an arbitrary rule to exercise the plumbing).
            let throttle = prev.is_some_and(|o| o.utilities[0] > 10.0);
            trues
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    if i == 0 && throttle {
                        NodeSpec::strategic(t, t, 2.0 * t)
                    } else {
                        NodeSpec::truthful(t)
                    }
                })
                .collect()
        })
        .unwrap();
        assert_eq!(observed_rounds, vec![(0, false), (1, true), (2, true)]);
        // Round 0 truthful (utility 19.13 > 10) -> round 1 throttles -> its
        // utility falls below 10 -> round 2 truthful again.
        assert!(report.rounds[0].utilities[0] > 10.0);
        assert!(report.rounds[1].utilities[0] < report.rounds[0].utilities[0]);
        assert!(report.rounds[2].utilities[0] > 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let mech = CompensationBonusMechanism::paper();
        let _ = run_session(&mech, &config(), 0, |_, _| vec![NodeSpec::truthful(1.0)]);
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use crate::faults::FaultPlan;
    use lb_mechanism::CompensationBonusMechanism;
    use lb_sim::driver::SimulationConfig;
    use lb_sim::server::ServiceModel;

    const RATE: f64 = 12.0;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            total_rate: RATE,
            link_latency: 0.001,
            simulation: SimulationConfig {
                horizon: 50.0,
                seed: 5,
                model: ServiceModel::StationaryDeterministic,
                workload: Default::default(),
                warmup: 0.0,
                estimator: lb_sim::estimator::EstimatorConfig::default(),
            },
        }
    }

    fn specs(n: usize) -> Vec<NodeSpec> {
        (0..n)
            .map(|i| NodeSpec::truthful(1.0 + i as f64 * 0.5))
            .collect()
    }

    #[test]
    fn reliable_chaos_session_matches_plain_session() {
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(6);
        let plain = run_session(&mech, &config(), 4, |_, _| specs.clone()).unwrap();
        let session = ChaosSessionConfig::new(4, ChaosConfig::reliable(0));
        let report = run_chaos_session(&mech, &config(), &session, |_, _| specs.clone()).unwrap();

        assert_eq!(report.rounds.len(), 4);
        assert_eq!(report.aborted_rounds, 0);
        assert_eq!(report.total_retries, 0);
        assert_eq!(report.anomalies.total(), 0);
        assert_eq!(report.faults, ChaosNetStats::default());
        assert_eq!(report.total_messages, plain.total_messages);
        assert_eq!(report.total_bytes, plain.total_bytes);
        for (r, result) in report.rounds.iter().enumerate() {
            let settled = result.settled().expect("reliable round settles");
            assert_eq!(
                settled.outcome.payments, plain.rounds[r].payments,
                "round {r}"
            );
            assert_eq!(settled.outcome.rates, plain.rounds[r].rates, "round {r}");
        }
        assert!(report.health.iter().all(|h| *h == MachineHealth::default()));
    }

    #[test]
    fn transient_fault_quarantine_then_readmission() {
        // Machine 0's first 4 bid transmissions ever are lost — exactly its
        // round-0 budget (1 initial + 3 retries). It is excluded in round 0,
        // quarantined for round 1, and readmitted in round 2 where its fifth
        // transmission finally gets through.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(3);
        let chaos = ChaosConfig {
            plan: FaultPlan {
                lose_bid_attempts: vec![(0, 4)],
                ..FaultPlan::none()
            },
            ..ChaosConfig::reliable(1)
        };
        let session = ChaosSessionConfig {
            quarantine_after: 1,
            ..ChaosSessionConfig::new(3, chaos)
        };
        let report = run_chaos_session(&mech, &config(), &session, |_, _| specs.clone()).unwrap();

        let r0 = report.rounds[0]
            .settled()
            .expect("round 0 settles over the other two");
        assert!(
            r0.excluded[0],
            "round 0: machine 0 silent through every retry"
        );
        assert_eq!(r0.retries, 3, "round 0 spends the full retry budget");

        let r1 = report.rounds[1].settled().expect("round 1 settles");
        assert!(r1.excluded[0], "round 1: machine 0 quarantined up front");
        assert_eq!(
            r1.retries, 0,
            "no retransmission budget wasted on a quarantined machine"
        );

        let r2 = report.rounds[2].settled().expect("round 2 settles");
        assert!(!r2.excluded[0], "round 2: machine 0 is back");
        assert!(r2.outcome.rates[0] > 0.0);

        assert_eq!(report.readmissions, 1);
        assert_eq!(report.total_retries, 3);
        assert_eq!(report.health[0].total_exclusions, 1);
        assert_eq!(report.health[0].quarantine_spells, 1);
        assert_eq!(report.health[0].consecutive_exclusions, 0);
    }

    #[test]
    fn persistent_offender_backs_off_exponentially() {
        // Machine 0 never gets a bid through: each time it returns from
        // quarantine it re-offends, and its spells double up to the cap.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(3);
        let chaos = ChaosConfig {
            plan: FaultPlan {
                lose_bids_from: vec![0],
                ..FaultPlan::none()
            },
            ..ChaosConfig::reliable(2)
        };
        let session = ChaosSessionConfig {
            quarantine_after: 1,
            quarantine_rounds: 1,
            max_quarantine_rounds: 2,
            ..ChaosSessionConfig::new(7, chaos)
        };
        let report = run_chaos_session(&mech, &config(), &session, |_, _| specs.clone()).unwrap();

        // Active (and excluded) in rounds 0, 2, 5; quarantined 1, 3-4, 6.
        assert_eq!(report.aborted_rounds, 0);
        assert_eq!(report.health[0].total_exclusions, 3);
        assert_eq!(report.health[0].quarantine_spells, 3);
        assert_eq!(
            report.health[0].last_spell, 2,
            "spell doubled then hit the cap"
        );
        assert_eq!(report.total_retries, 9, "3 active rounds x 3 retries");
        assert_eq!(report.readmissions, 0);
        for result in &report.rounds {
            let settled = result
                .settled()
                .expect("two healthy machines keep settling");
            assert!(settled.excluded[0]);
            let total: f64 = settled.outcome.rates.iter().sum();
            assert!((total - RATE).abs() < 1e-6);
        }
        // The healthy machines never suffer.
        assert_eq!(report.health[1], MachineHealth::default());
        assert_eq!(report.health[2], MachineHealth::default());
    }

    #[test]
    fn aborted_rounds_are_recorded_and_session_continues() {
        // Two machines, one permanently silent: every round fails its
        // minimum-participation requirement, yet the session never panics
        // and reports each abort.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(2);
        let chaos = ChaosConfig {
            plan: FaultPlan {
                lose_bids_from: vec![0],
                ..FaultPlan::none()
            },
            ..ChaosConfig::reliable(3)
        };
        let session = ChaosSessionConfig::new(2, chaos);
        let report = run_chaos_session(&mech, &config(), &session, |_, _| specs.clone()).unwrap();
        assert_eq!(report.rounds.len(), 2);
        assert_eq!(report.aborted_rounds, 2);
        assert!(report.rounds.iter().all(|r| r.settled().is_none()));
        assert_eq!(report.readmissions, 0);
    }

    #[test]
    fn policy_sees_latest_settled_report() {
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(3);
        let mut observed = Vec::new();
        let session = ChaosSessionConfig::new(3, ChaosConfig::reliable(4));
        let _ = run_chaos_session(&mech, &config(), &session, |round, prev| {
            observed.push((round, prev.is_some()));
            specs.clone()
        })
        .unwrap();
        assert_eq!(observed, vec![(0, false), (1, true), (2, true)]);
    }

    #[test]
    fn heavy_chaos_sessions_never_panic_and_keep_invariants() {
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(6);
        for seed in 0..20u64 {
            let session = ChaosSessionConfig::new(6, ChaosConfig::heavy(seed));
            let report =
                run_chaos_session(&mech, &config(), &session, |_, _| specs.clone()).unwrap();
            assert_eq!(report.rounds.len(), 6, "seed {seed}");
            let mut settled_messages = 0;
            for result in &report.rounds {
                let Some(r) = result.settled() else { continue };
                settled_messages += r.outcome.stats.messages;
                let total: f64 = r.outcome.rates.iter().sum();
                assert!((total - RATE).abs() < 1e-6, "seed {seed}");
                for (i, &ex) in r.excluded.iter().enumerate() {
                    if !ex {
                        assert!(r.outcome.utilities[i] >= -1e-6, "seed {seed} machine {i}");
                    }
                }
            }
            assert_eq!(report.total_messages, settled_messages, "seed {seed}");
        }
    }

    #[test]
    fn sampled_session_records_only_admitted_rounds() {
        use lb_telemetry::{replay_spans, EventKind, RingCollector};
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(3);
        let session = ChaosSessionConfig::new(4, ChaosConfig::reliable(9));
        let ring = Arc::new(RingCollector::new(65_536));
        let sampled = run_chaos_session_sampled(
            &mech,
            &config(),
            &session,
            |_, _| specs.clone(),
            ring.clone(),
            &Sampler::PerRound(2),
        )
        .unwrap();

        // PerRound(2) admits rounds 0 and 2: exactly two round spans, and
        // the partial recording still replays cleanly.
        let events = ring.snapshot();
        let round_spans = events
            .iter()
            .filter(|e| e.name == "round" && matches!(e.kind, EventKind::SpanStart { .. }))
            .count();
        assert_eq!(round_spans, 2);
        replay_spans(&events).expect("sampled recording replays cleanly");

        // Sampling never changes what the mechanism computes — only the
        // trailer bytes on sampled rounds' frames.
        let plain = run_chaos_session(&mech, &config(), &session, |_, _| specs.clone()).unwrap();
        for (s, p) in sampled.rounds.iter().zip(plain.rounds.iter()) {
            assert_eq!(
                s.settled().unwrap().outcome.payments,
                p.settled().unwrap().outcome.payments
            );
            assert_eq!(
                s.settled().unwrap().outcome.rates,
                p.settled().unwrap().outcome.rates
            );
        }
        assert_eq!(sampled.total_messages, plain.total_messages);
        assert!(sampled.total_bytes > plain.total_bytes);
    }

    #[test]
    #[should_panic(expected = "machine count changed")]
    fn machine_count_change_is_rejected() {
        let mech = CompensationBonusMechanism::paper();
        let session = ChaosSessionConfig::new(2, ChaosConfig::reliable(0));
        let _ = run_chaos_session(&mech, &config(), &session, |round, _| {
            specs(if round == 0 { 3 } else { 4 })
        });
    }

    #[test]
    fn duplicated_settle_is_idempotent() {
        // Pinned regression: with duplicate_prob = 1.0 every frame — the
        // settle fan-out included — is delivered twice. The duplicate
        // Payment must hit the node's first-write-wins guard, so payments,
        // utilities and the session's cumulative payment are bit-identical
        // to a reliable run, and the duplicates never inflate the ledger.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(4);
        let clean_session = ChaosSessionConfig::new(3, ChaosConfig::reliable(11));
        let clean =
            run_chaos_session(&mech, &config(), &clean_session, |_, _| specs.clone()).unwrap();

        let dup = ChaosConfig {
            duplicate_prob: 1.0,
            ..ChaosConfig::reliable(11)
        };
        let dup_session = ChaosSessionConfig::new(3, dup);
        let report =
            run_chaos_session(&mech, &config(), &dup_session, |_, _| specs.clone()).unwrap();

        assert!(
            report.faults.duplicated > 0,
            "the duplicate fate must actually fire"
        );
        for (r, (d, c)) in report.rounds.iter().zip(clean.rounds.iter()).enumerate() {
            let d = d.settled().expect("duplicated round settles");
            let c = c.settled().expect("clean round settles");
            assert_eq!(d.outcome.payments, c.outcome.payments, "round {r}");
            assert_eq!(d.outcome.rates, c.outcome.rates, "round {r}");
            // Utilities are computed from the node's own received payment:
            // a double-counted duplicate would show up right here.
            assert_eq!(d.outcome.utilities, c.outcome.utilities, "round {r}");
        }
        for i in 0..4 {
            assert_eq!(
                report.cumulative_payment(i).to_bits(),
                clean.cumulative_payment(i).to_bits(),
                "machine {i}"
            );
        }
    }
}

#[cfg(test)]
mod durable_tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::journal::JournalRecord;
    use crate::journal::JournalReplay;
    use lb_mechanism::CompensationBonusMechanism;
    use lb_sim::driver::SimulationConfig;
    use lb_sim::server::ServiceModel;

    const RATE: f64 = 12.0;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            total_rate: RATE,
            link_latency: 0.001,
            simulation: SimulationConfig {
                horizon: 50.0,
                seed: 5,
                model: ServiceModel::StationaryDeterministic,
                workload: Default::default(),
                warmup: 0.0,
                estimator: lb_sim::estimator::EstimatorConfig::default(),
            },
        }
    }

    fn specs(n: usize) -> Vec<NodeSpec> {
        (0..n)
            .map(|i| NodeSpec::truthful(1.0 + i as f64 * 0.5))
            .collect()
    }

    fn assert_same_rounds(durable: &DurableSessionReport, plain: &ChaosSessionReport) {
        assert_eq!(durable.session.rounds.len(), plain.rounds.len());
        for (r, (d, p)) in durable
            .session
            .rounds
            .iter()
            .zip(plain.rounds.iter())
            .enumerate()
        {
            let d = d.settled().expect("durable round settles");
            let p = p.settled().expect("plain round settles");
            assert_eq!(d.outcome.payments, p.outcome.payments, "round {r}");
            assert_eq!(d.outcome.rates, p.outcome.rates, "round {r}");
            assert_eq!(d.excluded, p.excluded, "round {r}");
        }
    }

    #[test]
    fn crash_free_durable_session_matches_plain_chaos_session() {
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(3);
        let session = ChaosSessionConfig::new(3, ChaosConfig::reliable(7));
        let plain = run_chaos_session(&mech, &config(), &session, |_, _| specs.clone()).unwrap();
        let durable = run_chaos_session_durable(
            &mech,
            &config(),
            &session,
            |_, _| specs.clone(),
            &CrashPlan::none(),
            Vec::new(),
            noop_collector(),
        )
        .unwrap();

        assert_eq!(durable.crashes, 0);
        assert_eq!(durable.recovered_rounds, 0);
        assert_eq!(durable.records_replayed, 0);
        assert_same_rounds(&durable, &plain);
        for i in 0..3 {
            assert_eq!(
                durable.cumulative_payments[i].to_bits(),
                plain.cumulative_payment(i).to_bits(),
                "machine {i}"
            );
        }
        assert!(!durable.journal_bytes.is_empty());
    }

    #[test]
    fn crashing_at_every_record_boundary_is_invisible_in_the_outcome() {
        // Reference: a crash-free durable run, which also yields the exact
        // journal this session writes. Then re-run with the coordinator
        // killed at every record boundary of that journal — each write dies
        // mid-`append`, gets truncated on revival and replayed — and demand
        // the same session, bit for bit.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(3);
        let session = ChaosSessionConfig::new(2, ChaosConfig::reliable(13));
        let reference = run_chaos_session_durable(
            &mech,
            &config(),
            &session,
            |_, _| specs.clone(),
            &CrashPlan::none(),
            Vec::new(),
            noop_collector(),
        )
        .unwrap();

        let cuts: Vec<u64> = JournalReplay::boundaries(&reference.journal_bytes)
            .into_iter()
            .map(|b| b as u64)
            .collect();
        let expected_crashes = cuts.len() as u64;
        let crashed = run_chaos_session_durable(
            &mech,
            &config(),
            &session,
            |_, _| specs.clone(),
            &CrashPlan::at(cuts),
            Vec::new(),
            noop_collector(),
        )
        .unwrap();

        assert!(
            crashed.crashes >= expected_crashes - 1,
            "all boundary crashes fire"
        );
        assert!(crashed.records_replayed > 0);
        assert_same_rounds(&crashed, &reference.session);
        for i in 0..3 {
            assert_eq!(
                crashed.cumulative_payments[i].to_bits(),
                reference.cumulative_payments[i].to_bits(),
                "machine {i}"
            );
        }
        assert_sealed_blocks_match(&crashed.journal_bytes, &reference.journal_bytes);
    }

    /// The healed journal need not be byte-identical to the reference one —
    /// in-flight frames re-delivered after a crash can reorder records
    /// within a block — but it must replay to the same sealed rounds with
    /// the same committed payments.
    fn assert_sealed_blocks_match(got: &[u8], want: &[u8]) {
        let got = split_rounds(&crate::journal::read_journal(got).unwrap().records).unwrap();
        let want = split_rounds(&crate::journal::read_journal(want).unwrap().records).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.round, w.round);
            assert_eq!(g.sealed, w.sealed);
            assert_eq!(g.payments(), w.payments(), "round {:?}", g.round);
        }
    }

    #[test]
    fn mid_record_crashes_truncate_the_torn_tail_and_still_converge() {
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(3);
        let session = ChaosSessionConfig::new(2, ChaosConfig::reliable(13));
        let reference = run_chaos_session_durable(
            &mech,
            &config(),
            &session,
            |_, _| specs.clone(),
            &CrashPlan::none(),
            Vec::new(),
            noop_collector(),
        )
        .unwrap();

        let max_byte = reference.journal_bytes.len() as u64;
        for seed in 0..5u64 {
            let plan = CrashPlan::seeded(seed, 4, max_byte);
            let crashed = run_chaos_session_durable(
                &mech,
                &config(),
                &session,
                |_, _| specs.clone(),
                &plan,
                Vec::new(),
                noop_collector(),
            )
            .unwrap();
            assert!(crashed.crashes > 0, "seed {seed}");
            assert_same_rounds(&crashed, &reference.session);
            assert_sealed_blocks_match(&crashed.journal_bytes, &reference.journal_bytes);
        }
    }

    #[test]
    fn quarantine_state_survives_a_crash_between_rounds() {
        // Generation 1: machine 0 never gets a bid through round 0, is
        // excluded, and (quarantine_after = 1) earns a 1-round quarantine.
        // The process then "dies" — all that survives is the journal.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(3);
        let faulty = ChaosConfig {
            plan: FaultPlan {
                lose_bids_from: vec![0],
                ..FaultPlan::none()
            },
            ..ChaosConfig::reliable(1)
        };
        let gen1_session = ChaosSessionConfig {
            quarantine_after: 1,
            ..ChaosSessionConfig::new(1, faulty)
        };
        let gen1 = run_chaos_session_durable(
            &mech,
            &config(),
            &gen1_session,
            |_, _| specs.clone(),
            &CrashPlan::none(),
            Vec::new(),
            noop_collector(),
        )
        .unwrap();
        assert_eq!(gen1.session.health[0].total_exclusions, 1);

        // Generation 2: a fresh process (machine 0 healthy again) restarts
        // from the journal and plays rounds 1 and 2. The journal alone must
        // carry the quarantine: round 1 excludes machine 0 up front, round 2
        // re-admits it on schedule.
        let gen2_session = ChaosSessionConfig {
            quarantine_after: 1,
            ..ChaosSessionConfig::new(3, ChaosConfig::reliable(1))
        };
        let gen2 = run_chaos_session_durable(
            &mech,
            &config(),
            &gen2_session,
            |_, _| specs.clone(),
            &CrashPlan::none(),
            gen1.journal_bytes.clone(),
            noop_collector(),
        )
        .unwrap();

        assert_eq!(gen2.recovered_rounds, 1, "round 0 folded from the journal");
        assert_eq!(gen2.session.rounds.len(), 2, "rounds 1 and 2 ran live");
        let r1 = gen2.session.rounds[0].settled().expect("round 1 settles");
        assert!(r1.excluded[0], "round 1: quarantine restored from journal");
        assert_eq!(r1.retries, 0, "no budget wasted on a quarantined machine");
        let r2 = gen2.session.rounds[1].settled().expect("round 2 settles");
        assert!(!r2.excluded[0], "round 2: re-admitted on schedule");
        assert!(r2.outcome.rates[0] > 0.0);
        assert_eq!(gen2.session.readmissions, 1);

        // Exactly-once across generations: machine 0's total is round 1's
        // nothing plus round 2's payment; the sealed round-0 block is folded
        // once, not re-run.
        assert_eq!(
            gen2.cumulative_payments[0].to_bits(),
            (r2.outcome.payments[0]).to_bits()
        );
    }

    #[test]
    fn unsealed_final_round_is_resumed_mid_flight() {
        // Truncate a finished 2-round journal shortly after round 1's
        // `RoundOpened`: the restarted session must fold round 0 as settled
        // and resume round 1 from its replayed partial state, landing on the
        // same outcome as the uninterrupted run.
        let mech = CompensationBonusMechanism::paper();
        let specs = specs(3);
        let session = ChaosSessionConfig::new(2, ChaosConfig::reliable(21));
        let reference = run_chaos_session_durable(
            &mech,
            &config(),
            &session,
            |_, _| specs.clone(),
            &CrashPlan::none(),
            Vec::new(),
            noop_collector(),
        )
        .unwrap();

        let replay = crate::journal::read_journal(&reference.journal_bytes).unwrap();
        let opened_round_1 = replay
            .records
            .iter()
            .position(|r| matches!(r, JournalRecord::RoundOpened { round, .. } if round.0 == 1))
            .expect("round 1 opened");
        let boundaries = JournalReplay::boundaries(&reference.journal_bytes);
        // Keep RoundOpened plus the first bid of round 1.
        let cut = boundaries[opened_round_1 + 2];
        let resumed = run_chaos_session_durable(
            &mech,
            &config(),
            &session,
            |_, _| specs.clone(),
            &CrashPlan::none(),
            reference.journal_bytes[..cut].to_vec(),
            noop_collector(),
        )
        .unwrap();

        assert_eq!(resumed.recovered_rounds, 1, "round 0 folded as sealed");
        assert_eq!(resumed.session.rounds.len(), 1, "round 1 resumed live");
        assert!(resumed.records_replayed >= 2, "partial round 1 replayed");
        let r1 = resumed.session.rounds[0]
            .settled()
            .expect("round 1 settles");
        let want = reference.session.rounds[1]
            .settled()
            .expect("reference round 1 settled");
        assert_eq!(r1.outcome.payments, want.outcome.payments);
        assert_eq!(r1.outcome.rates, want.outcome.rates);
        for i in 0..3 {
            assert_eq!(
                resumed.cumulative_payments[i].to_bits(),
                reference.cumulative_payments[i].to_bits(),
                "machine {i}"
            );
        }
        assert_sealed_blocks_match(&resumed.journal_bytes, &reference.journal_bytes);
    }
}
