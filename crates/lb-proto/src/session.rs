//! Multi-round protocol sessions.
//!
//! The paper describes a single round; a deployed system runs the protocol
//! repeatedly (its load changes, its machines learn). A [`run_session`] call drives a
//! sequence of rounds, letting the caller supply each round's node behaviour
//! through a policy callback — which is how the strategic learners from
//! `lb-agents` plug into the real protocol (see the workspace integration
//! tests) — and aggregates the per-round outcomes and traffic statistics.

use crate::node::NodeSpec;
use crate::runtime::{run_protocol_round, ProtocolConfig, ProtocolOutcome};
use lb_mechanism::{MechanismError, VerifiedMechanism};

/// Summary of a finished session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Outcome of every round, in order.
    pub rounds: Vec<ProtocolOutcome>,
    /// Total control messages across the session.
    pub total_messages: u64,
    /// Total control bytes across the session.
    pub total_bytes: u64,
}

impl SessionReport {
    /// Number of rounds played.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the session is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Cumulative payment received by machine `i` over the session.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn cumulative_payment(&self, i: usize) -> f64 {
        self.rounds.iter().map(|r| r.payments[i]).sum()
    }

    /// Cumulative utility of machine `i` over the session.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn cumulative_utility(&self, i: usize) -> f64 {
        self.rounds.iter().map(|r| r.utilities[i]).sum()
    }
}

/// Runs `rounds` protocol rounds. Before each round, `policy` is called with
/// the round index and the previous round's outcome (None for the first) and
/// must return every node's behaviour for the round; after each round it can
/// observe the outcome through the next call.
///
/// Each round uses a distinct simulation seed (`base seed + round`) so the
/// measurement noise is independent across rounds.
///
/// # Errors
/// Propagates mechanism/protocol errors from any round.
///
/// # Panics
/// Panics if `rounds == 0` or the policy returns an empty spec list.
pub fn run_session<M, P>(
    mechanism: &M,
    config: &ProtocolConfig,
    rounds: u32,
    mut policy: P,
) -> Result<SessionReport, MechanismError>
where
    M: VerifiedMechanism,
    P: FnMut(u32, Option<&ProtocolOutcome>) -> Vec<NodeSpec>,
{
    assert!(rounds > 0, "run_session: need at least one round");
    let mut outcomes: Vec<ProtocolOutcome> = Vec::with_capacity(rounds as usize);
    let mut total_messages = 0;
    let mut total_bytes = 0;
    for round in 0..rounds {
        let specs = policy(round, outcomes.last());
        assert!(!specs.is_empty(), "run_session: policy returned no nodes");
        let mut round_config = *config;
        round_config.simulation.seed = config.simulation.seed.wrapping_add(u64::from(round));
        let outcome = run_protocol_round(mechanism, &specs, &round_config)?;
        total_messages += outcome.stats.messages;
        total_bytes += outcome.stats.bytes;
        outcomes.push(outcome);
    }
    Ok(SessionReport { rounds: outcomes, total_messages, total_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::scenario::{paper_true_values, PAPER_ARRIVAL_RATE};
    use lb_mechanism::CompensationBonusMechanism;
    use lb_sim::driver::SimulationConfig;
    use lb_sim::server::ServiceModel;

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            total_rate: PAPER_ARRIVAL_RATE,
            link_latency: 0.001,
            simulation: SimulationConfig {
                horizon: 200.0,
                seed: 77,
                model: ServiceModel::StationaryDeterministic,
                workload: Default::default(),
                warmup: 0.0,
                estimator: lb_sim::estimator::EstimatorConfig::default(),
            },
        }
    }

    #[test]
    fn constant_policy_session_accumulates_linearly() {
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> =
            paper_true_values().iter().map(|&t| NodeSpec::truthful(t)).collect();
        let report = run_session(&mech, &config(), 5, |_, _| specs.clone()).unwrap();
        assert_eq!(report.len(), 5);
        assert_eq!(report.total_messages, 5 * 80);
        // Deterministic service: every round pays the same, so the cumulative
        // payment is 5x a single round.
        let single = report.rounds[0].payments[0];
        assert!((report.cumulative_payment(0) - 5.0 * single).abs() < 1e-9);
        assert!((report.cumulative_utility(0) - 5.0 * report.rounds[0].utilities[0]).abs() < 1e-9);
    }

    #[test]
    fn policy_sees_previous_outcomes() {
        let mech = CompensationBonusMechanism::paper();
        let trues = paper_true_values();
        let mut observed_rounds = Vec::new();
        let report = run_session(&mech, &config(), 3, |round, prev| {
            observed_rounds.push((round, prev.is_some()));
            // A reactive policy: machine 0 throttles whenever its previous
            // utility was above 10 (an arbitrary rule to exercise the plumbing).
            let throttle = prev.is_some_and(|o| o.utilities[0] > 10.0);
            trues
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    if i == 0 && throttle {
                        NodeSpec::strategic(t, t, 2.0 * t)
                    } else {
                        NodeSpec::truthful(t)
                    }
                })
                .collect()
        })
        .unwrap();
        assert_eq!(observed_rounds, vec![(0, false), (1, true), (2, true)]);
        // Round 0 truthful (utility 19.13 > 10) -> round 1 throttles -> its
        // utility falls below 10 -> round 2 truthful again.
        assert!(report.rounds[0].utilities[0] > 10.0);
        assert!(report.rounds[1].utilities[0] < report.rounds[0].utilities[0]);
        assert!(report.rounds[2].utilities[0] > 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let mech = CompensationBonusMechanism::paper();
        let _ = run_session(&mech, &config(), 0, |_, _| vec![NodeSpec::truthful(1.0)]);
    }
}
