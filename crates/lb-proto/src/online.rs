//! The online mechanism session: a long-running event loop over machine
//! churn.
//!
//! The batch sessions in [`crate::session`] re-run the whole protocol round
//! from scratch at a fixed cadence — every membership change costs O(n).
//! [`OnlineSession`] instead consumes a stream of
//! [`OnlineEvent::Join`] / [`OnlineEvent::Leave`] /
//! [`OnlineEvent::RateChange`] events, each of which touches only the
//! affected machine's term of the harmonic sum `S = Σ 1/b_i`
//! ([`lb_mechanism::OnlinePool`], O(1) amortized); every other machine's PR
//! rate is rescaled *implicitly* through the updated `S` and can be read
//! back in O(1) at any moment ([`OnlineSession::rate_of`]).
//!
//! Payments stay a batch affair: an [`OnlineEvent::RoundTick`] freezes the
//! current membership and settles it through a full [`Coordinator`] round —
//! bids ingested from the live pool, allocation and settlement computed
//! against the *incrementally maintained* double-double sum via the sharded
//! entry points ([`Coordinator::begin_allocation_sharded`] /
//! [`Coordinator::settle_sharded`], the PR-5 batch leave-one-out kernel
//! underneath), verification simulated exactly as a batch round. Journal
//! grammar, telemetry spans and settlement gauges are identical to batch
//! rounds, so crash recovery ([`crate::recovery`]), the audit monitors and
//! the profilers all work unchanged: attach them through
//! [`OnlineSession::with_journal`] / [`OnlineSession::with_collector`].

use crate::coordinator::{Coordinator, ProtocolError};
use crate::journal::Journal;
use crate::message::{Message, RoundId};
use crate::node::NodeSpec;
use crate::runtime::ProtocolConfig;
use lb_core::CoreError;
use lb_mechanism::online::{OnlineError, OnlinePool};
use lb_mechanism::VerifiedMechanism;
use lb_sim::churn::ChurnEvent;
use lb_sim::driver::simulate_partition_observed;
use lb_telemetry::{noop_collector, Collector, Field, Subsystem};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

/// One event of the online mechanism stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OnlineEvent {
    /// A machine joins at slot `machine` with behaviour `spec`.
    Join {
        /// Stable slot id of the machine.
        machine: usize,
        /// Its bid/execution behaviour.
        spec: NodeSpec,
    },
    /// The machine at slot `machine` leaves.
    Leave {
        /// Slot id.
        machine: usize,
    },
    /// The machine at slot `machine` re-bids.
    RateChange {
        /// Slot id.
        machine: usize,
        /// Its new behaviour.
        spec: NodeSpec,
    },
    /// Settle boundary: run one payment round over the live machines.
    RoundTick,
}

impl OnlineEvent {
    /// Lifts a simulator churn event ([`lb_sim::churn`]) into a protocol
    /// event with truthful behaviour — the default for differential
    /// streams, where strategy is not under test.
    ///
    /// # Panics
    /// Panics if the churn event carries a non-positive or non-finite
    /// latency value (the generator never emits one).
    #[must_use]
    pub fn from_churn(event: ChurnEvent) -> Self {
        match event {
            ChurnEvent::Join { slot, value } => Self::Join {
                machine: slot,
                spec: NodeSpec::truthful(value),
            },
            ChurnEvent::Leave { slot } => Self::Leave { machine: slot },
            ChurnEvent::RateChange { slot, value } => Self::RateChange {
                machine: slot,
                spec: NodeSpec::truthful(value),
            },
            ChurnEvent::Tick => Self::RoundTick,
        }
    }
}

/// What applying one event did.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineApplied {
    /// A machine joined.
    Joined {
        /// Its slot.
        machine: usize,
    },
    /// A machine left.
    Left {
        /// Its slot.
        machine: usize,
    },
    /// A machine re-bid.
    Rebid {
        /// Its slot.
        machine: usize,
    },
    /// A tick settled a payment round.
    Settled(OnlineTick),
    /// A tick arrived with fewer than two live machines; nothing to settle.
    TickSkipped,
}

/// Outcome of one settled tick.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineTick {
    /// The round id the tick settled as.
    pub round: u64,
    /// Slot ids of the settled machines, in dense (slot) order — index `k`
    /// of `payments` refers to `machines[k]`.
    pub machines: Vec<usize>,
    /// Per-machine payments, dense.
    pub payments: Vec<f64>,
}

/// Summary of a finished online session.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Membership events applied (ticks excluded).
    pub events: u64,
    /// Ticks that settled a round.
    pub ticks_settled: u64,
    /// Ticks skipped for lack of two live machines.
    pub ticks_skipped: u64,
    /// Compensated re-sums the harmonic sum needed over the whole stream.
    pub resums: u64,
    /// Machines live at the end of the stream.
    pub live: usize,
    /// Cumulative payment per slot over every settled tick.
    pub cumulative_payments: Vec<f64>,
}

fn online_err(e: OnlineError) -> ProtocolError {
    match e {
        OnlineError::Mechanism(e) => ProtocolError::Mechanism(e),
        slot_err => ProtocolError::Mechanism(
            CoreError::Infeasible {
                reason: slot_err.to_string(),
            }
            .into(),
        ),
    }
}

/// A long-running online mechanism session. See the module docs.
pub struct OnlineSession<'m> {
    mechanism: &'m dyn VerifiedMechanism,
    config: ProtocolConfig,
    pool: OnlinePool,
    specs: Vec<Option<NodeSpec>>,
    ledger: Vec<f64>,
    collector: Arc<dyn Collector>,
    journal: Option<Rc<RefCell<dyn Journal>>>,
    epoch: Instant,
    next_round: u64,
    events: u64,
    ticks_settled: u64,
    ticks_skipped: u64,
}

impl<'m> OnlineSession<'m> {
    /// Creates an empty session distributing `config.total_rate`.
    ///
    /// # Errors
    /// Rejects a non-finite or non-positive total rate.
    pub fn new(
        mechanism: &'m dyn VerifiedMechanism,
        config: ProtocolConfig,
    ) -> Result<Self, ProtocolError> {
        let pool = OnlinePool::new(config.total_rate).map_err(online_err)?;
        Ok(Self {
            mechanism,
            config,
            pool,
            specs: Vec::new(),
            ledger: Vec::new(),
            collector: noop_collector(),
            journal: None,
            epoch: Instant::now(),
            next_round: 0,
            events: 0,
            ticks_settled: 0,
            ticks_skipped: 0,
        })
    }

    /// Attaches a telemetry collector: membership events become `online.*`
    /// instants and every settled tick records the full round grammar —
    /// which is also how the audit-layer invariant monitors observe the
    /// session (they are collector decorators).
    #[must_use]
    pub fn with_collector(mut self, collector: Arc<dyn Collector>) -> Self {
        self.collector = collector;
        self
    }

    /// Attaches a durable journal. Each settled tick appends one complete
    /// round block in the standard grammar, so an interrupted session
    /// recovers with the existing [`crate::recovery`] machinery.
    #[must_use]
    pub fn with_journal(mut self, journal: Rc<RefCell<dyn Journal>>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Overrides the session's round counter (useful when resuming after a
    /// crash so new ticks continue the journal's round sequence).
    #[must_use]
    pub fn starting_round(mut self, round: u64) -> Self {
        self.next_round = round;
        self
    }

    /// Number of live machines.
    #[must_use]
    pub fn live(&self) -> usize {
        self.pool.live()
    }

    /// The next tick's round id.
    #[must_use]
    pub fn next_round(&self) -> u64 {
        self.next_round
    }

    /// Compensated re-sums of `S` so far.
    #[must_use]
    pub fn resums(&self) -> u64 {
        self.pool.resums()
    }

    /// The incrementally maintained harmonic sum (diagnostics and
    /// differential testing).
    #[must_use]
    pub fn harmonic_sum(&self) -> lb_core::TwoF64 {
        self.pool.harmonic_sum()
    }

    /// The current PR rate of the machine at `slot`, O(1) — evaluated
    /// against the incremental `S`, so it already reflects every event
    /// applied so far.
    #[must_use]
    pub fn rate_of(&self, slot: usize) -> Option<f64> {
        self.pool.rate_of(slot)
    }

    /// Cumulative payment of the machine at `slot` over all settled ticks.
    #[must_use]
    pub fn cumulative_payment(&self, slot: usize) -> f64 {
        self.ledger.get(slot).copied().unwrap_or(0.0)
    }

    fn instant(&self, name: &'static str, machine: usize) {
        self.collector.instant(
            self.epoch.elapsed().as_secs_f64(),
            name,
            Subsystem::Coordinator,
            vec![Field::u64("machine", machine as u64)],
        );
    }

    /// Applies one event. Membership events are O(1) amortized; a
    /// [`OnlineEvent::RoundTick`] runs one full settle round (O(live)).
    ///
    /// # Errors
    /// Membership violations (occupied/vacant slots, invalid bids) and any
    /// protocol/journal/mechanism error from a tick round. A failed tick
    /// leaves the membership state untouched, so the session can continue
    /// once the cause (e.g. a crashed journal) is repaired.
    pub fn apply(&mut self, event: OnlineEvent) -> Result<OnlineApplied, ProtocolError> {
        match event {
            OnlineEvent::Join { machine, spec } => {
                self.pool.join(machine, spec.bid).map_err(online_err)?;
                if self.specs.len() <= machine {
                    self.specs.resize(machine + 1, None);
                    self.ledger.resize(machine + 1, 0.0);
                }
                self.specs[machine] = Some(spec);
                self.events += 1;
                self.instant("online.join", machine);
                Ok(OnlineApplied::Joined { machine })
            }
            OnlineEvent::Leave { machine } => {
                self.pool.leave(machine).map_err(online_err)?;
                self.specs[machine] = None;
                self.events += 1;
                self.instant("online.leave", machine);
                Ok(OnlineApplied::Left { machine })
            }
            OnlineEvent::RateChange { machine, spec } => {
                self.pool
                    .rate_change(machine, spec.bid)
                    .map_err(online_err)?;
                self.specs[machine] = Some(spec);
                self.events += 1;
                self.instant("online.rebid", machine);
                Ok(OnlineApplied::Rebid { machine })
            }
            OnlineEvent::RoundTick => self.settle_tick(),
        }
    }

    /// Runs one settle round over the live machines against the
    /// incremental harmonic sum.
    fn settle_tick(&mut self) -> Result<OnlineApplied, ProtocolError> {
        if self.pool.live() < 2 {
            self.ticks_skipped += 1;
            self.instant("online.tick_skipped", self.pool.live());
            return Ok(OnlineApplied::TickSkipped);
        }
        let slots = self.pool.live_slots();
        let bids = self.pool.live_bids();
        let m = slots.len();
        let round = RoundId(self.next_round);
        let s = self.pool.harmonic_sum();

        // Per-tick simulation seed, like the batch sessions' per-round one.
        let mut sim = self.config.simulation;
        sim.seed = sim.seed.wrapping_add(self.next_round);

        let mut root = Coordinator::try_new(self.mechanism, m, self.config.total_rate, round, sim)?
            .with_collector(Arc::clone(&self.collector));
        if let Some(journal) = &self.journal {
            root = root.with_journal(Rc::clone(journal));
        }

        // Bid ingestion from the live pool: the machines already "sent"
        // their bids as membership events.
        root.set_now(self.epoch.elapsed().as_secs_f64());
        for (k, &bid) in bids.iter().enumerate() {
            root.ingest(&Message::Bid {
                round,
                machine: Coordinator::machine_u32(k)?,
                value: bid,
            })?;
        }
        root.close_bidding_sharded()?;

        // Allocation against the *incremental* S — the event-loop's whole
        // point: no from-scratch harmonic re-sum on the tick path.
        let rates = root.begin_allocation_sharded(s)?;

        // Verification simulation, exactly the batch kernel at offset 0.
        let exec: Vec<f64> = slots
            .iter()
            .map(|&slot| {
                self.specs[slot]
                    .map(|sp| sp.exec_value)
                    .ok_or(ProtocolError::MissingState {
                        what: "live machine spec",
                    })
            })
            .collect::<Result<_, _>>()?;
        let report = simulate_partition_observed(
            &bids,
            &exec,
            &rates,
            &sim,
            0,
            &*self.collector,
            root.phase_span(),
        )
        .map_err(ProtocolError::from)?;

        root.set_now(self.epoch.elapsed().as_secs_f64());
        let assigns = root.commit_allocation_sharded(rates, report.estimated_exec_values)?;
        for (machine, _assign) in assigns {
            root.ingest(&Message::ExecutionDone { round, machine })?;
        }

        // Settle through the PR-5 batch kernel against the incremental S.
        root.set_now(self.epoch.elapsed().as_secs_f64());
        let fan_out = root.settle_sharded(s)?;
        let mut payments = vec![0.0; m];
        for (machine, message) in fan_out {
            if let Message::Payment { amount, .. } = message {
                let k = machine as usize;
                payments[k] = amount;
                self.ledger[slots[k]] += amount;
            }
        }
        root.seal()?;

        self.next_round += 1;
        self.ticks_settled += 1;
        Ok(OnlineApplied::Settled(OnlineTick {
            round: round.0,
            machines: slots,
            payments,
        }))
    }

    /// Applies a whole event stream, returning the session summary.
    ///
    /// # Errors
    /// Stops at the first event that fails, as [`OnlineSession::apply`].
    pub fn run(
        &mut self,
        events: impl IntoIterator<Item = OnlineEvent>,
    ) -> Result<OnlineReport, ProtocolError> {
        for event in events {
            self.apply(event)?;
        }
        Ok(self.report())
    }

    /// The session summary so far.
    #[must_use]
    pub fn report(&self) -> OnlineReport {
        OnlineReport {
            events: self.events,
            ticks_settled: self.ticks_settled,
            ticks_skipped: self.ticks_skipped,
            resums: self.pool.resums(),
            live: self.pool.live(),
            cumulative_payments: self.ledger.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{read_journal, Journal, MemJournal};
    use crate::runtime::run_protocol_round;
    use lb_core::inv_sum_dd;
    use lb_mechanism::CompensationBonusMechanism;
    use lb_sim::churn::{ChurnConfig, ChurnGen};

    fn config() -> ProtocolConfig {
        ProtocolConfig {
            total_rate: 10.0,
            ..ProtocolConfig::default()
        }
    }

    #[test]
    fn events_update_rates_in_o1_and_match_scratch() {
        let mech = CompensationBonusMechanism::paper();
        let mut session = OnlineSession::new(&mech, config()).unwrap();
        for (slot, t) in [(0, 1.0), (1, 2.0), (2, 4.0)] {
            session
                .apply(OnlineEvent::Join {
                    machine: slot,
                    spec: NodeSpec::truthful(t),
                })
                .unwrap();
        }
        session.apply(OnlineEvent::Leave { machine: 1 }).unwrap();
        session
            .apply(OnlineEvent::RateChange {
                machine: 2,
                spec: NodeSpec::truthful(0.5),
            })
            .unwrap();

        let scratch = inv_sum_dd(&[1.0, 0.5]);
        let rel = (session.harmonic_sum().value() - scratch.value()).abs() / scratch.value();
        assert!(rel <= 1e-12, "incremental S off by {rel:e}");
        // Factored rates: x_i = (1/b_i)/S · R.
        let r0 = session.rate_of(0).unwrap();
        let r2 = session.rate_of(2).unwrap();
        assert!((r0 + r2 - 10.0).abs() <= 1e-9 * 10.0);
        assert!(session.rate_of(1).is_none(), "left machine has no rate");
    }

    #[test]
    fn tick_settles_like_a_batch_round() {
        // A session whose membership equals a static spec list must settle
        // its first tick exactly like the batch runtime does its round 0
        // (same bids, same verification seed, same allocation inputs).
        let mech = CompensationBonusMechanism::paper();
        let specs: Vec<NodeSpec> = [1.0, 2.0, 3.0, 5.0]
            .iter()
            .map(|&t| NodeSpec::truthful(t))
            .collect();
        let batch = run_protocol_round(&mech, &specs, &config()).unwrap();

        let mut session = OnlineSession::new(&mech, config()).unwrap();
        for (slot, &spec) in specs.iter().enumerate() {
            session
                .apply(OnlineEvent::Join {
                    machine: slot,
                    spec,
                })
                .unwrap();
        }
        let applied = session.apply(OnlineEvent::RoundTick).unwrap();
        let OnlineApplied::Settled(tick) = applied else {
            panic!("tick did not settle: {applied:?}");
        };
        assert_eq!(tick.round, 0);
        assert_eq!(tick.machines, vec![0, 1, 2, 3]);
        for (k, &p) in tick.payments.iter().enumerate() {
            let rel =
                (p - batch.payments[k]).abs() / batch.payments[k].abs().max(f64::MIN_POSITIVE);
            assert!(
                rel <= 1e-12,
                "machine {k}: online payment {p} vs batch {}",
                batch.payments[k]
            );
            assert_eq!(session.cumulative_payment(k), p);
        }
    }

    #[test]
    fn skipped_ticks_and_journalled_churn_stream() {
        let mech = CompensationBonusMechanism::paper();
        let journal: Rc<RefCell<dyn Journal>> = Rc::new(RefCell::new(MemJournal::new()));
        let mut session = OnlineSession::new(&mech, config())
            .unwrap()
            .with_journal(Rc::clone(&journal));

        // Not enough machines: the tick is skipped, not an error.
        assert_eq!(
            session.apply(OnlineEvent::RoundTick).unwrap(),
            OnlineApplied::TickSkipped
        );

        let cfg = ChurnConfig {
            slots: 16,
            initial: 4,
            events: 400,
            tick_every: 50,
            ..ChurnConfig::default()
        };
        let report = session
            .run(ChurnGen::new(cfg, 11).map(OnlineEvent::from_churn))
            .unwrap();
        assert_eq!(report.ticks_settled + report.ticks_skipped, 8 + 1);
        assert!(report.ticks_settled >= 1);
        assert!(report.events >= 392 - 8);
        assert_eq!(report.live, session.live());

        // Every settled tick appended a complete, clean round block.
        let replay = read_journal(&journal.borrow().bytes().unwrap()).unwrap();
        assert_eq!(replay.truncated_tail, 0);
        assert!(!replay.records.is_empty());
        // Consecutive ticks continue the round-id sequence.
        assert_eq!(session.next_round(), report.ticks_settled);
    }
}
